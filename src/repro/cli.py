"""Command-line interface of the reproduction.

The CLI mirrors the workflow of the paper's tool chain: read a DFT in Galileo
format, convert it into an I/O-IMC community, run compositional aggregation
and report reliability measures.  Sub-commands:

``analyze``
    Evaluate one declarative query (unreliability / bounds at many mission
    times, MTTF, unavailability) against a tree — one conversion, one
    aggregation, one vectorised transient sweep.  ``--json`` emits the full
    structured result (schema ``repro.study/1``).
``sweep``
    Evaluate one query at many failure-rate samples while running conversion
    and aggregation **once**: the aggregated I/O-IMC keeps a transition ->
    parameter map and only the CTMC generator is rebuilt per sample.
    ``--param lam=0.1:2.0:50`` sweeps a declared Galileo parameter (or a
    basic event by name) over a linspace grid; the per-sample solves run on
    a shared-structure uniformisation kernel and fan out over worker
    processes with ``--processes N`` (``--chunk-size`` tunes the chunked
    scheduling; rows are bit-identical to a serial run).  ``--json`` emits
    schema ``repro.sweep/3``.
``batch``
    Evaluate the same query over a corpus of ``.dft`` files (shell-style
    globs are expanded) with optional process parallelism, printing per-tree
    rows and aggregate timing.  ``--json`` emits schema ``repro.batch/1``;
    ``--output-jsonl FILE`` streams one ``repro.batch/2`` record per tree to
    disk instead of materialising the rows (``--chunk-size`` tunes the
    chunked scheduling).
``optimize``
    Russian-doll branch-and-bound over a discrete design space (spare counts,
    repair-crew allocation) minimising the mission-time unreliability under a
    cost budget.  ``PROBLEM`` is a built-in seeded scenario (``cas``, ``cps``)
    or a JSON spec; ``--exhaustive`` disables pruning for differential
    checks.  ``--json`` emits schema ``repro.optimize/1``.
``serve``
    Run the analysis service: a stdlib HTTP server (``POST /analyze``,
    ``/sweep``, ``/batch``; ``GET /healthz``, ``/metrics``) backed by a
    content-addressed skeleton store, so repeated analyses of structurally
    identical trees skip conversion and aggregation entirely.
``cache``
    Inspect (``stats``), empty (``clear``) or prebuild (``warm``) a skeleton
    store directory without starting the server.
``baseline``
    The DIFTree-style modular analysis of the same file, for comparison.
``modules``
    The independent modules of the tree and how DIFTree would cut it.
``community``
    List the I/O-IMC community generated for the tree (one line per member).
``dot``
    Export the fault tree (or the final aggregated I/O-IMC) as Graphviz dot.

Run ``python -m repro --help`` for the full synopsis.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Iterable, List, Optional, Tuple

from . import __version__
from .baselines import DiftreeAnalyzer
from .core import (
    MTTF,
    BatchStudy,
    ImportanceRanking,
    MeasureResult,
    Query,
    RateSweep,
    Study,
    StudyOptions,
    SweepStudy,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
    with_rate_parameters,
)
from .ctmc.builders import CtmdpSkeleton
from .dft.elements import BasicEvent
from .dft import diftree_modules, galileo, independent_modules
from .dft.visualization import to_dot
from .errors import ReproError
from .ioimc import AggregationOptions


def _load_tree(path: str):
    if path == "-":
        return galileo.parse(sys.stdin.read(), name="<stdin>")
    return galileo.parse_file(path)


def _add_tree_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "tree",
        help="path to a Galileo .dft file ('-' reads the description from stdin)",
    )


def _analysis_options(args: argparse.Namespace) -> StudyOptions:
    return StudyOptions(
        ordering=args.ordering,
        aggregation=AggregationOptions(
            method=args.aggregation,
            minimiser=getattr(args, "minimiser", "closure"),
            minimisation_processes=getattr(args, "minimisation_processes", 1),
        ),
        fuse=not getattr(args, "no_fuse", False),
        tolerance=getattr(args, "tolerance", 1e-12),
        aggregation_processes=getattr(args, "aggregation_processes", 1),
    )


def _build_query(args: argparse.Namespace, bounds: bool) -> Query:
    """The measure bundle requested by analyze/batch flags."""
    measures = [UnreliabilityBounds(args.time) if bounds else Unreliability(args.time)]
    if args.mttf:
        measures.append(MTTF())
    if args.unavailability:
        measures.append(Unavailability())
    if getattr(args, "importance", False):
        measures.append(ImportanceRanking(args.time))
    return Query(measures)


def _format_measure_lines(measure: MeasureResult) -> List[str]:
    """Human-readable lines for one evaluated measure."""
    lines: List[str] = []
    if measure.error is not None:
        lines.append(f"{measure.kind}: {measure.error}")
    elif measure.kind == "unreliability":
        assert measure.times is not None and measure.values is not None
        for time, value in zip(measure.times, measure.values):
            lines.append(f"Unreliability(t={time:g}) = {value:.6f}")
    elif measure.kind == "unreliability_bounds":
        assert measure.times is not None
        assert measure.lower is not None and measure.upper is not None
        for time, low, high in zip(measure.times, measure.lower, measure.upper):
            if low == high:
                lines.append(f"Unreliability(t={time:g}) = {low:.6f}")
            else:
                lines.append(f"Unreliability(t={time:g}) in [{low:.6f}, {high:.6f}]")
    elif measure.kind == "importance_ranking":
        assert measure.ranking is not None and measure.gradients is not None
        assert measure.times is not None
        lines.append("Importance ranking: " + " > ".join(measure.ranking))
        for index, time in enumerate(measure.times):
            gradients = ", ".join(
                f"{name}={measure.gradients[name][index]:+.4g}"
                for name in measure.ranking
            )
            lines.append(f"dUnreliability/dRate(t={time:g}): {gradients}")
    elif measure.kind == "mttf":
        lines.append(f"Mean time to failure = {measure.value:.6f}")
    elif measure.kind == "unavailability":
        if measure.steady_state:
            lines.append(f"Steady-state unavailability = {measure.value:.6f}")
        else:
            assert measure.times is not None and measure.values is not None
            for time, value in zip(measure.times, measure.values):
                lines.append(f"Unavailability(t={time:g}) = {value:.6f}")
    else:  # pragma: no cover - future measure kinds
        lines.append(f"{measure.kind}: {measure.to_dict()}")
    return lines


# ---------------------------------------------------------------------------
# sub-commands
# ---------------------------------------------------------------------------

def _open_skeleton_cache(args: argparse.Namespace):
    """The SkeletonStore of ``--skeleton-cache DIR``, or None."""
    directory = getattr(args, "skeleton_cache", None)
    if not directory:
        return None
    from .service.store import SkeletonStore

    return SkeletonStore(directory)


def command_analyze(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    if args.importance and not tree.parameters:
        # Rankings differentiate w.r.t. declared rate parameters; attach one
        # per basic event so plain Galileo files can be ranked directly.
        tree = with_rate_parameters(tree)
    study = Study(tree, _analysis_options(args), skeleton_cache=_open_skeleton_cache(args))
    query = _build_query(args, bounds=args.bounds or study.is_nondeterministic)
    # Record per-measure failures so e.g. an unsupported MTTF still lets the
    # unreliability values the user also asked for reach the output.
    result = study.evaluate(query, on_error="record")
    failed = [measure for measure in result.measures if not measure.ok]
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(f"Fault tree : {tree.summary()}")
        if study.skeleton_cache is not None:
            # The whole point of the cache is not to run the pipeline; report
            # the cached model shape instead of community/aggregation stats.
            print(
                f"Cache      : {result.options.get('skeleton_cache')} "
                f"({args.skeleton_cache})"
            )
            print(f"Model      : {result.model.kind}, {result.model.states} states")
        else:
            print(f"Community  : {study.community.summary()}")
            print(f"Aggregation: {study.statistics.summary()}")
        for measure in result.measures:
            for line in _format_measure_lines(measure):
                print(line)
    if failed:
        print(f"error: {failed[0].error}", file=sys.stderr)
        return 2
    return 0


def _expand_batch_sources(patterns: Iterable[str]) -> Tuple[List[str], List[str]]:
    """Expand shell-style globs; keep plain paths as-is; dedupe.

    Returns ``(paths, unmatched)`` where ``unmatched`` lists glob patterns
    that matched no file — silently dropping those would let a typo shrink
    the corpus without any signal.
    """
    paths: List[str] = []
    unmatched: List[str] = []
    for pattern in patterns:
        if glob.has_magic(pattern):
            matches = sorted(glob.glob(pattern, recursive=True))
            if not matches:
                unmatched.append(pattern)
            paths.extend(matches)
        else:
            paths.append(pattern)
    return list(dict.fromkeys(paths)), unmatched


def command_batch(args: argparse.Namespace) -> int:
    paths, unmatched = _expand_batch_sources(args.trees)
    if unmatched:
        for pattern in unmatched:
            print(f"error: pattern matched no files: {pattern}", file=sys.stderr)
        return 2
    if not paths:
        print("error: no input files matched", file=sys.stderr)
        return 2
    # Bounds are the batch default measure: they are exact for deterministic
    # trees and still well-defined when a corpus member turns out to be
    # non-deterministic, so one query fits the whole corpus.
    query = _build_query(args, bounds=True)
    batch = BatchStudy(paths, query, _analysis_options(args))
    if args.output_jsonl:
        if args.json:
            print(
                "error: --json and --output-jsonl are mutually exclusive "
                "(the streamed sink holds the rows; read it back with "
                "repro.core.results.read_batch_jsonl)",
                file=sys.stderr,
            )
            return 2
        return _run_batch_streaming(args, batch)
    result = batch.run(processes=args.processes, chunk_size=args.chunk_size)
    if args.json:
        print(result.to_json(indent=2))
    else:
        name_width = max(len(row.name) for row in result.rows)
        for row in result.rows:
            if not row.ok:
                print(f"{row.name:<{name_width}}  FAILED: {row.error}")
                continue
            assert row.result is not None
            states = row.result.model.states
            values = "  ".join(
                line
                for measure in row.result.measures
                for line in _format_measure_lines(measure)
            )
            print(f"{row.name:<{name_width}}  {states:>5} states  {values}  [{row.wall_seconds:.3f}s]")
        print(result.summary())
    measure_failures = sum(
        1
        for row in result.rows
        if row.ok
        for measure in row.result.measures
        if not measure.ok
    )
    if measure_failures:
        print(
            f"error: {measure_failures} measure(s) could not be evaluated "
            "(see per-tree rows)",
            file=sys.stderr,
        )
    return 0 if result.num_failed == 0 and measure_failures == 0 else 1


def _parse_sweep_axis(spec: str) -> Tuple[str, List[float]]:
    """Parse ``NAME=SPEC`` where SPEC is ``start:stop:count``, a comma list
    or a single value."""
    name, separator, body = spec.partition("=")
    name = name.strip()
    body = body.strip()
    if not separator or not name or not body:
        raise ReproError(
            f"cannot parse sweep axis {spec!r}; expected NAME=start:stop:count, "
            "NAME=v1,v2,... or NAME=value"
        )
    try:
        if ":" in body:
            parts = body.split(":")
            if len(parts) != 3:
                raise ValueError
            start, stop, count = float(parts[0]), float(parts[1]), int(parts[2])
            if count < 1:
                raise ValueError
            if count == 1:
                values = [start]
            else:
                step = (stop - start) / (count - 1)
                values = [start + step * index for index in range(count)]
        elif "," in body:
            values = [float(part) for part in body.split(",") if part.strip()]
            if not values:
                raise ValueError
        else:
            values = [float(body)]
    except ValueError:
        raise ReproError(
            f"cannot parse sweep axis {spec!r}; expected NAME=start:stop:count, "
            "NAME=v1,v2,... or NAME=value"
        ) from None
    return name, values


def command_sweep(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    axes: dict = {}
    for spec in args.param:
        name, values = _parse_sweep_axis(spec)
        if name in axes:
            print(f"error: sweep axis {name!r} given twice", file=sys.stderr)
            return 2
        axes[name] = values
    # An axis naming a basic event (rather than a declared parameter) attaches
    # a parameter of the same name to that event's failure rate, so plain
    # Galileo files can be swept without editing them.
    attach = [
        name
        for name in axes
        if name not in tree.parameters
        and name in tree
        and isinstance(tree.element(name), BasicEvent)
    ]
    if attach:
        tree = with_rate_parameters(tree, {name: name for name in attach})
    # Reject unknown axes (and non-positive sample values, via RateSweep's
    # validation below) BEFORE paying for conversion + aggregation: a typo'd
    # parameter name on a large tree must fail in milliseconds, not minutes.
    unknown = sorted(name for name in axes if name not in tree.parameters)
    if unknown:
        print(
            "error: the sweep varies parameters the tree does not declare: "
            + ", ".join(unknown)
            + " (declare them with 'param <name> = <value>;' or name a basic event)",
            file=sys.stderr,
        )
        return 2
    placeholder = Unreliability(args.time)
    samples = RateSweep.grid(placeholder, **axes).samples
    study = SweepStudy(
        tree, _analysis_options(args), skeleton_cache=_open_skeleton_cache(args)
    )
    bounds = args.bounds or isinstance(study.skeleton, CtmdpSkeleton)
    query = _build_query(args, bounds=bounds)
    result = study.run(
        RateSweep(query, samples),
        processes=args.processes,
        chunk_size=args.chunk_size,
        share_uniformisation=args.share_uniformisation,
        gradients=args.gradients,
    )
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(f"Fault tree : {tree.summary()}")
        print(f"Sweep      : {result.summary()}")
        for row in result.rows:
            point = ", ".join(f"{k}={v:g}" for k, v in row.sample.items())
            if not row.ok:
                print(f"[{point}]  FAILED: {row.error}")
                continue
            values = "  ".join(
                line
                for measure in row.measures
                for line in _format_measure_lines(measure)
            )
            if row.gradients:
                gradient_text = ", ".join(
                    f"d/d{name}={curve[-1]:+.4g}"
                    for name, curve in sorted(row.gradients.items())
                )
                values = f"{values}  [{gradient_text}]"
            print(f"[{point}]  {values}")
    row_failures = result.num_failed
    measure_failures = sum(
        1
        for row in result.rows
        if row.ok
        for measure in row.measures
        if not measure.ok
    )
    if row_failures or measure_failures:
        print(
            f"error: {row_failures} sample(s) and {measure_failures} measure(s) "
            "could not be evaluated",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_batch_streaming(args: argparse.Namespace, batch: BatchStudy) -> int:
    """Stream batch rows to a JSONL sink; only counters stay in memory."""
    counters = {"measure_failures": 0}

    def counted(rows):
        # Row/failure totals live on the streamed BatchResult; per-measure
        # failures are only visible row by row, so tally them in passing.
        for row in rows:
            if row.ok and row.result is not None:
                counters["measure_failures"] += sum(
                    1 for measure in row.result.measures if not measure.ok
                )
            yield row

    from .core.results import write_batch_jsonl

    with open(args.output_jsonl, "w", encoding="utf-8") as handle:
        result = write_batch_jsonl(
            counted(batch.iter_rows(processes=args.processes, chunk_size=args.chunk_size)),
            handle,
            processes=args.processes or 1,
        )
    print(
        f"{len(result)} trees analysed ({result.num_failed} failed) in "
        f"{result.wall_seconds:.3f}s wall; rows streamed to {args.output_jsonl} "
        f"(schema repro.batch/2)"
    )
    if counters["measure_failures"]:
        print(
            f"error: {counters['measure_failures']} measure(s) could not be "
            "evaluated (see the per-tree rows in the sink)",
            file=sys.stderr,
        )
    return 0 if result.num_failed == 0 and counters["measure_failures"] == 0 else 1


def _load_design_problem(args: argparse.Namespace):
    """The DesignProblem named by ``repro optimize PROBLEM``.

    ``PROBLEM`` is either a built-in seeded scenario (``cas``, ``cps``) or a
    path to a JSON spec ``{"tree": "model.dft", "budget": ..., "choices":
    [...]}`` whose tree path resolves relative to the spec file.
    """
    import dataclasses

    from .core.optimize import DesignProblem, RepairChoice, SpareCountChoice

    if args.problem in ("cas", "cps"):
        from .systems import cas_spares_scenario, cps_spares_scenario

        factory = cas_spares_scenario if args.problem == "cas" else cps_spares_scenario
        problem = factory()
    else:
        with open(args.problem, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        tree_path = spec["tree"]
        if tree_path != "-" and not os.path.isabs(tree_path):
            tree_path = os.path.join(os.path.dirname(os.path.abspath(args.problem)), tree_path)
        tree = _load_tree(tree_path)
        choices = []
        for entry in spec["choices"]:
            kind = entry.get("kind")
            costs = tuple(float(cost) for cost in entry.get("costs", ()))
            if kind == "spares":
                gate = entry.get("gates", entry.get("gate"))
                if isinstance(gate, list):
                    gate = tuple(gate)
                choices.append(
                    SpareCountChoice(
                        gate,
                        counts=tuple(int(c) for c in entry["counts"]),
                        costs=costs or None,
                    )
                )
            elif kind == "repair":
                choices.append(
                    RepairChoice(
                        entry["event"],
                        rates=tuple(
                            None if rate is None else float(rate)
                            for rate in entry["rates"]
                        ),
                        costs=costs or None,
                    )
                )
            else:
                raise ValueError(
                    f"unknown design choice kind {kind!r}; expected 'spares' or 'repair'"
                )
        problem = DesignProblem(
            tree=tree,
            choices=tuple(choices),
            mission_time=float(spec.get("mission_time", 1.0)),
            budget=spec.get("budget"),
        )
    overrides = {}
    if getattr(args, "time", None) is not None:
        overrides["mission_time"] = args.time
    if getattr(args, "budget", None) is not None:
        overrides["budget"] = args.budget
    if overrides:
        problem = dataclasses.replace(problem, **overrides)
    return problem


def command_optimize(args: argparse.Namespace) -> int:
    from .core.optimize import monotonicity_warnings, optimize

    problem = _load_design_problem(args)
    warnings = monotonicity_warnings(problem)
    result = optimize(
        problem,
        options=_analysis_options(args),
        skeleton_cache=_open_skeleton_cache(args),
        exhaustive=args.exhaustive,
        tolerance=args.tolerance,
    )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(f"Fault tree : {problem.tree.summary()}")
    space = problem.space_size
    budget = "unconstrained" if problem.budget is None else f"budget {problem.budget:g}"
    print(
        f"Design space: {len(problem.choices)} choices, {space} designs "
        f"({result.leaves_feasible} feasible, {budget})"
    )
    print(result.summary())
    for choice in result.best_design:
        print(f"  {choice.name} = {choice.option} (cost {choice.cost:g})")
    if result.nondeterministic:
        print(
            f"Worst-case bounds: [{result.best_lower:.6f}, {result.best_upper:.6f}]"
        )
    for table in result.module_tables:
        print(
            f"Module table {table.module}: {table.records} records over "
            f"({', '.join(table.choices)}), best unreliability "
            f"{table.best_upper:.6f} at cost {table.best_cost:g}"
        )
    if not result.exhaustive:
        print(
            f"Pruning    : {result.pruned_by_cost} by cost, "
            f"{result.pruned_by_table} by module table, "
            f"{result.pruned_by_envelope} by bound envelope "
            f"({result.bound_evaluations} bound evaluations)"
        )
    for choice in result.scheduler:
        print(
            f"Scheduler  : state {choice.state} -> {choice.successor} "
            f"(agreement {choice.agreement:.0%})"
        )
    cache = result.cache
    print(
        f"Evaluations: {cache.get('builds', 0)} skeletons built, "
        f"{cache.get('hits', 0)} cache hits; "
        f"tables {result.timings.get('tables', 0.0):.3f}s, "
        f"search {result.timings.get('search', 0.0):.3f}s, "
        f"total {result.timings.get('total', 0.0):.3f}s"
    )
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def command_serve(args: argparse.Namespace) -> int:
    from .service.server import serve

    server = serve(
        args.cache_dir,
        host=args.host,
        port=args.port,
        processes=args.processes,
        options=_analysis_options(args),
        max_cache_bytes=args.max_cache_bytes,
    )
    host, port = server.server_address[:2]
    print(
        f"serving on http://{host}:{port} "
        f"(cache: {args.cache_dir}, {args.processes} worker process"
        f"{'es' if args.processes != 1 else ''})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def command_cache(args: argparse.Namespace) -> int:
    from .service.store import SkeletonStore

    store = SkeletonStore(args.cache_dir, max_bytes=args.max_cache_bytes)
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(f"Cache      : {stats['root']}")
            print(f"Entries    : {stats['entries']}")
            print(f"Total bytes: {stats['total_bytes']}")
            cap = stats["max_bytes"]
            print(f"Byte cap   : {'unlimited' if cap is None else cap}")
            ratio = stats["compression_ratio"]
            print(
                f"Compression: {stats['compression']}, "
                f"{stats['compressed_bytes']} of {stats['payload_bytes']} "
                f"payload bytes"
                + ("" if ratio is None else f" ({ratio}x)")
            )
            print(
                f"Versions   : hash v{stats['hash_version']}, "
                f"format v{stats['format_version']}"
            )
        return 0
    if args.cache_command == "clear":
        removed = store.clear()
        print(
            f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
            f"from {args.cache_dir}"
        )
        return 0
    assert args.cache_command == "warm"
    paths, unmatched = _expand_batch_sources(args.trees)
    if unmatched:
        for pattern in unmatched:
            print(f"error: pattern matched no files: {pattern}", file=sys.stderr)
        return 2
    if not paths:
        print("error: no input files matched", file=sys.stderr)
        return 2
    counters = store.warm(paths, _analysis_options(args))
    print(
        f"warmed {args.cache_dir}: {counters['built']} built, "
        f"{counters['hits']} already cached, {counters['failed']} failed"
    )
    return 0 if counters["failed"] == 0 else 1


def command_baseline(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    result = DiftreeAnalyzer(tree).analyze(args.time[0])
    for module in result.modules:
        print("  " + module.summary())
    print(result.summary())
    return 0


def command_modules(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    print("Independent modules:", ", ".join(independent_modules(tree)) or "(none)")
    print("DIFTree cut:")
    for module in diftree_modules(tree):
        kind = "dynamic" if module.dynamic else "static"
        detached = f", detaches {', '.join(module.detached)}" if module.detached else ""
        print(f"  {module.root}: {kind}, {module.size} elements{detached}")
    return 0


def command_community(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    study = Study(tree, _analysis_options(args))
    for member in study.community.members:
        print(f"  [{member.kind:<20}] {member.model.summary()}")
    print(study.community.summary())
    return 0


def command_dot(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    if args.final_model:
        study = Study(tree, _analysis_options(args))
        output = study.final_ioimc.to_dot()
    else:
        output = to_dot(tree)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        print(output)
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compositional dynamic fault tree analysis via I/O-IMC "
        "(reproduction of Boudali, Crouzen & Stoelinga, DSN 2007).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--ordering",
            choices=["linked", "smallest", "sequential", "modular"],
            default="linked",
            help="composition ordering strategy (default: linked; 'modular' "
            "follows the tree's independent-module decomposition)",
        )
        sub.add_argument(
            "--aggregation",
            choices=["weak", "strong", "tau", "none"],
            default="weak",
            help="aggregation method applied after every composition (default: weak)",
        )
        sub.add_argument(
            "--no-fuse",
            action="store_true",
            help="disable fused maximal progress during composition "
            "(compose-then-reduce baseline)",
        )
        sub.add_argument(
            "--minimiser",
            choices=["closure", "splitter", "signature"],
            default="closure",
            help="bisimulation refinement engine (default: closure, the "
            "saturation-free batched-frontier engine; 'splitter' is the "
            "per-splitter engine, 'signature' the slower reference "
            "implementation — all three compute identical quotients)",
        )
        sub.add_argument(
            "--aggregation-processes",
            type=int,
            default=1,
            help="worker processes for collapsing independent module groups "
            "under --ordering modular (default: 1, serial; the result is "
            "identical to a serial run)",
        )
        sub.add_argument(
            "--minimisation-processes",
            type=int,
            default=1,
            help="worker processes for one minimisation: connected components "
            "of the transition graph refine in parallel (default: 1; "
            "single-component models always refine serially)",
        )

    def add_measures(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--time",
            type=float,
            nargs="+",
            default=[1.0],
            help="mission time(s) at which to evaluate the unreliability (default: 1.0); "
            "all times share one vectorised transient sweep",
        )
        sub.add_argument(
            "--mttf", action="store_true", help="also report the mean time to failure"
        )
        sub.add_argument(
            "--unavailability",
            action="store_true",
            help="also report the steady-state unavailability (repairable trees)",
        )
        sub.add_argument(
            "--tolerance",
            type=float,
            default=1e-12,
            help="truncation tolerance of the uniformisation series (default: 1e-12)",
        )
        sub.add_argument(
            "--json",
            action="store_true",
            help="emit the structured result as JSON instead of text",
        )

    def add_skeleton_cache(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--skeleton-cache",
            metavar="DIR",
            default=None,
            help="content-addressed skeleton store directory; a hit on the "
            "tree's structural hash skips conversion, aggregation and "
            "minimisation entirely (the store is created if missing)",
        )

    analyze = subparsers.add_parser(
        "analyze", help="compute unreliability / bounds / MTTF / unavailability"
    )
    _add_tree_argument(analyze)
    add_measures(analyze)
    analyze.add_argument(
        "--bounds",
        action="store_true",
        help="report (min, max) unreliability bounds even for deterministic trees",
    )
    analyze.add_argument(
        "--importance",
        action="store_true",
        help="rank every failure-rate parameter by the analytic gradient of "
        "the (worst-case) unreliability at the mission times; trees without "
        "declared parameters get one per basic event",
    )
    add_skeleton_cache(analyze)
    add_common(analyze)
    analyze.set_defaults(handler=command_analyze)

    sweep = subparsers.add_parser(
        "sweep",
        help="sweep failure-rate parameters while aggregating only once",
    )
    _add_tree_argument(sweep)
    sweep.add_argument(
        "--param",
        action="append",
        required=True,
        metavar="NAME=SPEC",
        help="sweep axis: NAME=start:stop:count (linspace), NAME=v1,v2,... or "
        "NAME=value; NAME is a declared Galileo parameter or a basic event "
        "(which then gets a parameter attached); repeat for a grid",
    )
    add_measures(sweep)
    sweep.add_argument(
        "--bounds",
        action="store_true",
        help="report (min, max) unreliability bounds even for deterministic trees",
    )
    sweep.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for the per-sample solves (default: 1, serial; "
        "rows are bit-identical to a serial run)",
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="samples per scheduling chunk (default: sized from the sample "
        "count and worker count)",
    )
    sweep.add_argument(
        "--share-uniformisation",
        action="store_true",
        help="pin one uniformisation rate (the grid's largest) for every "
        "sample so the Poisson term table is computed once per grid; values "
        "agree with per-sample rates to solver precision",
    )
    sweep.add_argument(
        "--gradients",
        action="store_true",
        help="attach analytic d(measure)/d(parameter) curves to every row "
        "(the worst-case bound's gradient on non-deterministic trees)",
    )
    add_skeleton_cache(sweep)
    add_common(sweep)
    sweep.set_defaults(handler=command_sweep)

    optimize = subparsers.add_parser(
        "optimize",
        help="branch-and-bound design-space optimisation under a cost budget",
    )
    optimize.add_argument(
        "problem",
        help="built-in seeded scenario ('cas', 'cps') or path to a JSON "
        "design-problem spec {\"tree\": \"model.dft\", \"budget\": ..., "
        "\"choices\": [{\"kind\": \"spares\"|\"repair\", ...}, ...]}",
    )
    optimize.add_argument(
        "--time",
        type=float,
        default=None,
        help="mission time of the unreliability objective "
        "(default: the problem's own mission time)",
    )
    optimize.add_argument(
        "--budget",
        type=float,
        default=None,
        help="override the problem's cost budget",
    )
    optimize.add_argument(
        "--exhaustive",
        action="store_true",
        help="evaluate every feasible design instead of pruning "
        "(differential reference for the branch-and-bound)",
    )
    optimize.add_argument(
        "--tolerance",
        type=float,
        default=1e-12,
        help="truncation tolerance of the uniformisation series (default: 1e-12)",
    )
    optimize.add_argument(
        "--json",
        action="store_true",
        help="emit the structured result as JSON instead of text "
        "(schema repro.optimize/1)",
    )
    add_skeleton_cache(optimize)
    add_common(optimize)
    optimize.set_defaults(handler=command_optimize)

    batch = subparsers.add_parser(
        "batch", help="analyse a corpus of .dft files (globs allowed)"
    )
    batch.add_argument(
        "trees",
        nargs="+",
        help="paths or glob patterns of Galileo .dft files",
    )
    add_measures(batch)
    batch.add_argument(
        "--processes",
        type=int,
        default=1,
        help="number of worker processes (default: 1, serial)",
    )
    batch.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="trees per scheduling chunk (default: sized from the corpus and "
        "worker count)",
    )
    batch.add_argument(
        "--output-jsonl",
        metavar="FILE",
        default=None,
        help="stream one repro.batch/2 JSON record per tree to FILE instead of "
        "materialising all rows in memory",
    )
    add_common(batch)
    batch.set_defaults(handler=command_batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the analysis service (HTTP + content-addressed skeleton store)",
    )
    serve.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="skeleton store directory backing the service (created if missing)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8357,
        help="bind port (default: 8357; 0 picks a free ephemeral port)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=0,
        help="worker processes for /analyze requests, each holding its own "
        "warm kernel pool (default: 0, evaluate in-process)",
    )
    serve.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        help="LRU byte cap of the skeleton store (default: unlimited)",
    )
    serve.add_argument(
        "--tolerance",
        type=float,
        default=1e-12,
        help="truncation tolerance of the uniformisation series (default: 1e-12)",
    )
    add_common(serve)
    serve.set_defaults(handler=command_serve)

    cache = subparsers.add_parser(
        "cache", help="inspect, clear or prebuild a skeleton store directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def add_cache_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            required=True,
            metavar="DIR",
            help="skeleton store directory (created if missing)",
        )
        sub.add_argument(
            "--max-cache-bytes",
            type=int,
            default=None,
            help="LRU byte cap to enforce while touching the store",
        )

    cache_stats = cache_sub.add_parser("stats", help="show entry count, disk usage and versions")
    add_cache_dir(cache_stats)
    cache_stats.add_argument(
        "--json", action="store_true", help="emit the stats as JSON"
    )
    cache_stats.set_defaults(handler=command_cache)

    cache_clear = cache_sub.add_parser("clear", help="delete every cached entry")
    add_cache_dir(cache_clear)
    cache_clear.set_defaults(handler=command_cache)

    cache_warm = cache_sub.add_parser(
        "warm", help="prebuild entries for a corpus of .dft files (globs allowed)"
    )
    cache_warm.add_argument(
        "trees", nargs="+", help="paths or glob patterns of Galileo .dft files"
    )
    add_cache_dir(cache_warm)
    cache_warm.add_argument(
        "--tolerance",
        type=float,
        default=1e-12,
        help="truncation tolerance recorded with the built entries",
    )
    add_common(cache_warm)
    cache_warm.set_defaults(handler=command_cache)

    baseline = subparsers.add_parser("baseline", help="run the DIFTree-style modular baseline")
    _add_tree_argument(baseline)
    baseline.add_argument("--time", type=float, nargs="+", default=[1.0])
    baseline.set_defaults(handler=command_baseline)

    modules = subparsers.add_parser("modules", help="show the tree's independent modules")
    _add_tree_argument(modules)
    modules.set_defaults(handler=command_modules)

    community = subparsers.add_parser("community", help="list the generated I/O-IMC community")
    _add_tree_argument(community)
    add_common(community)
    community.set_defaults(handler=command_community)

    dot = subparsers.add_parser("dot", help="export the tree (or final model) as Graphviz dot")
    _add_tree_argument(dot)
    dot.add_argument("--output", "-o", help="write to a file instead of stdout")
    dot.add_argument(
        "--final-model",
        action="store_true",
        help="export the final aggregated I/O-IMC instead of the fault tree",
    )
    add_common(dot)
    dot.set_defaults(handler=command_dot)
    return parser


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
