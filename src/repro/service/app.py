"""The transport-free analysis application: request dict in, response dict out.

:class:`AnalysisService` owns one :class:`~repro.service.store.SkeletonStore`
and serves the same result schemas the CLI emits (``repro.study/1``,
``repro.sweep/3``, ``repro.batch/1``) over plain dictionaries, so the HTTP
layer (:mod:`repro.service.server`) is a thin JSON shell and every endpoint is
testable without a socket.

Bit-identity is the design invariant: a served ``/analyze`` response carries
exactly the measures an in-process ``Study(tree, skeleton_cache=store)``
computes, because both paths evaluate through
:func:`repro.core.study.evaluate_skeleton_query` on the same store entry.
With ``processes > 0`` single-tree analyses fan out over a pool of worker
processes, each holding its own store handle and a small pool of per-key
transient kernels (CSR pattern + Poisson terms survive between requests); a
worker failure of any kind falls back to the in-process path, never to an
error response.
"""

from __future__ import annotations

import threading
import time as _time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from ..core.measures import (
    MTTF,
    Query,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
)
from ..core.results import (
    BatchResult,
    BatchRow,
    MeasureResult,
    RestoredStatistics,
    StudyResult,
    SweepResult,
    SweepRow,
)
from ..core.study import StudyOptions, evaluate_skeleton_query
from ..core.sweep import RateSweep, SweepStudy, with_rate_parameters
from ..ctmc.builders import CtmcSkeleton
from ..ctmc.kernel import TransientKernel
from ..dft import galileo
from ..dft.elements import BasicEvent
from ..dft.hashing import CanonicalProfile, canonical_profile, translate_sample
from ..errors import AnalysisError, ReproError
from .store import SkeletonStore

#: Service response envelope version (additive ``service`` key on results).
SERVICE_SCHEMA = "repro.service/1"


def query_from_payload(
    payload: Optional[Mapping[str, object]], nondeterministic: bool = False
) -> Query:
    """Build a measure :class:`Query` from the wire query payload.

    Keys (all optional): ``times`` — mission times for the unreliability
    curve (default ``[1.0]``); ``bounds`` — report (min, max) envelopes;
    ``mttf`` / ``unavailability`` — extra scalar measures.  When the target
    model is non-deterministic the unreliability measure is upgraded to
    bounds automatically, mirroring the CLI.
    """
    payload = {} if payload is None else dict(payload)
    known = {"times", "bounds", "mttf", "unavailability"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise AnalysisError(
            "unknown query field(s): " + ", ".join(unknown)
            + f" (expected a subset of {sorted(known)})"
        )
    raw_times = payload.get("times", [1.0])
    if not isinstance(raw_times, (list, tuple)) or not raw_times:
        raise AnalysisError("query 'times' must be a non-empty list of mission times")
    try:
        times = [float(value) for value in raw_times]
    except (TypeError, ValueError):
        raise AnalysisError(f"query 'times' must be numbers, got {raw_times!r}") from None
    bounds = bool(payload.get("bounds", False)) or nondeterministic
    measures = [UnreliabilityBounds(times) if bounds else Unreliability(times)]
    if payload.get("mttf"):
        measures.append(MTTF())
    if payload.get("unavailability"):
        measures.append(Unavailability())
    return Query(measures)


def _percentile(samples: Tuple[float, ...], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


class ServiceMetrics:
    """Thread-safe per-endpoint request metrics with a bounded latency window."""

    def __init__(self, window: int = 1024):
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._latencies: Dict[str, Deque[float]] = {}
        self._window = int(window)
        self._started = _time.time()

    def record(self, endpoint: str, seconds: float, ok: bool = True) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            if not ok:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            window = self._latencies.setdefault(
                endpoint, deque(maxlen=self._window)
            )
            window.append(seconds)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            endpoints = {}
            for endpoint in sorted(self._requests):
                samples = tuple(self._latencies.get(endpoint, ()))
                endpoints[endpoint] = {
                    "requests": self._requests[endpoint],
                    "errors": self._errors.get(endpoint, 0),
                    "p50_ms": _percentile(samples, 0.50) * 1000.0,
                    "p95_ms": _percentile(samples, 0.95) * 1000.0,
                }
            return {
                "uptime_seconds": _time.time() - self._started,
                "endpoints": endpoints,
            }


# ---------------------------------------------------------------------------
# worker-pool plumbing (per-process kernel pool)
# ---------------------------------------------------------------------------

class _WorkerKernels:
    """Per-process serving state: a store handle + an LRU of warm kernels."""

    def __init__(self, root: str, max_bytes: Optional[int], capacity: int = 8):
        self.store = SkeletonStore(root, max_bytes=max_bytes)
        self.capacity = capacity
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()

    def evaluate(
        self,
        key: str,
        assignment: Dict[str, float],
        query_payload: Optional[Dict[str, object]],
        tolerance: float,
        on_error: str,
    ) -> Tuple[MeasureResult, ...]:
        cached = self._entries.get(key)
        if cached is None:
            entry = self.store.load(key)
            if entry is None:
                # Evicted between the parent's get_or_build and our load
                # (cap pressure): signal the parent to evaluate inline.
                raise KeyError(key)
            kernel = (
                TransientKernel(entry.skeleton, buffer=entry.buffer)
                if isinstance(entry.skeleton, CtmcSkeleton)
                else None
            )
            self._entries[key] = cached = (entry, kernel)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        entry, kernel = cached
        query = query_from_payload(query_payload, nondeterministic=entry.nondeterministic)
        return evaluate_skeleton_query(
            entry.skeleton,
            query,
            assignment,
            tolerance=tolerance,
            on_error=on_error,
            kernel=kernel,
        )


_WORKER_KERNELS: Optional[_WorkerKernels] = None


def _init_service_worker(root: str, max_bytes: Optional[int]) -> None:
    global _WORKER_KERNELS
    _WORKER_KERNELS = _WorkerKernels(root, max_bytes)


def _service_evaluate(
    key: str,
    assignment: Dict[str, float],
    query_payload: Optional[Dict[str, object]],
    tolerance: float,
    on_error: str,
) -> Tuple[MeasureResult, ...]:
    assert _WORKER_KERNELS is not None
    return _WORKER_KERNELS.evaluate(key, assignment, query_payload, tolerance, on_error)


def _service_evaluate_row(
    key: str,
    assignment: Dict[str, float],
    query_payload: Optional[Dict[str, object]],
    tolerance: float,
    on_error: str,
) -> Tuple[Tuple[MeasureResult, ...], float]:
    """One sweep/batch row in a pool worker, with its worker-side wall time."""
    assert _WORKER_KERNELS is not None
    start = _time.perf_counter()
    measures = _WORKER_KERNELS.evaluate(
        key, assignment, query_payload, tolerance, on_error
    )
    return measures, _time.perf_counter() - start


# ---------------------------------------------------------------------------
# the application object
# ---------------------------------------------------------------------------

class AnalysisService:
    """Serves analyses from a skeleton store; every handler is dict -> dict.

    ``processes > 0`` attaches a pool of worker processes for ``/analyze``
    requests (each worker keeps its own kernel pool warm); ``processes = 0``
    evaluates inline with one warm kernel per cache key.  Sweeps and batches
    always run in-process (the sweep engine parallelises internally).
    """

    def __init__(
        self,
        store: SkeletonStore,
        options: Optional[StudyOptions] = None,
        processes: int = 0,
    ):
        if int(processes) < 0:
            raise AnalysisError(f"processes must be >= 0, got {processes}")
        self.store = store
        self.options = options or StudyOptions()
        self.processes = int(processes)
        self.metrics = ServiceMetrics()
        self._build_lock = threading.Lock()
        self._eval_lock = threading.Lock()
        self._kernels: "OrderedDict[str, tuple]" = OrderedDict()
        self._kernel_capacity = 8
        self._pool: Optional[ProcessPoolExecutor] = None
        if self.processes > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=self.processes,
                initializer=_init_service_worker,
                initargs=(str(store.root), store.max_bytes),
            )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -------------------------------------------------------------- dispatch
    def handle(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, object]],
    ) -> Tuple[int, Dict[str, object]]:
        """Route one request; returns ``(http_status, response_dict)``.

        Domain errors (bad trees, bad queries) become 400 responses; unknown
        paths 404; method mismatches 405.  Every request is recorded in
        :attr:`metrics` under its endpoint.
        """
        endpoint = path.rstrip("/") or "/"
        routes = {
            ("POST", "/analyze"): self.analyze,
            ("POST", "/sweep"): self.sweep,
            ("POST", "/batch"): self.batch,
            ("GET", "/healthz"): lambda _payload: self.healthz(),
            ("GET", "/metrics"): lambda _payload: self.metrics_payload(),
        }
        handler = routes.get((method, endpoint))
        if handler is None:
            if any(route_path == endpoint for _, route_path in routes):
                return 405, {"error": f"method {method} not allowed on {endpoint}"}
            return 404, {"error": f"unknown endpoint: {endpoint}"}
        start = _time.perf_counter()
        try:
            response = handler(payload)
        except ReproError as error:
            self.metrics.record(endpoint, _time.perf_counter() - start, ok=False)
            return 400, {"error": str(error)}
        self.metrics.record(endpoint, _time.perf_counter() - start, ok=True)
        return 200, response

    # -------------------------------------------------------------- handlers
    def _parse_tree(self, payload: Optional[Mapping[str, object]], field: str = "tree"):
        if payload is None or field not in payload:
            raise AnalysisError(f"the request body needs a {field!r} field "
                                "holding a Galileo fault-tree description")
        text = payload[field]
        if not isinstance(text, str) or not text.strip():
            raise AnalysisError(f"request field {field!r} must be a non-empty "
                                "Galileo description string")
        return galileo.parse(text, name="<request>")

    def _get_entry(self, tree, profile: Optional[CanonicalProfile] = None):
        with self._build_lock:
            return self.store.get_or_build(tree, self.options, profile=profile)

    def _evaluate_inline(
        self, entry, assignment, query_payload, on_error: str
    ) -> Tuple[MeasureResult, ...]:
        with self._eval_lock:
            cached = self._kernels.get(entry.key)
            if cached is None:
                kernel = (
                    TransientKernel(entry.skeleton, buffer=entry.buffer)
                    if isinstance(entry.skeleton, CtmcSkeleton)
                    else None
                )
                self._kernels[entry.key] = cached = (entry, kernel)
                while len(self._kernels) > self._kernel_capacity:
                    self._kernels.popitem(last=False)
            else:
                self._kernels.move_to_end(entry.key)
            held_entry, kernel = cached
            query = query_from_payload(
                query_payload, nondeterministic=held_entry.nondeterministic
            )
            return evaluate_skeleton_query(
                held_entry.skeleton,
                query,
                assignment,
                tolerance=self.options.tolerance,
                on_error=on_error,
                kernel=kernel,
            )

    def _evaluate(
        self, entry, assignment, query_payload, on_error: str = "record"
    ) -> Tuple[MeasureResult, ...]:
        if self._pool is not None:
            try:
                return self._pool.submit(
                    _service_evaluate,
                    entry.key,
                    dict(assignment),
                    None if query_payload is None else dict(query_payload),
                    self.options.tolerance,
                    on_error,
                ).result()
            except ReproError:
                raise
            except Exception:
                # Broken pool, unpicklable surprise, worker-side cache
                # eviction — the response must not depend on pool health.
                pass
        return self._evaluate_inline(entry, assignment, query_payload, on_error)

    @staticmethod
    def _query_payload(payload) -> Optional[Mapping[str, object]]:
        query_payload = payload.get("query") if payload else None
        if query_payload is not None and not isinstance(query_payload, Mapping):
            raise AnalysisError("the 'query' field must be an object")
        return query_payload

    def _study_result(
        self, tree, payload, entry, hit, assignment: Dict[str, float]
    ) -> StudyResult:
        query_payload = self._query_payload(payload)
        start = _time.perf_counter()
        measures = self._evaluate(entry, assignment, query_payload, on_error="record")
        evaluation = _time.perf_counter() - start
        return self._wrap_study_result(tree, entry, hit, measures, evaluation)

    def _wrap_study_result(
        self, tree, entry, hit, measures, evaluation: float
    ) -> StudyResult:
        options = self.options.to_dict()
        options["skeleton_cache"] = "hit" if hit else "miss"
        return StudyResult(
            tree_name=tree.name,
            tree_summary=tree.summary(),
            measures=measures,
            model=entry.model,
            statistics=RestoredStatistics(dict(entry.statistics)),
            options=options,
            timings={"evaluation": evaluation, "total": evaluation},
        )

    def analyze(self, payload: Optional[Mapping[str, object]]) -> Dict[str, object]:
        """``POST /analyze``: one tree, one query -> ``repro.study/1``.

        The tree is walked once: the request's
        :class:`~repro.dft.hashing.CanonicalProfile` supplies both the cache
        key's structural hash and the canonical rate assignment, so a cache
        hit evaluates without touching the tree again.
        """
        tree = self._parse_tree(payload)
        profile = canonical_profile(tree)
        entry, hit = self._get_entry(tree, profile)
        result = self._study_result(tree, payload, entry, hit, profile.assignment)
        response = result.to_dict(include_steps=False)
        response["service"] = {
            "schema": SERVICE_SCHEMA,
            "cache": "hit" if hit else "miss",
            "key": entry.key,
        }
        return response

    def sweep(self, payload: Optional[Mapping[str, object]]) -> Dict[str, object]:
        """``POST /sweep``: one tree, axes or samples -> ``repro.sweep/3``."""
        tree = self._parse_tree(payload)
        assert payload is not None
        axes = payload.get("axes")
        samples = payload.get("samples")
        if (axes is None) == (samples is None):
            raise AnalysisError(
                "a sweep request needs exactly one of 'axes' "
                "(parameter -> value list) or 'samples' (list of assignments)"
            )
        if axes is not None and isinstance(axes, Mapping):
            swept = [str(name) for name in axes]
        elif isinstance(samples, (list, tuple)):
            swept = sorted(
                {
                    str(name)
                    for sample in samples
                    if isinstance(sample, Mapping)
                    for name in sample
                }
            )
        else:
            swept = []
        # Mirror the CLI: an axis naming a basic event (not a declared
        # parameter) attaches a parameter of the same name to that event.
        attach = [
            name
            for name in swept
            if name not in tree.parameters
            and name in tree
            and isinstance(tree.element(name), BasicEvent)
        ]
        if attach:
            tree = with_rate_parameters(tree, {name: name for name in attach})
        profile = canonical_profile(tree)
        entry, hit = self._get_entry(tree, profile)
        query = query_from_payload(
            payload.get("query"), nondeterministic=entry.nondeterministic  # type: ignore[arg-type]
        )
        if axes is not None:
            if not isinstance(axes, Mapping) or not axes:
                raise AnalysisError("'axes' must map parameter names to value lists")
            rate_sweep = RateSweep.grid(query, **{str(k): v for k, v in axes.items()})  # type: ignore[arg-type]
        else:
            if not isinstance(samples, (list, tuple)):
                raise AnalysisError("'samples' must be a list of parameter assignments")
            rate_sweep = RateSweep(query, samples)  # type: ignore[arg-type]
        share = bool(payload.get("share_uniformisation", False))
        result = None
        if self._pool is not None and not share:
            result = self._sweep_pooled(tree, profile, entry, hit, rate_sweep, payload)
        if result is None:
            study = SweepStudy(tree, self.options, skeleton_cache=self.store)
            result = study.run(
                rate_sweep,
                processes=int(payload.get("processes", 1)),  # type: ignore[arg-type]
                share_uniformisation=share,
            )
        response = result.to_dict()
        response["service"] = {
            "schema": SERVICE_SCHEMA,
            "cache": "hit" if hit else "miss",
            "key": entry.key,
        }
        return response

    def _sweep_pooled(
        self, tree, profile: CanonicalProfile, entry, hit, rate_sweep, payload
    ) -> Optional[SweepResult]:
        """Fan the sweep's rows out over the service worker pool.

        All rows are submitted concurrently, so one big ``POST /sweep``
        saturates every pool worker (each holding a warm per-key kernel)
        instead of spinning up a fresh per-request pool.  Rows come back in
        sample order with the same per-row measures as the inline engine.
        Returns ``None`` on any pool failure — the caller falls back to the
        inline sweep engine (``share_uniformisation`` requests take the
        inline path up front: the pinned Poisson table is per-plan state the
        pooled rows do not share).
        """
        declared = tree.parameters
        unknown = [name for name in rate_sweep.parameters if name not in declared]
        if unknown:
            raise AnalysisError(
                "the sweep varies parameters the tree does not declare: "
                + ", ".join(sorted(unknown))
                + " (declare them with 'param <name> = <value>;' or "
                "DynamicFaultTree.declare_parameter)"
            )
        query_payload = self._query_payload(payload)
        parameter_map = profile.parameter_map
        base = profile.assignment
        pool = self._pool
        assert pool is not None
        start = _time.perf_counter()
        try:
            futures = []
            for sample in rate_sweep.samples:
                assignment = dict(base)
                assignment.update(translate_sample(sample, parameter_map))
                futures.append(
                    pool.submit(
                        _service_evaluate_row,
                        entry.key,
                        assignment,
                        None if query_payload is None else dict(query_payload),
                        self.options.tolerance,
                        "record",
                    )
                )
            rows = []
            for sample, future in zip(rate_sweep.samples, futures):
                measures, seconds = future.result()
                rows.append(
                    SweepRow(
                        sample=dict(sample),
                        measures=measures,
                        wall_seconds=seconds,
                    )
                )
        except ReproError:
            raise
        except Exception:
            # Broken pool / worker-side eviction: inline engine takes over.
            return None
        samples_seconds = _time.perf_counter() - start
        options = self.options.to_dict()
        options["skeleton_cache"] = "hit" if hit else "miss"
        options["service_pool"] = True
        return SweepResult(
            tree_name=tree.name,
            parameters=rate_sweep.parameters,
            rows=tuple(rows),
            model=entry.model,
            options=options,
            timings={"samples": samples_seconds, "total": samples_seconds},
            processes=self.processes,
        )

    def batch(self, payload: Optional[Mapping[str, object]]) -> Dict[str, object]:
        """``POST /batch``: many trees, one query -> ``repro.batch/1``."""
        if payload is None or not isinstance(payload.get("trees"), (list, tuple)):
            raise AnalysisError(
                "a batch request needs a 'trees' list of Galileo descriptions"
            )
        trees = payload["trees"]
        if not trees:
            raise AnalysisError("a batch request needs at least one tree")
        query_payload = self._query_payload(payload)
        hits = 0
        misses = 0
        start = _time.perf_counter()
        # First pass (serial): parse every tree and resolve its skeleton.
        # Each slot holds either an error row or the material an evaluation
        # needs, so the pooled pass can submit all rows before gathering any.
        prepared: List[object] = []
        for index, text in enumerate(trees):  # type: ignore[union-attr]
            row_start = _time.perf_counter()
            try:
                if not isinstance(text, str) or not text.strip():
                    raise AnalysisError(
                        f"batch tree #{index} must be a non-empty Galileo string"
                    )
                tree = galileo.parse(text, name=f"<batch#{index}>")
                profile = canonical_profile(tree)
                entry, hit = self._get_entry(tree, profile)
                hits += 1 if hit else 0
                misses += 0 if hit else 1
                prepared.append((tree, profile, entry, hit, row_start))
            except ReproError as error:
                prepared.append(
                    BatchRow(
                        name=f"<batch#{index}>",
                        source=None,
                        result=None,
                        error=str(error),
                        wall_seconds=_time.perf_counter() - row_start,
                    )
                )
        # Second pass: evaluate the parsed rows — concurrently over the
        # service pool when it is healthy, inline otherwise.
        futures: Dict[int, object] = {}
        if self._pool is not None:
            for index, item in enumerate(prepared):
                if isinstance(item, BatchRow):
                    continue
                tree, profile, entry, hit, row_start = item
                try:
                    futures[index] = self._pool.submit(
                        _service_evaluate_row,
                        entry.key,
                        dict(profile.assignment),
                        None if query_payload is None else dict(query_payload),
                        self.options.tolerance,
                        "record",
                    )
                except Exception:
                    # Broken pool: leave the row to the inline path below.
                    break
        rows = []
        for index, item in enumerate(prepared):
            if isinstance(item, BatchRow):
                rows.append(item)
                continue
            tree, profile, entry, hit, row_start = item
            try:
                future = futures.get(index)
                if future is not None:
                    try:
                        measures, evaluation = future.result()  # type: ignore[attr-defined]
                    except ReproError:
                        raise
                    except Exception:
                        future = None
                if future is None:
                    eval_start = _time.perf_counter()
                    measures = self._evaluate_inline(
                        entry, profile.assignment, query_payload, "record"
                    )
                    evaluation = _time.perf_counter() - eval_start
                result = self._wrap_study_result(tree, entry, hit, measures, evaluation)
                rows.append(
                    BatchRow(
                        name=tree.name,
                        source=None,
                        result=result,
                        error=None,
                        wall_seconds=_time.perf_counter() - row_start,
                    )
                )
            except ReproError as error:
                rows.append(
                    BatchRow(
                        name=tree.name,
                        source=None,
                        result=None,
                        error=str(error),
                        wall_seconds=_time.perf_counter() - row_start,
                    )
                )
        batch_result = BatchResult(
            rows=tuple(rows),
            wall_seconds=_time.perf_counter() - start,
            processes=self.processes if futures else 1,
        )
        response = batch_result.to_dict()
        response["service"] = {
            "schema": SERVICE_SCHEMA,
            "cache_hits": hits,
            "cache_misses": misses,
        }
        return response

    def healthz(self) -> Dict[str, object]:
        stats = self.store.stats()
        return {
            "status": "ok",
            "schema": SERVICE_SCHEMA,
            "store": stats["root"],
            "entries": stats["entries"],
            "processes": self.processes,
        }

    def metrics_payload(self) -> Dict[str, object]:
        payload = self.metrics.snapshot()
        payload["schema"] = SERVICE_SCHEMA
        payload["store"] = self.store.stats()
        return payload
