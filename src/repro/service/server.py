"""Stdlib-only HTTP front-end of the analysis service.

A :class:`AnalysisServer` is a :class:`http.server.ThreadingHTTPServer` whose
handler forwards every request to an :class:`~repro.service.app.AnalysisService`
(dict in, dict out) and speaks JSON on the wire:

* ``POST /analyze`` — one tree, one query (``repro.study/1`` + ``service``);
* ``POST /sweep``   — one tree, a sample grid (``repro.sweep/3`` + ``service``);
* ``POST /batch``   — many trees, one query (``repro.batch/1`` + ``service``);
* ``GET /healthz``  — liveness + store shape;
* ``GET /metrics``  — per-endpoint counts/latency percentiles + store stats.

The threading server gives every connection its own handler thread; the
service object is thread-safe (kernel reuse is serialised, the optional
worker pool parallelises analyses across processes).  ``port=0`` binds an
ephemeral port — read it back from :attr:`AnalysisServer.server_address`.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..core.study import StudyOptions
from .app import AnalysisService
from .store import SkeletonStore

LOGGER = logging.getLogger("repro.service.server")

#: Request bodies beyond this are refused with 413 (a tree description or a
#: batch of them is text; anything larger signals a runaway client).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        status, payload = service.handle("GET", self.path, None)
        self._respond(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._respond(400, {"error": "invalid Content-Length header"})
            return
        if length > MAX_BODY_BYTES:
            self._respond(413, {"error": f"request body exceeds {MAX_BODY_BYTES} bytes"})
            return
        body = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._respond(400, {"error": f"request body is not valid JSON: {error}"})
            return
        if payload is not None and not isinstance(payload, dict):
            self._respond(400, {"error": "request body must be a JSON object"})
            return
        status, response = service.handle("POST", self.path, payload)
        self._respond(status, response)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        LOGGER.debug("%s - %s", self.address_string(), format % args)


class AnalysisServer(ThreadingHTTPServer):
    """The serving socket; owns an :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: AnalysisService):
        super().__init__(address, _ServiceHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        try:
            self.service.close()
        finally:
            super().server_close()


def serve(
    cache_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    processes: int = 0,
    options: Optional[StudyOptions] = None,
    max_cache_bytes: Optional[int] = None,
) -> AnalysisServer:
    """Build a ready-to-run server around a skeleton store at ``cache_dir``.

    Returns the bound (but not yet serving) server; call ``serve_forever()``
    to block, or drive it from a thread in tests.  ``port=0`` picks a free
    ephemeral port.
    """
    store = SkeletonStore(cache_dir, max_bytes=max_cache_bytes)
    service = AnalysisService(store, options=options, processes=processes)
    return AnalysisServer((host, port), service)
