"""Content-addressed on-disk store of aggregated skeletons.

The expensive half of the pipeline (conversion, composition, minimisation)
depends only on a fault tree's *structure* — :mod:`repro.dft.hashing` defines
the equivalence and its canonical hash.  This module caches the expensive
half's output under that hash:

* one cache entry = the :class:`~repro.ctmc.builders.CtmcSkeleton` /
  :class:`~repro.ctmc.builders.CtmdpSkeleton` of the tree's *canonical
  parametrisation* (every rate bound to a canonical per-event parameter, so
  the entry serves **every** tree of the hash class), plus the prebuilt CSR
  pattern (:class:`~repro.ctmc.kernel.CsrBuffer`), the aggregation statistics
  summary and the build timings;
* the on-disk format is ``MAGIC | format version | sha256(payload) | payload``
  with the payload a pickle of the entry — any truncation, bit flip, version
  mismatch or unpicklable payload is detected, logged, **evicted** and
  silently recomputed, never crashing a request and never serving a stale or
  corrupt structure;
* writes are atomic (temp file + ``os.replace``) so concurrent builders and
  readers only ever observe complete entries;
* an optional byte cap turns the directory into an mtime-LRU: loads touch the
  entry, stores evict the oldest entries beyond the cap.

:class:`~repro.core.study.Study` and :class:`~repro.core.sweep.SweepStudy`
accept a store via ``skeleton_cache=`` and skip conversion + aggregation +
minimisation entirely on a hit; the HTTP serving layer
(:mod:`repro.service.server`) is built on the same entries.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
import time as _time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.results import ModelInfo
from ..core.study import Study, StudyOptions
from ..ctmc.builders import (
    CtmcSkeleton,
    CtmdpSkeleton,
    ctmc_skeleton_from_ioimc,
    ctmdp_skeleton_from_ioimc,
)
from ..ctmc.kernel import CsrBuffer
from ..dft import galileo
from ..dft.hashing import (
    HASH_VERSION,
    CanonicalProfile,
    canonical_parametrisation,
    structural_hash,
)
from ..dft.tree import DynamicFaultTree
from ..errors import AnalysisError, NondeterminismError, ReproError

LOGGER = logging.getLogger("repro.service.store")

#: Leading bytes of every cache file ("Repro SKeleton Cache").
MAGIC = b"RSKC"
#: On-disk format version written by :meth:`SkeletonStore.store`.  Version 2
#: compresses the payload with zlib level 1 and adds the cached canonical
#: parameter list to the entry; version 1 (uncompressed) files remain
#: readable — the checksum always covers the *uncompressed* pickle bytes.
FORMAT_VERSION = 2
#: Versions :meth:`SkeletonStore.load` still accepts.
READABLE_VERSIONS = (1, 2)
#: zlib compression level of version-2 payloads (pickled CSR buffers are
#: highly compressible; level 1 is nearly free next to a pipeline run).
COMPRESSION_LEVEL = 1
#: Bytes before the pickled payload: magic, version, payload checksum.
_HEADER_SIZE = len(MAGIC) + 4 + 32
#: File suffix of cache entries.
ENTRY_SUFFIX = ".skel"
#: Temp files (``.tmp-*``) older than this are considered orphans of a
#: crashed writer and reclaimed on the next store; younger ones may belong
#: to a live concurrent writer and are left alone.
TEMP_GRACE_SECONDS = 3600.0


def _options_fingerprint(options: Optional[StudyOptions]) -> str:
    """A short digest of the options that shape the cached structure.

    Tolerance and worker counts do not: the truncation tolerance only affects
    evaluation, and parallel aggregation is pinned identical to serial.
    """
    payload = (options or StudyOptions()).to_dict()
    payload.pop("tolerance", None)
    payload.pop("aggregation_processes", None)
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:12]


def cache_key(
    tree: DynamicFaultTree,
    options: Optional[StudyOptions] = None,
    tree_hash: Optional[str] = None,
) -> str:
    """The store key of ``tree``: structural hash + options fingerprint.

    ``tree_hash`` accepts a precomputed :func:`structural_hash` (e.g. from a
    :class:`~repro.dft.hashing.CanonicalProfile`) so callers that already
    walked the tree do not walk it again.
    """
    if tree_hash is None:
        tree_hash = structural_hash(tree)
    return f"{tree_hash}-{_options_fingerprint(options)}"


@dataclass
class SkeletonEntry:
    """One cached structure: skeleton, CSR pattern, statistics, provenance.

    The skeleton belongs to the *canonical parametrisation* of the hash
    class, so instantiating it under
    :func:`repro.dft.hashing.canonical_assignment` of any member tree yields
    that tree's Markov model.  ``buffer`` (CTMC entries only) shares the
    skeleton object, an identity pickling preserves.
    """

    key: str
    tree_hash: str
    hash_version: int
    skeleton: Union[CtmcSkeleton, CtmdpSkeleton]
    buffer: Optional[CsrBuffer]
    model: ModelInfo
    statistics: Dict[str, object]
    timings: Dict[str, float] = field(default_factory=dict)
    #: Canonical parameter names declared by the class's canonical
    #: parametrisation, in canonical order (format version 2; empty on
    #: entries restored from version-1 files).
    canonical_params: Tuple[str, ...] = ()

    @property
    def nondeterministic(self) -> bool:
        return isinstance(self.skeleton, CtmdpSkeleton)


def build_entry(
    tree: DynamicFaultTree,
    options: Optional[StudyOptions] = None,
    key: Optional[str] = None,
    tree_hash: Optional[str] = None,
) -> SkeletonEntry:
    """Run the expensive pipeline once for ``tree``'s structural class.

    The pipeline runs on the canonical parametrisation, so the resulting
    skeleton is rate-free: concrete rates of the source tree never leak into
    the cached structure.
    """
    if tree_hash is None:
        tree_hash = structural_hash(tree)
    if key is None:
        key = f"{tree_hash}-{_options_fingerprint(options)}"
    canonical = canonical_parametrisation(tree)
    study = Study(canonical, options)
    final = study.final_ioimc
    start = _time.perf_counter()
    buffer: Optional[CsrBuffer] = None
    skeleton: Union[CtmcSkeleton, CtmdpSkeleton]
    try:
        skeleton = ctmc_skeleton_from_ioimc(final)
        buffer = CsrBuffer(skeleton)
    except NondeterminismError:
        skeleton = ctmdp_skeleton_from_ioimc(final)
    skeleton_seconds = _time.perf_counter() - start
    nondeterministic = isinstance(skeleton, CtmdpSkeleton)
    model = ModelInfo(
        kind="ctmdp" if nondeterministic else "ctmc",
        states=skeleton.num_states,
        nondeterministic=nondeterministic,
        final_ioimc_states=final.num_states,
        final_ioimc_transitions=final.num_transitions,
        community_size=len(study.community.members),
    )
    study_timings = study.timings
    timings = {
        "conversion": study_timings.get("conversion", 0.0),
        "aggregation": study_timings.get("aggregation", 0.0),
        "skeleton": skeleton_seconds,
        "build": (
            study_timings.get("conversion", 0.0)
            + study_timings.get("aggregation", 0.0)
            + skeleton_seconds
        ),
    }
    return SkeletonEntry(
        key=key,
        tree_hash=tree_hash,
        hash_version=HASH_VERSION,
        skeleton=skeleton,
        buffer=buffer,
        model=model,
        statistics=dict(study.statistics.to_dict(include_steps=False)),
        timings=timings,
        canonical_params=tuple(canonical.parameters),
    )


class SkeletonStore:
    """A directory of content-addressed skeleton entries with an LRU byte cap.

    Thread/process safety relies on the atomicity of ``os.replace`` and on
    entries being immutable once written: concurrent builders of the same key
    race benignly (last write wins, both writes are identical up to timings)
    and readers only ever see complete files.  Counters (hits, misses,
    corrupt evictions, ...) are per-store-object.
    """

    def __init__(
        self, root: Union[str, Path], max_bytes: Optional[int] = None
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and int(max_bytes) <= 0:
            raise AnalysisError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt_evictions = 0
        self.temp_reclaimed = 0
        self._utime_warned = False

    # ------------------------------------------------------------------ paths
    def path_of(self, key: str) -> Path:
        return self.root / f"{key}{ENTRY_SUFFIX}"

    def _entries_on_disk(self) -> List[Path]:
        return [
            path
            for path in self.root.glob(f"*{ENTRY_SUFFIX}")
            if not path.name.startswith(".")
        ]

    # ------------------------------------------------------------------- load
    def load(self, key: str) -> Optional[SkeletonEntry]:
        """The entry under ``key``, or None (miss / evicted-corrupt entry)."""
        path = self.path_of(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            LOGGER.warning("skeleton cache: cannot read %s (%s)", path, error)
            self.misses += 1
            return None
        entry = self._decode(raw, path, key)
        if entry is None:
            self.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError as error:
            # A read-only or shared (NFS) store cannot take the LRU touch;
            # the entry itself is perfectly good, so serve it anyway and say
            # so once per store object instead of failing (or staying silent
            # about degraded LRU ordering) on every hit.
            if not self._utime_warned:
                self._utime_warned = True
                LOGGER.warning(
                    "skeleton cache: cannot touch %s for LRU ordering (%s); "
                    "entries are served anyway but eviction order degrades to "
                    "write time",
                    path,
                    error,
                )
        self.hits += 1
        return entry

    def _decode(
        self, raw: bytes, path: Path, key: str
    ) -> Optional[SkeletonEntry]:
        """Decode one cache file; evict (and log) anything not pristine."""
        if len(raw) < _HEADER_SIZE or raw[: len(MAGIC)] != MAGIC:
            return self._evict_corrupt(path, "truncated or foreign header")
        version = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 4], "big")
        if version not in READABLE_VERSIONS:
            return self._evict_corrupt(
                path, f"format version {version} not in {READABLE_VERSIONS}"
            )
        checksum = raw[len(MAGIC) + 4 : _HEADER_SIZE]
        payload = raw[_HEADER_SIZE:]
        if version >= 2:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as error:
                return self._evict_corrupt(path, f"undecompressable payload ({error})")
        if hashlib.sha256(payload).digest() != checksum:
            return self._evict_corrupt(path, "payload checksum mismatch")
        try:
            entry = pickle.loads(payload)
        except Exception as error:  # noqa: BLE001 - any unpickling failure
            return self._evict_corrupt(path, f"unpicklable payload ({error})")
        if not isinstance(entry, SkeletonEntry):
            return self._evict_corrupt(path, "payload is not a skeleton entry")
        if not hasattr(entry, "canonical_params"):
            entry.canonical_params = ()  # restored from a version-1 file
        if entry.hash_version != HASH_VERSION:
            return self._evict_corrupt(
                path,
                f"structural-hash version {entry.hash_version} != {HASH_VERSION}",
            )
        if entry.key != key:
            return self._evict_corrupt(path, f"entry key {entry.key!r} != {key!r}")
        return entry

    def _evict_corrupt(self, path: Path, reason: str) -> None:
        LOGGER.warning(
            "skeleton cache: evicting %s (%s); the structure will be recomputed",
            path,
            reason,
        )
        try:
            path.unlink()
        except OSError:
            pass
        self.corrupt_evictions += 1
        return None

    # ------------------------------------------------------------------ store
    def store(self, entry: SkeletonEntry) -> Path:
        """Atomically persist ``entry`` and enforce the byte cap.

        The payload is zlib-compressed (level :data:`COMPRESSION_LEVEL`); the
        header checksum stays over the *uncompressed* pickle bytes, so the
        integrity check survives any future compression change.
        """
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        compressed = zlib.compress(payload, COMPRESSION_LEVEL)
        blob = (
            MAGIC
            + FORMAT_VERSION.to_bytes(4, "big")
            + hashlib.sha256(payload).digest()
            + compressed
        )
        path = self.path_of(entry.key)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=ENTRY_SUFFIX
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        self._reclaim_stale_temps()
        self._enforce_cap(keep=path)
        return path

    def _reclaim_stale_temps(self, now: Optional[float] = None) -> int:
        """Unlink orphaned ``.tmp-*`` files left behind by crashed writers.

        A writer that dies between ``mkstemp`` and ``os.replace`` leaks its
        temp file forever: the dot prefix hides it from ``_entries_on_disk``,
        so neither the byte cap nor ``clear`` ever touches it.  Temp files
        younger than :data:`TEMP_GRACE_SECONDS` may belong to a *live*
        concurrent writer and are left alone; older ones are reclaimed.
        """
        if now is None:
            now = _time.time()
        reclaimed = 0
        for path in self.root.glob(f".tmp-*{ENTRY_SUFFIX}"):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age < TEMP_GRACE_SECONDS:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            reclaimed += 1
            LOGGER.warning(
                "skeleton cache: reclaimed stale temp file %s (%.0fs old)",
                path,
                age,
            )
        self.temp_reclaimed += reclaimed
        return reclaimed

    def _enforce_cap(self, keep: Optional[Path] = None) -> None:
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self._entries_on_disk():
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
            total += status.st_size
        entries.sort()
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep and len(entries) > 1:
                continue  # evict the newest entry only as a last resort
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1

    # ------------------------------------------------------------- high level
    def get_or_build(
        self,
        tree: DynamicFaultTree,
        options: Optional[StudyOptions] = None,
        profile: Optional[CanonicalProfile] = None,
    ) -> Tuple[SkeletonEntry, bool]:
        """The entry of ``tree``'s class, building and persisting on a miss.

        Returns ``(entry, hit)``.  A store failure (disk full, read-only
        root) degrades to cache-less operation: the freshly built entry is
        returned anyway.  ``profile`` accepts the tree's precomputed
        :class:`~repro.dft.hashing.CanonicalProfile` so a hit costs no
        further tree walk.
        """
        tree_hash = None if profile is None else profile.hash
        key = cache_key(tree, options, tree_hash=tree_hash)
        entry = self.load(key)
        if entry is not None:
            return entry, True
        entry = build_entry(tree, options, key=key, tree_hash=tree_hash)
        try:
            self.store(entry)
        except OSError as error:
            LOGGER.warning(
                "skeleton cache: cannot persist %s (%s); serving unpersisted",
                key,
                error,
            )
        return entry, False

    def warm(
        self,
        sources: Iterable[Union[str, Path, DynamicFaultTree]],
        options: Optional[StudyOptions] = None,
    ) -> Dict[str, int]:
        """Prebuild entries for trees / Galileo files; returns counters."""
        built = 0
        hits = 0
        failed = 0
        for source in sources:
            try:
                if isinstance(source, DynamicFaultTree):
                    tree = source
                else:
                    tree = galileo.parse_file(str(source))
                _entry, hit = self.get_or_build(tree, options)
            except (ReproError, OSError) as error:
                LOGGER.warning("skeleton cache: cannot warm %s (%s)", source, error)
                failed += 1
                continue
            if hit:
                hits += 1
            else:
                built += 1
        return {"built": built, "hits": hits, "failed": failed}

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        for path in self._entries_on_disk():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def _compression_on_disk(self, entries: List[Path]) -> Dict[str, int]:
        """Uncompressed vs stored payload bytes, measured from the files.

        Measured on demand rather than accumulated at write time so a fresh
        ``repro cache stats`` process reports the real on-disk figures.
        Entries that cannot be read or inflated are skipped here — ``load``
        is the path that evicts them.
        """
        payload = compressed = 0
        for path in entries:
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            if len(raw) < _HEADER_SIZE or raw[: len(MAGIC)] != MAGIC:
                continue
            version = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 4], "big")
            body = len(raw) - _HEADER_SIZE
            if version == 1:  # stored uncompressed
                payload += body
                compressed += body
            elif version in READABLE_VERSIONS:
                try:
                    payload += len(zlib.decompress(raw[_HEADER_SIZE:]))
                except zlib.error:
                    continue
                compressed += body
        return {"payload_bytes": payload, "compressed_bytes": compressed}

    def stats(self) -> Dict[str, object]:
        """Disk usage and per-object counters, JSON-safe."""
        entries = self._entries_on_disk()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                continue
        compression = self._compression_on_disk(entries)
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": total,
            "max_bytes": self.max_bytes,
            "hash_version": HASH_VERSION,
            "format_version": FORMAT_VERSION,
            "compression": f"zlib-{COMPRESSION_LEVEL}",
            "payload_bytes": compression["payload_bytes"],
            "compressed_bytes": compression["compressed_bytes"],
            "compression_ratio": (
                round(
                    compression["payload_bytes"]
                    / compression["compressed_bytes"],
                    3,
                )
                if compression["compressed_bytes"]
                else None
            ),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_evictions": self.corrupt_evictions,
            "temp_reclaimed": self.temp_reclaimed,
        }
