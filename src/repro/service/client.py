"""Retry/backoff HTTP client of the analysis service (stdlib ``urllib`` only).

:class:`ServiceClient` mirrors the server's endpoints one method each and
speaks the same JSON schemas; trees may be passed as Galileo text or as
in-memory :class:`~repro.dft.tree.DynamicFaultTree` objects (serialised with
:func:`repro.dft.galileo.write` — note the writer quantises rates at
``%.10g``, so an exact-comparison harness should parse the written text on
both sides).

Transport failures (connection refused, 5xx) are retried with exponential
backoff; 4xx responses raise :class:`ServiceError` immediately with the
server's error message attached.
"""

from __future__ import annotations

import json
import time as _time
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..core.results import StudyResult
from ..dft import galileo
from ..dft.tree import DynamicFaultTree
from ..errors import ReproError

TreeLike = Union[str, DynamicFaultTree]


class ServiceError(ReproError):
    """A request the service rejected or a server that stayed unreachable."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


def _tree_text(tree: TreeLike) -> str:
    if isinstance(tree, DynamicFaultTree):
        return galileo.write(tree)
    if not isinstance(tree, str) or not tree.strip():
        raise ServiceError(
            "a tree must be a DynamicFaultTree or a Galileo description string"
        )
    return tree


def _query_payload(
    times: Optional[Sequence[float]],
    bounds: bool,
    mttf: bool,
    unavailability: bool,
) -> Optional[Dict[str, object]]:
    payload: Dict[str, object] = {}
    if times is not None:
        payload["times"] = [float(value) for value in times]
    if bounds:
        payload["bounds"] = True
    if mttf:
        payload["mttf"] = True
    if unavailability:
        payload["unavailability"] = True
    return payload or None


class ServiceClient:
    """A thin, dependency-free client for one service base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.1,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)

    # ------------------------------------------------------------- transport
    def _request(
        self, method: str, path: str, payload: Optional[Mapping[str, object]] = None
    ) -> Dict[str, object]:
        url = self.base_url + path
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                detail: Dict[str, object] = {}
                try:
                    detail = json.loads(error.read().decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    pass
                message = str(detail.get("error", f"HTTP {error.code}"))
                if error.code < 500:
                    raise ServiceError(
                        f"{method} {path} failed: {message}",
                        status=error.code,
                        payload=detail,
                    ) from None
                last_error = f"HTTP {error.code}: {message}"
            except urllib.error.URLError as error:
                last_error = str(error.reason)
            except (TimeoutError, ConnectionError) as error:
                last_error = str(error)
            if attempt < self.retries:
                _time.sleep(self.backoff * (2 ** attempt))
        raise ServiceError(
            f"{method} {url} failed after {self.retries + 1} attempts: {last_error}"
        )

    # ------------------------------------------------------------- endpoints
    def analyze(
        self,
        tree: TreeLike,
        times: Optional[Sequence[float]] = None,
        bounds: bool = False,
        mttf: bool = False,
        unavailability: bool = False,
    ) -> Dict[str, object]:
        """``POST /analyze``: the raw ``repro.study/1`` response dict."""
        payload: Dict[str, object] = {"tree": _tree_text(tree)}
        query = _query_payload(times, bounds, mttf, unavailability)
        if query is not None:
            payload["query"] = query
        return self._request("POST", "/analyze", payload)

    def analyze_result(self, tree: TreeLike, **kwargs) -> StudyResult:
        """Like :meth:`analyze`, parsed back into a :class:`StudyResult`."""
        return StudyResult.from_dict(self.analyze(tree, **kwargs))

    def sweep(
        self,
        tree: TreeLike,
        axes: Optional[Mapping[str, Sequence[float]]] = None,
        samples: Optional[Sequence[Mapping[str, float]]] = None,
        times: Optional[Sequence[float]] = None,
        bounds: bool = False,
        mttf: bool = False,
        unavailability: bool = False,
        processes: int = 1,
        share_uniformisation: bool = False,
    ) -> Dict[str, object]:
        """``POST /sweep``: the raw ``repro.sweep/3`` response dict."""
        payload: Dict[str, object] = {"tree": _tree_text(tree)}
        if axes is not None:
            payload["axes"] = {str(k): [float(x) for x in v] for k, v in axes.items()}
        if samples is not None:
            payload["samples"] = [dict(sample) for sample in samples]
        query = _query_payload(times, bounds, mttf, unavailability)
        if query is not None:
            payload["query"] = query
        if processes != 1:
            payload["processes"] = int(processes)
        if share_uniformisation:
            payload["share_uniformisation"] = True
        return self._request("POST", "/sweep", payload)

    def batch(
        self,
        trees: Sequence[TreeLike],
        times: Optional[Sequence[float]] = None,
        bounds: bool = False,
        mttf: bool = False,
        unavailability: bool = False,
    ) -> Dict[str, object]:
        """``POST /batch``: the raw ``repro.batch/1`` response dict."""
        payload: Dict[str, object] = {
            "trees": [_tree_text(tree) for tree in trees]
        }
        query = _query_payload(times, bounds, mttf, unavailability)
        if query is not None:
            payload["query"] = query
        return self._request("POST", "/batch", payload)

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")
