"""Analysis as a service: skeleton store + stdlib HTTP serving layer.

The compositional pipeline splits into an expensive, *structure-only* part
(conversion, composition, bisimulation minimisation — seconds to minutes) and
a cheap, rate-dependent part (CSR refill + uniformisation — microseconds per
query).  This package exploits that split for traffic:

* :mod:`repro.service.store` — a content-addressed on-disk cache of aggregated
  skeletons keyed by the canonical structural hash of the fault tree
  (:mod:`repro.dft.hashing`), so every analysis of an already-seen structure
  skips straight to the kernel;
* :mod:`repro.service.app` — the transport-free application object
  (request dict in, response dict out) with per-endpoint metrics and an
  optional pool of per-process kernels;
* :mod:`repro.service.server` — a stdlib-only threading HTTP server exposing
  ``POST /analyze``, ``/sweep``, ``/batch`` and ``GET /healthz``, ``/metrics``
  with the existing ``repro.study/1`` / ``repro.sweep/3`` JSON schemas as the
  wire format;
* :mod:`repro.service.client` — a retry/backoff HTTP client mirroring the
  endpoints.
"""

from .app import AnalysisService, ServiceMetrics, query_from_payload
from .client import ServiceClient, ServiceError
from .server import serve
from .store import SkeletonEntry, SkeletonStore, build_entry, cache_key

__all__ = [
    "AnalysisService",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SkeletonEntry",
    "SkeletonStore",
    "build_entry",
    "cache_key",
    "query_from_payload",
    "serve",
]
