"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch any failure originating in this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An I/O-IMC (or CTMC/CTMDP) is malformed or used inconsistently."""


class SignatureError(ModelError):
    """An action signature is inconsistent (overlapping action sets, unknown
    actions referenced by transitions, ...)."""


class CompositionError(ModelError):
    """Two I/O-IMC cannot be parallel composed (e.g. both control the same
    output action)."""


class NondeterminismError(ReproError):
    """A closed model that was expected to be a CTMC contains a
    non-deterministic choice between internal transitions.

    The paper (Section 4.4) treats this as a feature: the analysis detects the
    non-determinism and falls back to CTMDP bounds.  This exception carries the
    offending states so tooling can report where the non-determinism comes
    from.
    """

    def __init__(self, message: str, states: tuple = ()):  # type: ignore[type-arg]
        super().__init__(message)
        self.states = tuple(states)


class FaultTreeError(ReproError):
    """A dynamic fault tree definition is invalid (cycles, bad arities,
    unknown references, malformed parameters)."""


class GalileoSyntaxError(FaultTreeError):
    """The textual Galileo representation of a DFT could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class ConversionError(ReproError):
    """The DFT could not be converted into an I/O-IMC community."""


class AnalysisError(ReproError):
    """A numerical analysis step failed or was requested on an unsuitable
    model (e.g. steady-state analysis of a reducible absorbing chain)."""
