"""Steady-state analysis of CTMCs.

Repairable DFTs (Section 7.2 of the paper) are analysed for *unavailability*,
the long-run fraction of time the system spends in failed states.  For an
irreducible CTMC this is the unique stationary distribution; for chains with a
single terminal (bottom) strongly-connected component reachable with
probability one we return the stationary distribution of that component.
Chains with several terminal components (e.g. an absorbing failure state next
to a recurrent repairable part) have no unique long-run distribution and an
:class:`~repro.errors.AnalysisError` is raised.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import AnalysisError
from .ctmc import CTMC


def _strongly_connected_components(ctmc: CTMC) -> List[List[int]]:
    """Tarjan's algorithm (iterative) over the transition graph."""
    index_counter = 0
    stack: List[int] = []
    lowlink = [0] * ctmc.num_states
    index = [-1] * ctmc.num_states
    on_stack = [False] * ctmc.num_states
    components: List[List[int]] = []

    for root in ctmc.states():
        if index[root] != -1:
            continue
        work = [(root, iter([t for t, _r in ctmc.rates_from(root)]))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if index[successor] == -1:
                    index[successor] = lowlink[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append(
                        (successor, iter([t for t, _r in ctmc.rates_from(successor)]))
                    )
                    advanced = True
                    break
                if on_stack[successor]:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def bottom_strongly_connected_components(ctmc: CTMC) -> List[List[int]]:
    """Terminal SCCs (no transition leaving the component)."""
    bottoms = []
    for component in _strongly_connected_components(ctmc):
        members = set(component)
        is_bottom = all(
            target in members
            for state in component
            for target, _rate in ctmc.rates_from(state)
        )
        if is_bottom:
            bottoms.append(sorted(component))
    return bottoms


def steady_state_distribution(ctmc: CTMC) -> np.ndarray:
    """Long-run state distribution of ``ctmc``.

    The chain must have exactly one bottom strongly-connected component
    reachable from the initial state; the stationary distribution of that
    component (zero elsewhere) is returned.
    """
    reachable = ctmc._forward_reachable(ctmc.initial)
    bottoms = [
        component
        for component in bottom_strongly_connected_components(ctmc)
        if any(state in reachable for state in component)
    ]
    if not bottoms:
        raise AnalysisError("the chain has no reachable bottom component")
    if len(bottoms) > 1:
        raise AnalysisError(
            "the chain has several reachable terminal components; the long-run "
            "distribution depends on which one is entered"
        )
    component = bottoms[0]
    distribution = np.zeros(ctmc.num_states)
    if len(component) == 1:
        distribution[component[0]] = 1.0
        return distribution

    index = {state: i for i, state in enumerate(component)}
    n = len(component)
    generator = np.zeros((n, n))
    for state in component:
        i = index[state]
        for target, rate in ctmc.rates_from(state):
            j = index[target]
            generator[i, j] += rate
            generator[i, i] -= rate
    # Solve pi Q = 0 with sum(pi) = 1: replace one column by the normalisation.
    system = generator.T.copy()
    system[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    try:
        pi = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise AnalysisError("failed to solve the stationary equations") from exc
    if np.any(pi < -1e-9):
        raise AnalysisError("stationary distribution has negative entries")
    pi = np.clip(pi, 0.0, None)
    pi = pi / pi.sum()
    for state, i in index.items():
        distribution[state] = pi[i]
    return distribution
