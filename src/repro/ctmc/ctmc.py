"""Continuous-time Markov chains (CTMC).

The final model produced by compositional aggregation of a DFT is (in the
absence of non-determinism) a CTMC whose states carry labels such as
``"failed"``.  This module provides the explicit CTMC representation together
with the measures needed by the paper:

* transient state probabilities (for unreliability at a mission time),
* steady-state probabilities (for unavailability of repairable systems),
* mean time to absorption (mean time to failure).

Numerical routines live in :mod:`repro.ctmc.transient` and
:mod:`repro.ctmc.steady_state`; this class is a thin, well-typed container
around a sparse generator matrix.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from ..errors import AnalysisError, ModelError


class CTMC:
    """An explicit-state labelled continuous-time Markov chain."""

    def __init__(self, num_states: int, initial: int = 0):
        if num_states <= 0:
            raise ModelError("a CTMC needs at least one state")
        if not 0 <= initial < num_states:
            raise ModelError(f"initial state {initial} out of range")
        self._num_states = num_states
        self._initial = initial
        self._rates: List[Dict[int, float]] = [dict() for _ in range(num_states)]
        self._labels: List[FrozenSet[str]] = [frozenset() for _ in range(num_states)]
        self._state_names: List[Optional[str]] = [None] * num_states

    # ------------------------------------------------------------------ build
    def add_rate(self, source: int, target: int, rate: float) -> None:
        """Add a transition rate (parallel transitions accumulate)."""
        self._check(source)
        self._check(target)
        if not rate > 0.0:
            raise ModelError(f"rates must be positive, got {rate}")
        if source == target:
            # A rate back to the same state has no observable effect on a CTMC.
            return
        self._rates[source][target] = self._rates[source].get(target, 0.0) + rate

    def set_labels(self, state: int, labels: Iterable[str]) -> None:
        self._check(state)
        self._labels[state] = frozenset(labels)

    def set_state_name(self, state: int, name: str) -> None:
        self._check(state)
        self._state_names[state] = name

    def set_initial(self, state: int) -> None:
        self._check(state)
        self._initial = state

    # ---------------------------------------------------------------- queries
    @property
    def num_states(self) -> int:
        return self._num_states

    @property
    def num_transitions(self) -> int:
        return sum(len(row) for row in self._rates)

    @property
    def initial(self) -> int:
        return self._initial

    def states(self) -> range:
        return range(self._num_states)

    def labels(self, state: int) -> FrozenSet[str]:
        self._check(state)
        return self._labels[state]

    def state_name(self, state: int) -> str:
        self._check(state)
        name = self._state_names[state]
        return name if name is not None else str(state)

    def rates_from(self, state: int) -> Iterator[Tuple[int, float]]:
        self._check(state)
        return iter(self._rates[state].items())

    def exit_rate(self, state: int) -> float:
        self._check(state)
        return sum(self._rates[state].values())

    def is_absorbing(self, state: int) -> bool:
        self._check(state)
        return not self._rates[state]

    def states_with_label(self, label: str) -> FrozenSet[int]:
        return frozenset(s for s in self.states() if label in self._labels[s])

    def max_exit_rate(self) -> float:
        return max((self.exit_rate(s) for s in self.states()), default=0.0)

    # ---------------------------------------------------------------- matrices
    def generator_matrix(self, sparse_format: str = "csr") -> sparse.spmatrix:
        """The infinitesimal generator ``Q`` (rows sum to zero)."""
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for source in self.states():
            exit_rate = 0.0
            for target, rate in self._rates[source].items():
                rows.append(source)
                cols.append(target)
                data.append(rate)
                exit_rate += rate
            if exit_rate > 0.0:
                rows.append(source)
                cols.append(source)
                data.append(-exit_rate)
        matrix = sparse.coo_matrix(
            (data, (rows, cols)), shape=(self._num_states, self._num_states)
        )
        return matrix.asformat(sparse_format)

    def uniformized_matrix(self, uniformization_rate: Optional[float] = None) -> Tuple[sparse.spmatrix, float]:
        """The uniformized DTMC matrix ``P = I + Q / Lambda`` and the rate used."""
        rate = uniformization_rate if uniformization_rate is not None else self.max_exit_rate()
        if rate <= 0.0:
            rate = 1.0  # chain with no transitions at all
        identity = sparse.identity(self._num_states, format="csr")
        matrix = identity + self.generator_matrix("csr") / rate
        return matrix.tocsr(), rate

    def initial_distribution(self) -> np.ndarray:
        distribution = np.zeros(self._num_states)
        distribution[self._initial] = 1.0
        return distribution

    def indicator(self, states: Sequence[int]) -> np.ndarray:
        vector = np.zeros(self._num_states)
        for state in states:
            self._check(state)
            vector[state] = 1.0
        return vector

    # ---------------------------------------------------------------- measures
    def transient_distribution(self, time: float, tolerance: float = 1e-12) -> np.ndarray:
        """State distribution at ``time`` via uniformisation."""
        from .transient import transient_distribution

        return transient_distribution(self, time, tolerance=tolerance)

    def transient_distributions(self, times: Sequence[float], tolerance: float = 1e-12) -> np.ndarray:
        """State distributions at all ``times`` from one uniformisation sweep."""
        from .transient import transient_distributions

        return transient_distributions(self, times, tolerance=tolerance)

    def probability_of_label(self, label: str, time: float, tolerance: float = 1e-12) -> float:
        """Probability of being in a ``label``-state at ``time``."""
        distribution = self.transient_distribution(time, tolerance=tolerance)
        return float(sum(distribution[s] for s in self.states_with_label(label)))

    def probability_of_label_curve(
        self, label: str, times: Sequence[float], tolerance: float = 1e-12
    ) -> np.ndarray:
        """Probability of being in a ``label``-state at each time (one sweep)."""
        from .transient import probability_of_label_curve

        return probability_of_label_curve(self, label, times, tolerance=tolerance)

    def steady_state_distribution(self) -> np.ndarray:
        """Long-run distribution (see :mod:`repro.ctmc.steady_state`)."""
        from .steady_state import steady_state_distribution

        return steady_state_distribution(self)

    def steady_state_probability_of_label(self, label: str) -> float:
        distribution = self.steady_state_distribution()
        return float(sum(distribution[s] for s in self.states_with_label(label)))

    def mean_time_to_label(self, label: str) -> float:
        """Expected time until a ``label``-state is first entered (MTTF).

        Raises :class:`~repro.errors.AnalysisError` if a ``label``-state is not
        reached with probability one from the initial state.
        """
        goal = self.states_with_label(label)
        if not goal:
            raise AnalysisError(f"no state carries label {label!r}")
        if self._initial in goal:
            return 0.0
        # Expected hitting times solve (Q restricted to non-goal) h = -1.
        non_goal = [s for s in self.states() if s not in goal]
        index = {s: i for i, s in enumerate(non_goal)}
        n = len(non_goal)
        matrix = np.zeros((n, n))
        can_leave = np.zeros(n, dtype=bool)
        for s in non_goal:
            i = index[s]
            exit_rate = self.exit_rate(s)
            matrix[i, i] = -exit_rate
            for target, rate in self.rates_from(s):
                if target in goal:
                    can_leave[i] = True
                else:
                    matrix[i, index[target]] += rate
        # Reachability check: from the initial state a goal state must be
        # reachable through non-goal states, otherwise the MTTF diverges.
        if not self._goal_reachable(goal):
            raise AnalysisError(
                f"states labelled {label!r} are not reached with probability one; "
                "the mean time to failure is infinite"
            )
        rhs = -np.ones(n)
        try:
            hitting = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(
                "mean time to failure is infinite (absorbing non-goal states exist)"
            ) from exc
        if np.any(hitting < -1e-9):
            raise AnalysisError("mean time to failure computation produced negative times")
        return float(hitting[index[self._initial]])

    # ---------------------------------------------------------------- helpers
    def _goal_reachable(self, goal: FrozenSet[int]) -> bool:
        """True iff every state reachable from the initial state can reach goal."""
        reachable = self._forward_reachable(self._initial)
        can_reach_goal = self._backward_reachable(goal)
        return all(state in can_reach_goal or state in goal for state in reachable)

    def _forward_reachable(self, start: int) -> FrozenSet[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target, _rate in self.rates_from(state):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def _backward_reachable(self, goal: FrozenSet[int]) -> FrozenSet[int]:
        predecessors: List[List[int]] = [[] for _ in range(self._num_states)]
        for source in self.states():
            for target, _rate in self.rates_from(source):
                predecessors[target].append(source)
        seen = set(goal)
        frontier = list(goal)
        while frontier:
            state = frontier.pop()
            for pred in predecessors[state]:
                if pred not in seen:
                    seen.add(pred)
                    frontier.append(pred)
        return frozenset(seen)

    def _check(self, state: int) -> None:
        if not 0 <= state < self._num_states:
            raise ModelError(f"state {state} out of range (0..{self._num_states - 1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CTMC(states={self.num_states}, transitions={self.num_transitions})"
