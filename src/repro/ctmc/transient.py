"""Transient analysis of CTMCs.

The unreliability of a DFT at mission time ``t`` is the probability of being in
a ``"failed"`` state of the final CTMC at time ``t``.  The work-horse here is
*uniformisation* (also called Jensen's method or randomisation), the standard
numerically robust technique for transient CTMC analysis (Stewart, 1994):

``pi(t) = sum_k PoissonPMF(k; Lambda*t) * pi(0) * P^k`` with
``P = I + Q / Lambda`` and ``Lambda >= max exit rate``.

The series is truncated adaptively once the accumulated Poisson mass exceeds
``1 - tolerance``; the truncation error of the result is then bounded by
``tolerance``.

Curve evaluation (many mission times on one chain) is vectorised: the matvec
series ``pi(0) * P^k`` does not depend on the time point, only the Poisson
weights do, so :func:`transient_distributions` runs a **single** sweep up to
the largest truncation depth and accumulates every time point's result from
the shared iterates.  A 100-point unreliability curve therefore costs one
uniformisation pass instead of 100.

A dense matrix-exponential variant (:func:`transient_distribution_expm`) is
provided as an independent cross-check used by the test-suite on small models.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as dense_linalg
from scipy import stats
from scipy.special import gammaln

from ..errors import AnalysisError
from .ctmc import CTMC


def validate_times(times: Sequence[float]) -> List[float]:
    """Coerce mission times to floats, rejecting non-finite or negative ones.

    The single policy point for every timed evaluation surface (CTMC sweeps,
    CTMDP bound sweeps, measure specs).
    """
    times_list = [float(time) for time in times]
    for time in times_list:
        if not math.isfinite(time) or time < 0.0:
            raise AnalysisError(
                f"mission times must be finite and non-negative, got {time}"
            )
    return times_list


def _poisson_truncation(rate: float, tolerance: float) -> int:
    """Truncation depth ``K`` with Poisson right-tail mass below ``tolerance``."""
    # Tolerances below the float64 epsilon would round 1 - tolerance up to
    # exactly 1.0, where the quantile function diverges; clamp to the largest
    # representable quantile below one (the tail mass is then already beyond
    # double precision).
    quantile = min(1.0 - tolerance, math.nextafter(1.0, 0.0))
    truncation = int(stats.poisson.ppf(quantile, rate)) + 2
    return max(truncation, 1)


def poisson_terms(rate: float, tolerance: float) -> np.ndarray:
    """Poisson probabilities ``PMF(0..K; rate)`` with tail mass below ``tolerance``.

    The truncation point ``K`` is chosen via the Poisson quantile function so
    that the neglected right tail is at most ``tolerance``; the probabilities
    themselves are evaluated in log space as
    ``exp(k log(rate) - rate - gammaln(k + 1))`` in one vectorised pass —
    stable also for large ``rate``, and far cheaper than a per-term
    :func:`scipy.stats.poisson.pmf` call over the whole index range.  (Left
    truncation is not applied — skipped leading terms would still require the
    corresponding matrix-vector products, so nothing would be saved.)
    """
    if not math.isfinite(rate) or rate < 0.0:
        raise AnalysisError("the uniformisation rate times time must be finite and non-negative")
    if not 0.0 < tolerance < 1.0:
        raise AnalysisError(f"the truncation tolerance must be in (0, 1), got {tolerance}")
    if rate == 0.0:
        return np.array([1.0])
    truncation = _poisson_truncation(rate, tolerance)
    indices = np.arange(truncation + 1, dtype=float)
    log_terms = indices * math.log(rate) - rate - gammaln(indices + 1.0)
    return np.exp(log_terms)


def poisson_terms_reference(rate: float, tolerance: float) -> np.ndarray:
    """The pre-gammaln term computation (per-index ``scipy.stats`` PMF).

    Kept as the differential baseline for :func:`poisson_terms`: both paths
    must agree to within a few ulps on every index of the shared truncation
    range (the test-suite pins ``<= 1e-12``).
    """
    if not math.isfinite(rate) or rate < 0.0:
        raise AnalysisError("the uniformisation rate times time must be finite and non-negative")
    if not 0.0 < tolerance < 1.0:
        raise AnalysisError(f"the truncation tolerance must be in (0, 1), got {tolerance}")
    if rate == 0.0:
        return np.array([1.0])
    truncation = _poisson_truncation(rate, tolerance)
    terms = stats.poisson.pmf(np.arange(truncation + 1), rate)
    return np.asarray(terms, dtype=float)


class PoissonTermCache:
    """Memoises :func:`poisson_terms` arrays within one evaluation sweep.

    A curve evaluation (or a min/max CTMDP bound pair, which shares the
    uniformisation rate) asks for the same ``rate * time`` products repeatedly;
    the quantile + PMF evaluations are the only scipy work in the hot path and
    are worth sharing.
    """

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: Dict[Tuple[float, float], np.ndarray] = {}

    def get(self, rate: float, tolerance: float) -> np.ndarray:
        key = (rate, tolerance)
        terms = self._cache.get(key)
        if terms is None:
            terms = poisson_terms(rate, tolerance)
            self._cache[key] = terms
        return terms

    def clear(self) -> None:
        """Drop all memoised term arrays (start of a new evaluation sweep)."""
        self._cache.clear()


class SweepWeights:
    """Per-time Poisson weight arrays for one shared uniformisation sweep.

    Stored ragged (one term array per time point) rather than as a dense
    ``(times, depth)`` matrix: one mission time with a deep truncation must
    not inflate memory for every other time point.  :meth:`column` yields, for
    sweep step ``k``, the time-point rows whose truncation is still active
    together with their weights; rows are ordered by truncation depth
    (descending), so the active set is always a prefix.
    """

    __slots__ = ("depth", "_rows", "_arrays", "_active")

    def __init__(
        self,
        uniformization_rate: float,
        times: Sequence[float],
        tolerance: float,
        term_cache: Optional[PoissonTermCache] = None,
    ) -> None:
        cache = term_cache if term_cache is not None else PoissonTermCache()
        arrays = [cache.get(uniformization_rate * time, tolerance) for time in times]
        lengths = np.array([len(array) for array in arrays], dtype=int)
        self.depth = int(lengths.max())
        order = np.argsort(-lengths, kind="stable")
        self._rows = order
        self._arrays = [arrays[row] for row in order]
        # active[k] = number of time points whose truncation exceeds step k.
        histogram = np.bincount(lengths, minlength=self.depth + 1)
        self._active = len(arrays) - np.cumsum(histogram)

    def column(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """(row indices, weights) of the time points still active at ``step``."""
        count = int(self._active[step])
        values = np.fromiter(
            (self._arrays[i][step] for i in range(count)), dtype=float, count=count
        )
        return self._rows[:count], values


def transient_distributions(
    ctmc: CTMC,
    times: Sequence[float],
    tolerance: float = 1e-12,
    initial_distribution: Optional[np.ndarray] = None,
    term_cache: Optional[PoissonTermCache] = None,
) -> np.ndarray:
    """State distributions at each of ``times`` from one uniformisation sweep.

    Returns an array of shape ``(len(times), num_states)`` whose ``i``-th row
    is the distribution at ``times[i]``.  All rows share the matvec series
    ``pi(0) * P^k``; only the Poisson weights differ per time point, so the
    cost is one sweep to the deepest truncation instead of one per time.
    """
    times_list = validate_times(times)
    distribution = (
        ctmc.initial_distribution()
        if initial_distribution is None
        else np.asarray(initial_distribution, dtype=float)
    )
    if distribution.shape != (ctmc.num_states,):
        raise AnalysisError("initial distribution has the wrong dimension")
    if not math.isclose(float(distribution.sum()), 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise AnalysisError("initial distribution must sum to one")
    if not times_list:
        return np.zeros((0, ctmc.num_states))

    matrix, uniformization_rate = ctmc.uniformized_matrix()
    weights = SweepWeights(uniformization_rate, times_list, tolerance, term_cache)

    result = np.zeros((len(times_list), ctmc.num_states))
    current = distribution.copy()
    for step in range(weights.depth):
        rows, column = weights.column(step)
        result[rows] += np.outer(column, current)
        if step + 1 < weights.depth:
            current = current @ matrix
    # Renormalise the (tiny) truncated mass so every row is a distribution.
    totals = result.sum(axis=1, keepdims=True)
    np.divide(result, totals, out=result, where=totals > 0.0)
    return result


def transient_distribution(
    ctmc: CTMC,
    time: float,
    tolerance: float = 1e-12,
    initial_distribution: Optional[np.ndarray] = None,
) -> np.ndarray:
    """State distribution of ``ctmc`` at ``time`` via uniformisation."""
    if time < 0.0:
        raise AnalysisError("mission time must be non-negative")
    distributions = transient_distributions(
        ctmc, [time], tolerance=tolerance, initial_distribution=initial_distribution
    )
    return distributions[0]


def transient_distribution_expm(
    ctmc: CTMC,
    time: float,
    initial_distribution: Optional[np.ndarray] = None,
) -> np.ndarray:
    """State distribution at ``time`` via a dense matrix exponential.

    Exact up to floating point error, but dense: intended as an independent
    cross-check for small models in the test-suite, not for production use.
    """
    if time < 0.0:
        raise AnalysisError("mission time must be non-negative")
    distribution = (
        ctmc.initial_distribution()
        if initial_distribution is None
        else np.asarray(initial_distribution, dtype=float)
    )
    generator = ctmc.generator_matrix("csr").toarray()
    return distribution @ dense_linalg.expm(generator * time)


def probability_reach_label(
    ctmc: CTMC, label: str, time: float, tolerance: float = 1e-12
) -> float:
    """Probability that a ``label``-state has been *visited* by ``time``.

    For unreliability the failed states of a DFT are absorbing, so visiting and
    occupying coincide; for repairable systems they differ.  The computation
    makes the labelled states absorbing and runs a transient analysis.
    """
    goal = ctmc.states_with_label(label)
    if not goal:
        return 0.0
    absorbing = CTMC(ctmc.num_states, ctmc.initial)
    for state in ctmc.states():
        absorbing.set_labels(state, ctmc.labels(state))
        if state in goal:
            continue
        for target, rate in ctmc.rates_from(state):
            absorbing.add_rate(state, target, rate)
    distribution = transient_distribution(absorbing, time, tolerance=tolerance)
    return float(sum(distribution[state] for state in goal))


def probability_of_label_curve(
    ctmc: CTMC,
    label: str,
    times: Sequence[float],
    tolerance: float = 1e-12,
    term_cache: Optional[PoissonTermCache] = None,
) -> np.ndarray:
    """Probability of occupying a ``label``-state at each time, one sweep.

    Accumulates the per-time goal mass directly during the sweep instead of
    materialising the full ``(times, states)`` distribution matrix, so the
    memory cost is ``O(states + times)`` — the same as one per-point call —
    no matter how many time points the curve has.
    """
    times_list = validate_times(times)
    goal = ctmc.states_with_label(label)
    if not goal or not times_list:
        return np.zeros(len(times_list))

    matrix, uniformization_rate = ctmc.uniformized_matrix()
    weights = SweepWeights(uniformization_rate, times_list, tolerance, term_cache)
    goal_indices = np.fromiter(goal, dtype=int)

    goal_mass = np.zeros(len(times_list))
    total_mass = np.zeros(len(times_list))
    current = ctmc.initial_distribution()
    for step in range(weights.depth):
        rows, column = weights.column(step)
        goal_mass[rows] += column * float(current[goal_indices].sum())
        total_mass[rows] += column * float(current.sum())
        if step + 1 < weights.depth:
            current = current @ matrix
    # Renormalise the (tiny) truncated mass, as transient_distributions does.
    np.divide(goal_mass, total_mass, out=goal_mass, where=total_mass > 0.0)
    return goal_mass


def unreliability_curve(
    ctmc: CTMC, label: str, times, tolerance: float = 1e-12
) -> np.ndarray:
    """Probability of occupying a ``label``-state for each time in ``times``."""
    return probability_of_label_curve(ctmc, label, times, tolerance=tolerance)
