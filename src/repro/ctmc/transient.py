"""Transient analysis of CTMCs.

The unreliability of a DFT at mission time ``t`` is the probability of being in
a ``"failed"`` state of the final CTMC at time ``t``.  The work-horse here is
*uniformisation* (also called Jensen's method or randomisation), the standard
numerically robust technique for transient CTMC analysis (Stewart, 1994):

``pi(t) = sum_k PoissonPMF(k; Lambda*t) * pi(0) * P^k`` with
``P = I + Q / Lambda`` and ``Lambda >= max exit rate``.

The series is truncated adaptively once the accumulated Poisson mass exceeds
``1 - tolerance``; the truncation error of the result is then bounded by
``tolerance``.

A dense matrix-exponential variant (:func:`transient_distribution_expm`) is
provided as an independent cross-check used by the test-suite on small models.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import linalg as dense_linalg

from ..errors import AnalysisError
from .ctmc import CTMC


def poisson_terms(rate: float, tolerance: float) -> np.ndarray:
    """Poisson probabilities ``PMF(0..K; rate)`` with tail mass below ``tolerance``.

    The truncation point ``K`` is chosen via the Poisson quantile function so
    that the neglected right tail is at most ``tolerance``; the probabilities
    themselves are evaluated with :mod:`scipy.stats`, which is numerically
    stable also for large ``rate`` (left truncation is not applied — skipped
    leading terms would still require the corresponding matrix-vector
    products, so nothing would be saved).
    """
    if rate < 0.0:
        raise AnalysisError("the uniformisation rate times time must be non-negative")
    if rate == 0.0:
        return np.array([1.0])
    from scipy import stats

    truncation = int(stats.poisson.ppf(1.0 - tolerance, rate)) + 2
    truncation = max(truncation, 1)
    terms = stats.poisson.pmf(np.arange(truncation + 1), rate)
    return np.asarray(terms, dtype=float)


def transient_distribution(
    ctmc: CTMC,
    time: float,
    tolerance: float = 1e-12,
    initial_distribution: Optional[np.ndarray] = None,
) -> np.ndarray:
    """State distribution of ``ctmc`` at ``time`` via uniformisation."""
    if time < 0.0:
        raise AnalysisError("mission time must be non-negative")
    distribution = (
        ctmc.initial_distribution()
        if initial_distribution is None
        else np.asarray(initial_distribution, dtype=float)
    )
    if distribution.shape != (ctmc.num_states,):
        raise AnalysisError("initial distribution has the wrong dimension")
    if not math.isclose(float(distribution.sum()), 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise AnalysisError("initial distribution must sum to one")
    if time == 0.0:
        return distribution.copy()

    matrix, uniformization_rate = ctmc.uniformized_matrix()
    weights = poisson_terms(uniformization_rate * time, tolerance)

    result = np.zeros_like(distribution)
    current = distribution.copy()
    for weight in weights:
        result += weight * current
        current = current @ matrix
    # Renormalise the (tiny) truncated mass so the result is a distribution.
    total = result.sum()
    if total > 0.0:
        result = result / total
    return result


def transient_distribution_expm(
    ctmc: CTMC,
    time: float,
    initial_distribution: Optional[np.ndarray] = None,
) -> np.ndarray:
    """State distribution at ``time`` via a dense matrix exponential.

    Exact up to floating point error, but dense: intended as an independent
    cross-check for small models in the test-suite, not for production use.
    """
    if time < 0.0:
        raise AnalysisError("mission time must be non-negative")
    distribution = (
        ctmc.initial_distribution()
        if initial_distribution is None
        else np.asarray(initial_distribution, dtype=float)
    )
    generator = ctmc.generator_matrix("csr").toarray()
    return distribution @ dense_linalg.expm(generator * time)


def probability_reach_label(
    ctmc: CTMC, label: str, time: float, tolerance: float = 1e-12
) -> float:
    """Probability that a ``label``-state has been *visited* by ``time``.

    For unreliability the failed states of a DFT are absorbing, so visiting and
    occupying coincide; for repairable systems they differ.  The computation
    makes the labelled states absorbing and runs a transient analysis.
    """
    goal = ctmc.states_with_label(label)
    if not goal:
        return 0.0
    absorbing = CTMC(ctmc.num_states, ctmc.initial)
    for state in ctmc.states():
        absorbing.set_labels(state, ctmc.labels(state))
        if state in goal:
            continue
        for target, rate in ctmc.rates_from(state):
            absorbing.add_rate(state, target, rate)
    distribution = transient_distribution(absorbing, time, tolerance=tolerance)
    return float(sum(distribution[state] for state in goal))


def unreliability_curve(
    ctmc: CTMC, label: str, times, tolerance: float = 1e-12
) -> np.ndarray:
    """Probability of occupying a ``label``-state for each time in ``times``."""
    values = []
    for time in times:
        distribution = transient_distribution(ctmc, float(time), tolerance=tolerance)
        values.append(float(sum(distribution[s] for s in ctmc.states_with_label(label))))
    return np.array(values)
