"""Numerical analysis of continuous-time Markov chains and decision processes.

This package hosts the solver layer used once a DFT has been reduced to a
single closed model: transient analysis via uniformisation (unreliability),
steady-state analysis (unavailability of repairable systems), expected hitting
times (mean time to failure) and CTMDP time-bounded reachability bounds for
non-deterministic models.
"""

from .builders import (
    CtmcSkeleton,
    CtmdpSkeleton,
    ctmc_from_ioimc,
    ctmc_skeleton_from_ioimc,
    ctmdp_from_ioimc,
    ctmdp_skeleton_from_ioimc,
    markov_model_from_ioimc,
)
from .ctmc import CTMC
from .ctmdp import CTMDP, VanishingResolver
from .kernel import CsrBuffer, CtmdpKernel, TransientKernel
from .steady_state import (
    bottom_strongly_connected_components,
    steady_state_distribution,
)
from .transient import (
    PoissonTermCache,
    poisson_terms,
    probability_of_label_curve,
    probability_reach_label,
    transient_distribution,
    transient_distribution_expm,
    transient_distributions,
    unreliability_curve,
)

__all__ = [
    "CTMC",
    "CTMDP",
    "CsrBuffer",
    "CtmcSkeleton",
    "CtmdpKernel",
    "CtmdpSkeleton",
    "PoissonTermCache",
    "TransientKernel",
    "VanishingResolver",
    "bottom_strongly_connected_components",
    "ctmc_from_ioimc",
    "ctmc_skeleton_from_ioimc",
    "ctmdp_from_ioimc",
    "ctmdp_skeleton_from_ioimc",
    "markov_model_from_ioimc",
    "poisson_terms",
    "probability_of_label_curve",
    "probability_reach_label",
    "steady_state_distribution",
    "transient_distribution",
    "transient_distribution_expm",
    "transient_distributions",
    "unreliability_curve",
]
