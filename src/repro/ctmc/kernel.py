"""Shared-structure uniformisation kernel for repeated rate instantiations.

A rate sweep instantiates the same :class:`~repro.ctmc.builders.CtmcSkeleton`
hundreds of times with different parameter assignments.  The skeleton's
*structure* — which states exist, which transitions connect them, where the
``failed`` label sits — never changes between samples; only the transition
rates do.  Building a fresh :class:`~repro.ctmc.ctmc.CTMC` and a fresh scipy
CSR matrix per sample therefore re-pays, on every sample, sparse setup work
whose result is bit-for-bit identical in everything except the ``data`` array.

This module eliminates that rebuild:

* :class:`CsrBuffer` precomputes the CSR *pattern* (``indptr``/``indices``)
  of the uniformised matrix ``P = I + Q/Lambda`` once, together with a
  vectorised linear-form representation of every edge rate
  (``rate_e = const_e + sum_p coeff_ep * param_p``).  Refilling under a new
  assignment is two dense matvecs and a scatter-add into the **same**
  ``data`` array — zero sparse-structure allocations.  The buffer also keeps
  the matvec operator the solver actually steps with: a preallocated dense
  copy of ``P`` for small chains (sparse dispatch overhead dwarfs the
  arithmetic there) or a once-built CSR of ``P^T`` whose data is refreshed by
  a precomputed permutation (``x @ P`` through scipy would otherwise
  construct a fresh transposed matrix on *every* step).
* :class:`TransientKernel` owns one buffer plus the Poisson term cache and
  the ``pi(0) * P^k`` workspace, and evaluates label-probability curves with
  the same adaptive-truncation sweep as
  :func:`repro.ctmc.transient.probability_of_label_curve`.

The rate-sweep engine (:mod:`repro.core.sweep`) drives one kernel per worker
process; after the first sample every further sample costs only the refill
and the uniformisation sweep itself.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from ..errors import AnalysisError, ModelError
from ..ioimc.rates import ParametricRate
from .builders import CtmcSkeleton, CtmdpSkeleton
from .ctmdp import VanishingResolver
from .transient import PoissonTermCache, validate_times

#: Below this state count the kernel steps with a preallocated dense matrix:
#: a CSR matvec costs ~10-20us of scipy dispatch regardless of size, which
#: dominates the arithmetic of aggregated DFT models (tens of states).
#: Overridable per buffer (``dense_limit=``) or process-wide via the
#: ``REPRO_DENSE_STATE_LIMIT`` environment variable, so the big-bench tier
#: can probe the dense/sparse crossover without editing source.
DENSE_STATE_LIMIT = 256

#: Environment variable overriding :data:`DENSE_STATE_LIMIT`.
DENSE_LIMIT_ENV = "REPRO_DENSE_STATE_LIMIT"


def resolve_dense_limit(dense_limit: Optional[int] = None) -> int:
    """The effective dense/sparse crossover for a new buffer.

    Resolution order: an explicit ``dense_limit`` argument, then the
    ``REPRO_DENSE_STATE_LIMIT`` environment variable, then the module default.
    """
    if dense_limit is not None:
        limit = int(dense_limit)
    else:
        override = os.environ.get(DENSE_LIMIT_ENV)
        if override is None:
            return DENSE_STATE_LIMIT
        try:
            limit = int(override)
        except ValueError:
            raise AnalysisError(
                f"{DENSE_LIMIT_ENV} must be an integer, got {override!r}"
            ) from None
    if limit < 0:
        raise AnalysisError(f"the dense state limit must be >= 0, got {limit}")
    return limit


class CsrBuffer:
    """Preallocated CSR pattern of a skeleton's uniformised matrix.

    The pattern (``indptr``/``indices``, including a diagonal entry per row)
    and the scatter map from skeleton edges into ``data`` slots are computed
    once in :meth:`__init__`; :meth:`refill` only evaluates the edge rates
    under an assignment and rewrites ``data`` (and the dense or transposed
    stepping operator) in place.  ``structure_builds`` and ``refills`` count
    exactly that split, so regression tests can pin "no pattern rebuild
    after the first sample".
    """

    __slots__ = (
        "skeleton",
        "matrix",
        "dense",
        "transposed",
        "structure_builds",
        "refills",
        "uniformisation_rate",
        "_params",
        "_const",
        "_coeffs",
        "_nominals",
        "_slots",
        "_sources",
        "_targets",
        "_diag",
        "_dense_slots",
        "_dense_diag",
        "_transpose_perm",
        "_edge_values",
        "_exit",
    )

    def __init__(
        self,
        skeleton: Union[CtmcSkeleton, CtmdpSkeleton],
        dense_limit: Optional[int] = None,
    ):
        # The buffer only reads num_states / edges / parameters, which CTMC
        # and CTMDP skeletons share: vanishing states of a CTMDP skeleton
        # simply have no outgoing edges, so their uniformised rows come out
        # as identity rows and the backward kernel overwrites them through
        # its vanishing-state resolver.
        dense_limit = resolve_dense_limit(dense_limit)
        self.skeleton = skeleton
        num_states = skeleton.num_states
        edges = skeleton.edges

        # --- CSR pattern: per row the sorted unique targets plus the diagonal.
        row_targets: List[set] = [set() for _ in range(num_states)]
        for source, target, _rate in edges:
            row_targets[source].add(target)
        indptr = np.zeros(num_states + 1, dtype=np.int64)
        indices: List[int] = []
        diag = np.empty(num_states, dtype=np.int64)
        slot_of: Dict[Tuple[int, int], int] = {}
        for row in range(num_states):
            columns = sorted(row_targets[row] | {row})
            base = len(indices)
            for offset, column in enumerate(columns):
                if column == row:
                    diag[row] = base + offset
                else:
                    slot_of[(row, column)] = base + offset
            indices.extend(columns)
            indptr[row + 1] = len(indices)
        self._diag = diag
        self._slots = np.fromiter(
            (slot_of[(source, target)] for source, target, _rate in edges),
            dtype=np.int64,
            count=len(edges),
        )
        self._sources = np.fromiter(
            (source for source, _target, _rate in edges),
            dtype=np.int64,
            count=len(edges),
        )
        self._targets = np.fromiter(
            (target for _source, target, _rate in edges),
            dtype=np.int64,
            count=len(edges),
        )

        # --- vectorised linear forms: rate_e = const_e + coeffs[e] @ params.
        params = skeleton.parameters
        index = {name: position for position, name in enumerate(params)}
        const = np.zeros(len(edges))
        coeffs = np.zeros((len(edges), len(params)))
        nominals = np.zeros(len(params))
        for edge, (_source, _target, rate) in enumerate(edges):
            if isinstance(rate, ParametricRate):
                const[edge] = rate.const
                for name, coefficient in rate.coeffs.items():
                    coeffs[edge, index[name]] = coefficient
                    nominals[index[name]] = rate.nominals[name]
            else:
                const[edge] = float(rate)
        self._params = params
        self._const = const
        self._coeffs = coeffs
        self._nominals = nominals
        self._edge_values = np.empty(len(edges))
        self._exit = np.empty(num_states)

        data = np.zeros(len(indices))
        self.matrix = sparse.csr_matrix(
            (data, np.asarray(indices, dtype=np.int64), indptr),
            shape=(num_states, num_states),
        )

        # --- the stepping operator (refreshed in place by every refill).
        if num_states <= dense_limit:
            self.dense: Optional[np.ndarray] = np.zeros((num_states, num_states))
            self._dense_slots = self._sources * num_states + self._targets
            self._dense_diag = np.arange(num_states, dtype=np.int64) * (num_states + 1)
            self.transposed: Optional[sparse.csr_matrix] = None
            self._transpose_perm = None
        else:
            self.dense = None
            self._dense_slots = None
            self._dense_diag = None
            # CSC of P shares the pattern of CSR of P^T; tag the data with
            # positions once to learn the CSR -> transposed-CSR permutation.
            tagged = sparse.csr_matrix(
                (np.arange(len(indices), dtype=np.int64), self.matrix.indices, indptr),
                shape=(num_states, num_states),
            ).tocsc()
            self._transpose_perm = np.asarray(tagged.data, dtype=np.int64)
            self.transposed = sparse.csr_matrix(
                (np.zeros(len(indices)), tagged.indices, tagged.indptr),
                shape=(num_states, num_states),
            )

        self.uniformisation_rate = 1.0
        self.structure_builds = 1
        self.refills = 0

    def _evaluate_rates(self, assignment: Optional[Dict[str, float]]) -> np.ndarray:
        """Evaluate every edge rate under ``assignment`` into the shared scratch.

        Raises :class:`~repro.errors.ModelError` if any edge rate evaluates
        to a non-positive value, exactly like the non-buffered
        :meth:`CtmcSkeleton.instantiate` path.
        """
        values = self._edge_values
        if len(self._params):
            if assignment is None:
                point = self._nominals
            else:
                point = np.fromiter(
                    (
                        assignment.get(name, nominal)
                        for name, nominal in zip(self._params, self._nominals)
                    ),
                    dtype=float,
                    count=len(self._params),
                )
            np.dot(self._coeffs, point, out=values)
            values += self._const
        else:
            values[:] = self._const
        if not np.all(values > 0.0):
            worst = float(values.min()) if len(values) else 0.0
            raise ModelError(
                f"instantiating a parametric rate produced a non-positive value "
                f"({worst}); rate-sweep samples must keep every rate positive"
            )
        return values

    def _accumulate_exit(self, values: np.ndarray) -> Tuple[np.ndarray, float]:
        """Per-state exit rates of the evaluated edges, plus the natural Lambda.

        The single accumulation point behind :meth:`max_exit_rate` and
        :meth:`refill`, so the two cannot drift: both scatter the same edge
        values into the shared scratch and apply the same ``Lambda = 1.0``
        fallback for a chain with no transitions at all.
        """
        exit_rates = self._exit
        exit_rates[:] = 0.0
        np.add.at(exit_rates, self._sources, values)
        rate = float(exit_rates.max()) if len(exit_rates) else 0.0
        return exit_rates, (rate if rate > 0.0 else 1.0)

    def max_exit_rate(self, assignment: Optional[Dict[str, float]] = None) -> float:
        """The natural uniformisation rate (max exit rate) under ``assignment``.

        Only the evaluation scratch is touched — the matrix data and the
        stepping operator keep whatever the last :meth:`refill` wrote — so a
        sweep can scan its whole grid for the largest Lambda before refilling
        (the shared-rate path of :class:`TransientKernel`).
        """
        return self._accumulate_exit(self._evaluate_rates(assignment))[1]

    def refill(
        self,
        assignment: Optional[Dict[str, float]] = None,
        rate_floor: Optional[float] = None,
    ) -> Tuple[sparse.csr_matrix, float]:
        """Rewrite the matrix data for ``assignment``; return (matrix, Lambda).

        ``rate_floor`` raises the uniformisation rate to at least that value:
        uniformisation is exact for any Lambda >= the maximal exit rate, and a
        sweep that fixes one Lambda for a whole grid reuses one Poisson term
        table across all samples (see :meth:`TransientKernel.load`).

        A failed refill (non-positive rate) leaves the buffer reusable — the
        next refill rewrites everything.
        """
        values = self._evaluate_rates(assignment)

        exit_rates, rate = self._accumulate_exit(values)
        if rate_floor is not None and float(rate_floor) > rate:
            rate = float(rate_floor)

        data = self.matrix.data
        data[:] = 0.0
        np.add.at(data, self._slots, values)
        data /= rate
        # Edges never target their own source (the skeleton eliminates
        # self-loops), so the diagonal slots received no scatter contribution.
        data[self._diag] = 1.0 - exit_rates / rate

        if self.dense is not None:
            flat = self.dense.reshape(-1)
            flat[:] = 0.0
            np.add.at(flat, self._dense_slots, values)
            flat /= rate
            flat[self._dense_diag] = data[self._diag]
        else:
            self.transposed.data[:] = data[self._transpose_perm]

        self.uniformisation_rate = rate
        self.refills += 1
        return self.matrix, rate

    def step(self, current: np.ndarray, workspace: np.ndarray) -> np.ndarray:
        """One uniformised step ``current @ P`` using the in-place operator.

        Returns the resulting vector — ``workspace`` on the dense path (the
        caller swaps the two buffers), a fresh array on the sparse path.
        """
        if self.dense is not None:
            np.matmul(current, self.dense, out=workspace)
            return workspace
        # CSR-of-P^T matvec: computes x @ P without scipy materialising a
        # transposed matrix per step (which `vector @ csr` would do).
        return self.transposed @ current

    def step_forward(self, current: np.ndarray, workspace: np.ndarray) -> np.ndarray:
        """One backward value-iteration step ``P @ current``.

        The CTMDP kernel sweeps values backwards, so it multiplies from the
        left — the plain CSR (or the dense copy) is already the right
        operator, no transpose needed.  Returns ``workspace`` on the dense
        path, a fresh array on the sparse path.
        """
        if self.dense is not None:
            np.matmul(self.dense, current, out=workspace)
            return workspace
        return self.matrix @ current


class TransientKernel:
    """One skeleton's reusable transient solver across many rate samples.

    Owns the shared CSR buffer, the Poisson term cache and the ``pi(0)``
    workspace; :meth:`load` switches the kernel to a parameter assignment
    and :meth:`probability_of_label_curve` runs the uniformisation sweep on
    the in-place refreshed matrix.  ``dense_limit`` (or the
    ``REPRO_DENSE_STATE_LIMIT`` environment variable) overrides the
    dense/sparse stepping crossover of the underlying buffer.
    """

    __slots__ = (
        "skeleton",
        "buffer",
        "term_cache",
        "_goal",
        "_work_a",
        "_work_b",
        "_loaded",
        "_loaded_rate",
    )

    def __init__(
        self,
        skeleton: CtmcSkeleton,
        dense_limit: Optional[int] = None,
        buffer: Optional[CsrBuffer] = None,
    ):
        self.skeleton = skeleton
        if buffer is not None:
            # A prebuilt buffer (e.g. the CSR pattern a skeleton store cached
            # alongside the skeleton) skips the pattern build entirely.
            if buffer.skeleton is not skeleton:
                raise ModelError(
                    "the CSR buffer was preallocated for a different skeleton"
                )
            self.buffer = buffer
        else:
            self.buffer = CsrBuffer(skeleton, dense_limit=dense_limit)
        self.term_cache = PoissonTermCache()
        self._goal: Dict[str, np.ndarray] = {}
        self._work_a = np.zeros(skeleton.num_states)
        self._work_b = np.zeros(skeleton.num_states)
        self._loaded = False
        self._loaded_rate: Optional[float] = None

    # ----------------------------------------------------------- structure
    @property
    def structure_builds(self) -> int:
        """How many times the CSR pattern was built (pinned to one)."""
        return self.buffer.structure_builds

    @property
    def refills(self) -> int:
        """How many rate instantiations reused the shared pattern."""
        return self.buffer.refills

    def goal_indices(self, label: str) -> np.ndarray:
        """Sorted state indices carrying ``label`` (cached; structure-only)."""
        cached = self._goal.get(label)
        if cached is None:
            cached = np.fromiter(
                (
                    state
                    for state, labels in enumerate(self.skeleton.labels)
                    if label in labels
                ),
                dtype=np.int64,
            )
            self._goal[label] = cached
        return cached

    # ------------------------------------------------------------- samples
    def load(
        self,
        assignment: Optional[Dict[str, float]] = None,
        rate_floor: Optional[float] = None,
    ) -> float:
        """Refill the shared matrix for ``assignment``; return Lambda.

        With a ``rate_floor`` (>= every sample's natural maximal exit rate)
        the uniformisation rate is pinned across samples, so the Poisson term
        table of each requested time survives from one load to the next — a
        grid sweep then builds its term arrays once instead of per sample.
        """
        _matrix, rate = self.buffer.refill(
            None if assignment is None else dict(assignment), rate_floor=rate_floor
        )
        # Every rate*time cache key changes with the uniformisation rate, so
        # entries from a sample with a different Lambda would accumulate
        # forever without ever hitting.  With an unchanged Lambda (a shared
        # rate floor, or samples that happen to agree) the cached term arrays
        # are exactly the ones the next curve evaluation needs — keep them.
        if rate != self._loaded_rate:
            self.term_cache.clear()
            self._loaded_rate = rate
        self._loaded = True
        return rate

    def probability_of_label_curve(
        self,
        label: str,
        times: Sequence[float],
        tolerance: float = 1e-12,
    ) -> np.ndarray:
        """Probability of occupying a ``label``-state at each time, one sweep.

        The numerical scheme is identical to
        :func:`repro.ctmc.transient.probability_of_label_curve`; only the
        matrix comes from the shared buffer (call :meth:`load` first), the
        Poisson term arrays are cached across samples, and the per-time
        weights are applied after the shared matvec series instead of inside
        the step loop.
        """
        if not self._loaded:
            raise AnalysisError(
                "the transient kernel has no sample loaded; call load() first"
            )
        times_list = validate_times(times)
        goal = self.goal_indices(label)
        if not len(goal) or not times_list:
            return np.zeros(len(times_list))

        buffer = self.buffer
        rate = buffer.uniformisation_rate
        terms = [self.term_cache.get(rate * time, tolerance) for time in times_list]
        depth = max(len(array) for array in terms)

        # Shared matvec series: per step only the goal and total masses are
        # needed, so record those two scalars instead of every iterate.
        goal_series = np.empty(depth)
        total_series = np.empty(depth)
        current = self._work_a
        current[:] = 0.0
        current[self.skeleton.initial] = 1.0
        workspace = self._work_b
        for step in range(depth):
            goal_series[step] = current[goal].sum()
            total_series[step] = current.sum()
            if step + 1 < depth:
                previous = current
                current = buffer.step(current, workspace)
                workspace = previous

        goal_mass = np.fromiter(
            (array @ goal_series[: len(array)] for array in terms),
            dtype=float,
            count=len(terms),
        )
        total_mass = np.fromiter(
            (array @ total_series[: len(array)] for array in terms),
            dtype=float,
            count=len(terms),
        )
        # Renormalise the (tiny) truncated mass, as transient_distributions does.
        np.divide(goal_mass, total_mass, out=goal_mass, where=total_mass > 0.0)
        return goal_mass

    def point_values(
        self,
        label: str,
        times: Sequence[float],
        assignment: Optional[Dict[str, float]] = None,
        tolerance: float = 1e-12,
    ) -> Dict[float, float]:
        """Load ``assignment`` and map each time to its label probability."""
        self.load(assignment)
        times_list = validate_times(times)
        curve = self.probability_of_label_curve(label, times_list, tolerance)
        return dict(zip(times_list, (float(value) for value in curve)))


class CtmdpKernel:
    """One CTMDP skeleton's reusable bound solver across many rate samples.

    The backward-sweep analogue of :class:`TransientKernel`: the uniformised
    CSR pattern and the vectorised linear-form rate table live in a shared
    :class:`CsrBuffer`, :meth:`load` refills the data in place per sample, and
    :meth:`time_bounded_reachability_curve` replaces the per-state Python
    value iteration of :meth:`repro.ctmc.ctmdp.CTMDP` with sparse (or small-
    dense) matvecs plus a topologically-ordered vanishing-state resolution
    (:class:`~repro.ctmc.ctmdp.VanishingResolver`).

    Because every edge rate is an exact linear form
    ``rate_e = const_e + coeffs[e] @ params``, the derivative of the
    uniformised generator w.r.t. each parameter is a *constant* sparse
    matrix; :meth:`gradient_curve` rides an ``(states x params)`` derivative
    block along the same sweep and returns the gradient of the bound curve
    w.r.t. every failure-rate parameter in one extra pass (Birnbaum-style
    component importance).

    Numerical conventions (both differ from the reference engine only within
    the truncation tolerance, which the differential tests pin):

    * the uniformisation rate is the maximal exit rate over *all* tangible
      states (label-independent, so one Lambda serves every label and both
      bound directions, and the Poisson term cache survives across them);
    * the truncated Poisson tail adds ``1 - accumulated`` on the maximise
      branch and ``(1 - accumulated) * v_final`` on the minimise branch — the
      iterates are non-decreasing in the step count, so the deepest computed
      iterate is a valid lower bound on every truncated term.
    """

    __slots__ = (
        "skeleton",
        "buffer",
        "resolver",
        "term_cache",
        "_goal",
        "_update",
        "_work_a",
        "_work_b",
        "_loaded",
        "_loaded_rate",
    )

    def __init__(
        self,
        skeleton: CtmdpSkeleton,
        dense_limit: Optional[int] = None,
    ):
        self.skeleton = skeleton
        self.buffer = CsrBuffer(skeleton, dense_limit=dense_limit)
        self.resolver = VanishingResolver(skeleton.num_states, skeleton.choices)
        self.term_cache = PoissonTermCache()
        self._goal: Dict[str, np.ndarray] = {}
        self._update: Dict[str, np.ndarray] = {}
        self._work_a = np.zeros(skeleton.num_states)
        self._work_b = np.zeros(skeleton.num_states)
        self._loaded = False
        self._loaded_rate: Optional[float] = None

    # ----------------------------------------------------------- structure
    @property
    def structure_builds(self) -> int:
        """How many times the CSR pattern was built (pinned to one)."""
        return self.buffer.structure_builds

    @property
    def refills(self) -> int:
        """How many rate instantiations reused the shared pattern."""
        return self.buffer.refills

    @property
    def parameters(self) -> Tuple[str, ...]:
        """The skeleton's sorted rate-parameter names (gradient column order)."""
        return self.buffer._params

    def goal_indices(self, label: str) -> np.ndarray:
        """Sorted state indices carrying ``label`` (cached; structure-only)."""
        cached = self._goal.get(label)
        if cached is None:
            cached = np.fromiter(
                (
                    state
                    for state, labels in enumerate(self.skeleton.labels)
                    if label in labels
                ),
                dtype=np.int64,
            )
            self._goal[label] = cached
        return cached

    def update_indices(self, label: str) -> np.ndarray:
        """Tangible non-``label`` states — the rows the matvec step rewrites.

        Goal states stay absorbing at value 1 and vanishing states are
        rewritten by the resolver, so neither takes the Markovian update.
        """
        cached = self._update.get(label)
        if cached is None:
            choices = self.skeleton.choices
            cached = np.fromiter(
                (
                    state
                    for state, labels in enumerate(self.skeleton.labels)
                    if label not in labels and not choices[state]
                ),
                dtype=np.int64,
            )
            self._update[label] = cached
        return cached

    # ------------------------------------------------------------- samples
    def max_exit_rate(self, assignment: Optional[Dict[str, float]] = None) -> float:
        """The natural uniformisation rate under ``assignment`` (scan only)."""
        return self.buffer.max_exit_rate(assignment)

    def load(
        self,
        assignment: Optional[Dict[str, float]] = None,
        rate_floor: Optional[float] = None,
    ) -> float:
        """Refill the shared matrix for ``assignment``; return Lambda.

        Exactly like :meth:`TransientKernel.load`: with a ``rate_floor``
        (>= every sample's natural maximal exit rate) the Poisson term table
        survives from one sample to the next.
        """
        _matrix, rate = self.buffer.refill(
            None if assignment is None else dict(assignment), rate_floor=rate_floor
        )
        if rate != self._loaded_rate:
            self.term_cache.clear()
            self._loaded_rate = rate
        self._loaded = True
        return rate

    # --------------------------------------------------------------- curves
    def _initial_values(self, goal: np.ndarray, maximize: bool) -> np.ndarray:
        values = np.zeros(self.skeleton.num_states)
        values[goal] = 1.0
        self.resolver.resolve(values, maximize)
        return values

    def time_bounded_reachability_curve(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
        term_cache: Optional[PoissonTermCache] = None,
    ) -> np.ndarray:
        """Optimal reach-``label`` probability at each of ``times``, one sweep.

        All time points share one backward value iteration up to the deepest
        Poisson truncation; the per-time weights are applied to the recorded
        initial-state series afterwards (the backward analogue of
        :meth:`TransientKernel.probability_of_label_curve`).
        """
        curve, _gradients = self._sweep(
            label, times, maximize, tolerance, term_cache, with_gradients=False
        )
        return curve

    def gradient_curve(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
        term_cache: Optional[PoissonTermCache] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The bound curve plus its gradient w.r.t. every rate parameter.

        Returns ``(curve, gradients)`` where ``gradients[i, j]`` is the
        partial derivative of ``curve[i]`` w.r.t. ``self.parameters[j]``,
        computed forward-mode: ``dP/dparam_j`` is a constant sparse matrix
        (linear-form rates), so a ``(states x params)`` derivative block
        propagates alongside the value iteration, following the max/min
        successor selection through vanishing states.  The uniformisation
        rate is held fixed under differentiation, which is exact in the limit
        because the uniformised value is Lambda-invariant for any
        Lambda >= the maximal exit rate.
        """
        curve, gradients = self._sweep(
            label, times, maximize, tolerance, term_cache, with_gradients=True
        )
        assert gradients is not None
        return curve, gradients

    def reachability_bounds_curve(
        self,
        label: str,
        times: Sequence[float],
        tolerance: float = 1e-10,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(minimum, maximum) reach-``label`` curves over ``times``.

        Both directions share the loaded sample, the uniformisation rate and
        therefore every cached Poisson term array.
        """
        lower = self.time_bounded_reachability_curve(
            label, times, maximize=False, tolerance=tolerance
        )
        upper = self.time_bounded_reachability_curve(
            label, times, maximize=True, tolerance=tolerance
        )
        return lower, upper

    def optimal_choices(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
    ) -> Dict[int, Tuple[int, float]]:
        """The scheduler behind the bound: per-state argbest of the sweep.

        Re-runs the backward value iteration of
        :meth:`time_bounded_reachability_curve` with the resolver recording,
        at every step, which successor each contested vanishing state (more
        than one choice) picks.  Returns ``{state: (chosen, agreement)}``
        where ``chosen`` is the successor selected at the deepest iterate —
        the long-horizon decision the reported bound actually takes — and
        ``agreement`` is the fraction of sweep steps whose argbest matched
        it, a stability indicator across the time horizon (1.0 = the same
        choice at every step, i.e. a genuinely time-abstract scheduler).
        """
        if not self._loaded:
            raise AnalysisError(
                "the CTMDP kernel has no sample loaded; call load() first"
            )
        times_list = validate_times(times)
        choices = self.skeleton.choices
        contested = [
            state
            for state in range(self.skeleton.num_states)
            if len(choices[state]) > 1
        ]
        if not contested or not times_list:
            return {}
        goal = self.goal_indices(label)
        if not len(goal):
            return {}
        values = np.zeros(self.skeleton.num_states)
        values[goal] = 1.0
        choice_now = np.full(self.skeleton.num_states, -1, dtype=np.int64)
        self.resolver.resolve(values, maximize, choice_out=choice_now)
        counts: Dict[int, Dict[int, int]] = {state: {} for state in contested}

        def record() -> None:
            for state in contested:
                picked = int(choice_now[state])
                counts[state][picked] = counts[state].get(picked, 0) + 1

        record()
        steps = 1
        if len(self.buffer._sources):
            buffer = self.buffer
            rate = buffer.uniformisation_rate
            terms = [self.term_cache.get(rate * time, tolerance) for time in times_list]
            depth = max(len(array) for array in terms)
            update = self.update_indices(label)
            current = self._work_a
            current[:] = values
            workspace = self._work_b
            for _step in range(depth - 1):
                nxt = buffer.step_forward(current, workspace)
                current[update] = nxt[update]
                self.resolver.resolve(current, maximize, choice_out=choice_now)
                record()
                steps += 1
        return {
            state: (
                int(choice_now[state]),
                counts[state][int(choice_now[state])] / steps,
            )
            for state in contested
        }

    def _sweep(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool,
        tolerance: float,
        term_cache: Optional[PoissonTermCache],
        with_gradients: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if not self._loaded:
            raise AnalysisError(
                "the CTMDP kernel has no sample loaded; call load() first"
            )
        times_list = validate_times(times)
        num_params = len(self.buffer._params)
        empty = np.zeros((len(times_list), num_params)) if with_gradients else None
        if not times_list:
            return np.zeros(0), empty
        goal = self.goal_indices(label)
        if not len(goal):
            return np.zeros(len(times_list)), empty
        values = self._initial_values(goal, maximize)
        initial = self.skeleton.initial
        if not len(self.buffer._sources):
            # No Markovian transitions anywhere: nothing ever moves.
            return np.full(len(times_list), float(values[initial])), empty

        buffer = self.buffer
        rate = buffer.uniformisation_rate
        cache = term_cache if term_cache is not None else self.term_cache
        terms = [cache.get(rate * time, tolerance) for time in times_list]
        depth = max(len(array) for array in terms)
        update = self.update_indices(label)

        gradients = with_gradients and num_params > 0
        current = self._work_a
        current[:] = values
        workspace = self._work_b
        series = np.empty(depth)
        if gradients:
            derivative = np.zeros((self.skeleton.num_states, num_params))
            derivative_series = np.empty((depth, num_params))
            scatter = np.empty_like(derivative)
            sources = buffer._sources
            targets = buffer._targets
            coeffs = buffer._coeffs
        for step in range(depth):
            series[step] = current[initial]
            if gradients:
                derivative_series[step] = derivative[initial]
            if step + 1 == depth:
                break
            nxt = buffer.step_forward(current, workspace)
            if gradients:
                # d(P v)/dparam = P dv + (dP/dparam) v, and dP/dparam has
                # off-diagonal entries coeff_e/Lambda with the matching
                # -sum(coeff)/Lambda on the diagonal, so its action on v is a
                # scatter of coeff_e * (v[target] - v[source]) / Lambda.
                contrib = coeffs * ((current[targets] - current[sources]) / rate)[:, None]
                scatter[:] = 0.0
                np.add.at(scatter, sources, contrib)
                if buffer.dense is not None:
                    propagated = buffer.dense @ derivative
                else:
                    propagated = buffer.matrix @ derivative
                derivative[update] = propagated[update] + scatter[update]
            current[update] = nxt[update]
            self.resolver.resolve(
                current, maximize, companion=derivative if gradients else None
            )

        results = np.fromiter(
            (array @ series[: len(array)] for array in terms),
            dtype=float,
            count=len(terms),
        )
        accumulated = np.fromiter(
            (array.sum() for array in terms), dtype=float, count=len(terms)
        )
        tail = 1.0 - accumulated
        gradient_rows: Optional[np.ndarray] = None
        if with_gradients:
            gradient_rows = np.zeros((len(times_list), num_params))
            if gradients:
                for row, array in enumerate(terms):
                    gradient_rows[row] = array @ derivative_series[: len(array)]
        if maximize:
            raw = results + tail
            if gradient_rows is not None:
                # min(1, .) clips: where the tail pushed past 1 the bound is
                # locally constant, so its gradient vanishes.
                gradient_rows[raw > 1.0] = 0.0
            results = np.minimum(1.0, raw)
        else:
            results = results + tail * float(series[depth - 1])
            if gradient_rows is not None and gradients:
                gradient_rows += tail[:, None] * derivative_series[depth - 1]
        return np.clip(results, 0.0, 1.0), gradient_rows
