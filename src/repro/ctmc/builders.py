"""Conversion of closed I/O-IMC into CTMCs or CTMDPs.

After compositional aggregation the analysis layer is left with a *closed*
model: no input actions remain (every signal has been connected and hidden),
only Markovian transitions, urgent internal/output moves and state labels.
Two cases arise (Section 5, step 6 of the paper's algorithm):

* every vanishing state has a single urgent move — the model "reduces to a
  CTMC" and is converted by eliminating the vanishing states;
* some vanishing state offers several urgent moves — the model is a CTMDP and
  only bounds on the measure can be computed.

Both conversions factor through a **skeleton**: the rate-independent
structure (tangible states, labels, vanishing-state elimination, transition
end-points) computed once, plus the per-transition rate values — possibly
symbolic :class:`~repro.ioimc.rates.ParametricRate` forms.  The rate-sweep
engine (:mod:`repro.core.sweep`) builds the skeleton once per tree and calls
:meth:`CtmcSkeleton.instantiate` per parameter sample, which is how a sweep
shares one conversion + aggregation across all samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from ..errors import ModelError, NondeterminismError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel imports us)
    from scipy import sparse

    from .kernel import CsrBuffer, CtmdpKernel, TransientKernel
from ..ioimc.model import IOIMC
from ..ioimc.rates import RateLike, evaluate_rate, rate_parameters
from .ctmc import CTMC
from .ctmdp import CTMDP


def _urgent_successors(model: IOIMC, state: int) -> Tuple[int, ...]:
    """Targets of urgent (output or internal) transitions of ``state``."""
    urgent_ids = model.signature.urgent_ids
    successors = []
    for aid, target in model.interactive_pairs(state):
        if aid in urgent_ids and target != state:
            successors.append(target)
    return tuple(dict.fromkeys(successors))


def _require_closed(model: IOIMC) -> None:
    if model.signature.inputs:
        raise ModelError(
            "the model still has input actions and is therefore not closed: "
            + ", ".join(sorted(model.signature.inputs))
        )


def _instantiate_edge_rate(
    rate: RateLike, assignment: Optional[Mapping[str, float]]
) -> float:
    value = evaluate_rate(rate, assignment) if assignment is not None else float(rate)
    if not value > 0.0:
        raise ModelError(
            f"instantiating a parametric rate produced a non-positive value "
            f"({value}); rate-sweep samples must keep every rate positive"
        )
    return value


@dataclass(frozen=True)
class CtmcSkeleton:
    """The rate-independent structure of a CTMC extracted from an I/O-IMC.

    ``edges`` holds ``(source, target, rate)`` triples where ``rate`` may be a
    plain float or a :class:`~repro.ioimc.rates.ParametricRate`;
    :meth:`instantiate` evaluates the rates (under an optional parameter
    assignment) into a fresh :class:`CTMC` without touching the structure.
    """

    num_states: int
    initial: int
    labels: Tuple[FrozenSet[str], ...]
    state_names: Tuple[Optional[str], ...]
    edges: Tuple[Tuple[int, int, RateLike], ...]

    @property
    def parameters(self) -> Tuple[str, ...]:
        """Sorted union of the rate parameters the skeleton depends on."""
        names = {name for _s, _t, rate in self.edges for name in rate_parameters(rate)}
        return tuple(sorted(names))

    def instantiate(
        self,
        assignment: Optional[Mapping[str, float]] = None,
        *,
        into: Optional["CsrBuffer"] = None,
    ) -> Union[CTMC, Tuple["sparse.csr_matrix", float]]:
        """A concrete CTMC with the rates evaluated under ``assignment``.

        Without an assignment every parametric rate takes its nominal value.

        With ``into`` (a :class:`~repro.ctmc.kernel.CsrBuffer` built for this
        skeleton) no CTMC is constructed at all: the buffer's preallocated
        uniformised CSR matrix is refilled in place and ``(matrix, Lambda)``
        is returned — the zero-structure-allocation path the rate-sweep
        kernel uses per sample.
        """
        if into is not None:
            if into.skeleton is not self:
                raise ModelError(
                    "the CSR buffer was preallocated for a different skeleton"
                )
            return into.refill(None if assignment is None else dict(assignment))
        ctmc = CTMC(max(self.num_states, 1), 0)
        for state in range(self.num_states):
            ctmc.set_labels(state, self.labels[state])
            if self.state_names[state] is not None:
                ctmc.set_state_name(state, self.state_names[state])
        for source, target, rate in self.edges:
            ctmc.add_rate(source, target, _instantiate_edge_rate(rate, assignment))
        ctmc.set_initial(self.initial)
        return ctmc

    def transient_kernel(self) -> "TransientKernel":
        """A fresh shared-structure transient solver for this skeleton."""
        from .kernel import TransientKernel

        return TransientKernel(self)


@dataclass(frozen=True)
class CtmdpSkeleton:
    """The rate-independent structure of a CTMDP (vanishing choices kept)."""

    num_states: int
    initial: int
    labels: Tuple[FrozenSet[str], ...]
    choices: Tuple[Tuple[int, ...], ...]
    edges: Tuple[Tuple[int, int, RateLike], ...]

    @property
    def parameters(self) -> Tuple[str, ...]:
        names = {name for _s, _t, rate in self.edges for name in rate_parameters(rate)}
        return tuple(sorted(names))

    def instantiate(self, assignment: Optional[Mapping[str, float]] = None) -> CTMDP:
        ctmdp = CTMDP(self.num_states, self.initial)
        for state in range(self.num_states):
            ctmdp.set_labels(state, self.labels[state])
            if self.choices[state]:
                ctmdp.set_choices(state, self.choices[state])
        for source, target, rate in self.edges:
            ctmdp.add_rate(source, target, _instantiate_edge_rate(rate, assignment))
        return ctmdp

    def ctmdp_kernel(self) -> "CtmdpKernel":
        """A fresh shared-structure bound/gradient solver for this skeleton."""
        from .kernel import CtmdpKernel

        return CtmdpKernel(self)


def ctmdp_skeleton_from_ioimc(model: IOIMC) -> CtmdpSkeleton:
    """Extract the CTMDP structure of a closed I/O-IMC (rates kept symbolic)."""
    _require_closed(model)
    choices: List[Tuple[int, ...]] = []
    edges: List[Tuple[int, int, RateLike]] = []
    labels: List[FrozenSet[str]] = []
    for state in model.states():
        labels.append(model.labels(state))
        urgent = _urgent_successors(model, state)
        choices.append(urgent)
        if not urgent:
            # Maximal progress: urgent moves pre-empt Markovian transitions.
            for rate, target in model.markovian_out(state):
                if target != state:
                    edges.append((state, target, rate))
    return CtmdpSkeleton(
        num_states=model.num_states,
        initial=model.initial,
        labels=tuple(labels),
        choices=tuple(choices),
        edges=tuple(edges),
    )


def ctmdp_from_ioimc(model: IOIMC) -> CTMDP:
    """Interpret a closed I/O-IMC as a CTMDP (vanishing states keep choices)."""
    return ctmdp_skeleton_from_ioimc(model).instantiate()


def ctmc_skeleton_from_ioimc(model: IOIMC) -> CtmcSkeleton:
    """Extract the CTMC structure of a closed, deterministic I/O-IMC.

    Vanishing states (urgent moves only) are eliminated by redirecting their
    incoming transitions to the unique tangible state they lead to.  If any
    vanishing state offers a choice between several urgent moves a
    :class:`~repro.errors.NondeterminismError` is raised — the caller should
    fall back to :func:`ctmdp_skeleton_from_ioimc`.  The elimination depends
    only on the urgent-transition structure, never on rate values, so one
    skeleton is valid for every parameter assignment.
    """
    _require_closed(model)

    nondeterministic = []
    forward: Dict[int, int] = {}
    for state in model.states():
        urgent = _urgent_successors(model, state)
        if len(urgent) > 1:
            nondeterministic.append(state)
        elif len(urgent) == 1:
            forward[state] = urgent[0]
    if nondeterministic:
        raise NondeterminismError(
            "the closed model contains non-deterministic urgent choices in "
            f"{len(nondeterministic)} state(s); analyse it as a CTMDP instead",
            states=tuple(nondeterministic),
        )

    def resolve(state: int) -> int:
        seen = set()
        while state in forward:
            if state in seen:
                raise ModelError(
                    "the model diverges: a cycle of instantaneous internal moves "
                    f"involves state {state}"
                )
            seen.add(state)
            state = forward[state]
        return state

    tangible = [state for state in model.states() if state not in forward]
    index = {state: i for i, state in enumerate(tangible)}

    labels = tuple(model.labels(state) for state in tangible)
    state_names = tuple(model.state_name(state) for state in tangible)
    edges: List[Tuple[int, int, RateLike]] = []
    for state in tangible:
        for rate, target in model.markovian_out(state):
            resolved = resolve(target)
            if resolved == state:
                continue
            edges.append((index[state], index[resolved], rate))
    return CtmcSkeleton(
        num_states=max(len(tangible), 1),
        initial=index[resolve(model.initial)],
        labels=labels if labels else (frozenset(),),
        state_names=state_names if state_names else (None,),
        edges=tuple(edges),
    )


def ctmc_from_ioimc(model: IOIMC) -> CTMC:
    """Interpret a closed, deterministic I/O-IMC as a CTMC.

    See :func:`ctmc_skeleton_from_ioimc` for the vanishing-state elimination;
    this wrapper instantiates the skeleton at the nominal rates.
    """
    return ctmc_skeleton_from_ioimc(model).instantiate()


def markov_model_from_ioimc(model: IOIMC) -> Union[CTMC, CTMDP]:
    """Return a CTMC when possible, otherwise a CTMDP."""
    try:
        return ctmc_from_ioimc(model)
    except NondeterminismError:
        return ctmdp_from_ioimc(model)
