"""Conversion of closed I/O-IMC into CTMCs or CTMDPs.

After compositional aggregation the analysis layer is left with a *closed*
model: no input actions remain (every signal has been connected and hidden),
only Markovian transitions, urgent internal/output moves and state labels.
Two cases arise (Section 5, step 6 of the paper's algorithm):

* every vanishing state has a single urgent move — the model "reduces to a
  CTMC" and is converted by eliminating the vanishing states;
* some vanishing state offers several urgent moves — the model is a CTMDP and
  only bounds on the measure can be computed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from ..errors import ModelError, NondeterminismError
from ..ioimc.model import IOIMC
from .ctmc import CTMC
from .ctmdp import CTMDP


def _urgent_successors(model: IOIMC, state: int) -> Tuple[int, ...]:
    """Targets of urgent (output or internal) transitions of ``state``."""
    urgent_ids = model.signature.urgent_ids
    successors = []
    for aid, target in model.interactive_pairs(state):
        if aid in urgent_ids and target != state:
            successors.append(target)
    return tuple(dict.fromkeys(successors))


def _require_closed(model: IOIMC) -> None:
    if model.signature.inputs:
        raise ModelError(
            "the model still has input actions and is therefore not closed: "
            + ", ".join(sorted(model.signature.inputs))
        )


def ctmdp_from_ioimc(model: IOIMC) -> CTMDP:
    """Interpret a closed I/O-IMC as a CTMDP (vanishing states keep choices)."""
    _require_closed(model)
    ctmdp = CTMDP(model.num_states, model.initial)
    for state in model.states():
        ctmdp.set_labels(state, model.labels(state))
        urgent = _urgent_successors(model, state)
        if urgent:
            # Maximal progress: urgent moves pre-empt Markovian transitions.
            ctmdp.set_choices(state, urgent)
        else:
            for rate, target in model.markovian_out(state):
                ctmdp.add_rate(state, target, rate)
    return ctmdp


def ctmc_from_ioimc(model: IOIMC) -> CTMC:
    """Interpret a closed, deterministic I/O-IMC as a CTMC.

    Vanishing states (urgent moves only) are eliminated by redirecting their
    incoming transitions to the unique tangible state they lead to.  If any
    vanishing state offers a choice between several urgent moves a
    :class:`~repro.errors.NondeterminismError` is raised — the caller should
    fall back to :func:`ctmdp_from_ioimc`.
    """
    _require_closed(model)

    nondeterministic = []
    forward: Dict[int, int] = {}
    for state in model.states():
        urgent = _urgent_successors(model, state)
        if len(urgent) > 1:
            nondeterministic.append(state)
        elif len(urgent) == 1:
            forward[state] = urgent[0]
    if nondeterministic:
        raise NondeterminismError(
            "the closed model contains non-deterministic urgent choices in "
            f"{len(nondeterministic)} state(s); analyse it as a CTMDP instead",
            states=tuple(nondeterministic),
        )

    def resolve(state: int) -> int:
        seen = set()
        while state in forward:
            if state in seen:
                raise ModelError(
                    "the model diverges: a cycle of instantaneous internal moves "
                    f"involves state {state}"
                )
            seen.add(state)
            state = forward[state]
        return state

    tangible = [state for state in model.states() if state not in forward]
    index = {state: i for i, state in enumerate(tangible)}

    ctmc = CTMC(max(len(tangible), 1), 0)
    for state in tangible:
        ctmc.set_labels(index[state], model.labels(state))
        ctmc.set_state_name(index[state], model.state_name(state))
    for state in tangible:
        for rate, target in model.markovian_out(state):
            resolved = resolve(target)
            if resolved == state:
                continue
            ctmc.add_rate(index[state], index[resolved], rate)
    ctmc.set_initial(index[resolve(model.initial)])
    return ctmc


def markov_model_from_ioimc(model: IOIMC) -> Union[CTMC, CTMDP]:
    """Return a CTMC when possible, otherwise a CTMDP."""
    try:
        return ctmc_from_ioimc(model)
    except NondeterminismError:
        return ctmdp_from_ioimc(model)
