"""Continuous-time Markov decision processes with vanishing choice states.

When a DFT contains inherent non-determinism (Section 4.4 of the paper, e.g.
an FDEP trigger that fails two inputs of a PAND gate "simultaneously"), the
aggregated closed model is not a CTMC: some *vanishing* states offer a
non-deterministic choice between several immediate internal moves.  The paper
follows Baier et al. (2005) and computes *bounds* on the reliability measure —
the best and worst value over all resolutions of the non-determinism.

The model class here is tailored to exactly that structure:

* **tangible** states carry Markovian transitions and let time pass,
* **vanishing** states carry a non-empty set of instantaneous successor
  states; the scheduler picks one, no time passes.

Time-bounded reachability bounds are computed by uniformisation-based value
iteration: the tangible dynamics are uniformised with a global rate and, after
every step, vanishing states take the max (or min) over their successors'
values.  For time-abstract schedulers this is exact up to the Poisson
truncation error; it is reported as the optimistic/pessimistic bound pair used
in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError, ModelError
from .transient import PoissonTermCache, SweepWeights, validate_times


class VanishingResolver:
    """Vanishing-state max/min propagation in reverse-topological order.

    Precomputed once per choice structure: the SCC condensation of the
    vanishing-state dependency graph (vanishing state -> its vanishing
    successors).  Acyclic vanishing states are grouped into dependency
    *levels* — every state of a level depends only on strictly lower levels —
    and each level resolves in one vectorised segmented reduction, so a chain
    of n vanishing states costs O(n) work instead of the O(n^2) round-robin
    fixpoint it used to.  Genuinely cyclic SCCs (cycles of instantaneous
    internal moves) keep the iterate-with-round-cap treatment, scoped to the
    SCC instead of the whole state space.
    """

    __slots__ = ("_plan", "num_vanishing")

    #: Below this many states a level is resolved with plain Python scalars:
    #: a segmented numpy reduction costs a few microseconds of dispatch per
    #: level, which dominates on the 1-2 state levels of deep chains.
    _SCALAR_LEVEL_LIMIT = 8

    def __init__(self, num_states: int, choices: Sequence[Tuple[int, ...]]):
        vanishing = [state for state in range(num_states) if choices[state]]
        self.num_vanishing = len(vanishing)
        self._plan: List[tuple] = []
        if not vanishing:
            return
        order = self._condense(choices, vanishing)
        unit_of: Dict[int, int] = {}
        for unit, members in enumerate(order):
            for state in members:
                unit_of[state] = unit
        # Dependency level of each SCC: 0 when its choices lead only to
        # tangible (or same-SCC) states, else 1 + the deepest successor level.
        # Tarjan emits SCCs successors-first, so levels resolve in one pass.
        levels: List[int] = []
        grouped: Dict[int, Tuple[List[int], List[Tuple[int, ...]]]] = {}
        for unit, members in enumerate(order):
            level = 0
            cyclic = len(members) > 1
            for state in members:
                for target in choices[state]:
                    if target == state:
                        cyclic = True
                    elif choices[target] and unit_of[target] != unit:
                        level = max(level, levels[unit_of[target]] + 1)
            levels.append(level)
            singles, cycles = grouped.setdefault(level, ([], []))
            if cyclic:
                cycles.append(members)
            else:
                singles.append(members[0])
        for level in sorted(grouped):
            singles, cycles = grouped[level]
            if singles:
                self._plan.append(self._wave(singles, choices))
            for members in cycles:
                self._plan.append(
                    ("cycle", tuple((state, choices[state]) for state in members))
                )

    @staticmethod
    def _condense(
        choices: Sequence[Tuple[int, ...]], vanishing: List[int]
    ) -> List[Tuple[int, ...]]:
        """Tarjan SCCs of the vanishing subgraph, successors-first (iterative)."""
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Dict[int, bool] = {}
        stack: List[int] = []
        order: List[Tuple[int, ...]] = []
        counter = 0
        for root in vanishing:
            if root in index:
                continue
            work = [(root, iter(choices[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                state, successors = work[-1]
                advanced = False
                for target in successors:
                    if not choices[target]:
                        continue  # tangible successor: not part of the graph
                    if target not in index:
                        index[target] = lowlink[target] = counter
                        counter += 1
                        stack.append(target)
                        on_stack[target] = True
                        work.append((target, iter(choices[target])))
                        advanced = True
                        break
                    if on_stack[target]:
                        lowlink[state] = min(lowlink[state], index[target])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[state])
                if lowlink[state] == index[state]:
                    members = []
                    while True:
                        popped = stack.pop()
                        on_stack[popped] = False
                        members.append(popped)
                        if popped == state:
                            break
                    order.append(tuple(sorted(members)))
        return order

    @classmethod
    def _wave(cls, states: List[int], choices: Sequence[Tuple[int, ...]]) -> tuple:
        targets = np.fromiter(
            (target for state in states for target in choices[state]), dtype=np.int64
        )
        counts = np.fromiter(
            (len(choices[state]) for state in states), dtype=np.int64, count=len(states)
        )
        offsets = np.zeros(len(states), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        scalar = (
            tuple((state, choices[state]) for state in states)
            if len(states) < cls._SCALAR_LEVEL_LIMIT
            else None
        )
        return ("wave", np.asarray(states, dtype=np.int64), targets, offsets, counts, scalar)

    def resolve(
        self,
        values: np.ndarray,
        maximize: bool,
        companion: Optional[np.ndarray] = None,
        choice_out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Overwrite vanishing states with their optimal successor value.

        ``values`` is mutated in place (and returned).  ``companion`` is an
        optional ``(num_states, k)`` array whose rows follow the same
        successor selection — the CTMDP kernel's gradient block rides along
        through it.  ``choice_out`` is an optional ``(num_states,)`` integer
        array that receives, for every vanishing state, the first successor
        attaining the optimum — the per-state argbest the scheduler
        extraction records.
        """
        for entry in self._plan:
            if entry[0] == "wave":
                _tag, states, targets, offsets, counts, scalar = entry
                if scalar is not None and companion is None and choice_out is None:
                    best_of = max if maximize else min
                    for state, successors in scalar:
                        values[state] = best_of(values[t] for t in successors)
                    continue
                picked = values[targets]
                reducer = np.maximum if maximize else np.minimum
                best = reducer.reduceat(picked, offsets)
                if companion is not None or choice_out is not None:
                    # First successor attaining the optimum, per segment.
                    matches = np.where(
                        picked == np.repeat(best, counts),
                        np.arange(len(targets)),
                        len(targets),
                    )
                    chosen = targets[np.minimum.reduceat(matches, offsets)]
                    if companion is not None:
                        companion[states] = companion[chosen]
                    if choice_out is not None:
                        choice_out[states] = chosen
                values[states] = best
            else:
                self._resolve_cycle(values, maximize, entry[1], companion, choice_out)
        return values

    @staticmethod
    def _resolve_cycle(
        values: np.ndarray,
        maximize: bool,
        members: Tuple[Tuple[int, Tuple[int, ...]], ...],
        companion: Optional[np.ndarray],
        choice_out: Optional[np.ndarray] = None,
    ) -> None:
        best_of = max if maximize else min
        for _round in range(len(members) + 1):
            changed = False
            for state, targets in members:
                best = best_of(values[target] for target in targets)
                if not np.isclose(best, values[state], rtol=0.0, atol=1e-15):
                    values[state] = best
                    changed = True
            if not changed:
                break
        else:
            raise AnalysisError(
                "vanishing states do not stabilise: the model contains a cycle of "
                "instantaneous internal moves"
            )
        if companion is not None or choice_out is not None:
            # Follow the converged selection; rows need as many hops to settle
            # as the cycle's diameter, hence the same round cap.
            for _round in range(len(members) + 1):
                for state, targets in members:
                    chosen = targets[0]
                    for target in targets:
                        if values[target] == values[state]:
                            chosen = target
                            break
                    if companion is not None:
                        companion[state] = companion[chosen]
                    if choice_out is not None:
                        choice_out[state] = chosen


class CTMDP:
    """A CTMC enriched with vanishing non-deterministic choice states."""

    def __init__(self, num_states: int, initial: int = 0):
        if num_states <= 0:
            raise ModelError("a CTMDP needs at least one state")
        if not 0 <= initial < num_states:
            raise ModelError(f"initial state {initial} out of range")
        self._num_states = num_states
        self._initial = initial
        self._rates: List[Dict[int, float]] = [dict() for _ in range(num_states)]
        self._choices: List[Tuple[int, ...]] = [() for _ in range(num_states)]
        self._labels: List[FrozenSet[str]] = [frozenset() for _ in range(num_states)]
        # Structure version: bumped by every mutator so the cached resolver
        # and backward-sweep kernel are rebuilt exactly when needed.
        self._version = 0
        self._resolver: Optional[Tuple[int, VanishingResolver]] = None
        self._engine: Optional[Tuple[int, object]] = None

    # ------------------------------------------------------------------ build
    def add_rate(self, source: int, target: int, rate: float) -> None:
        self._check(source)
        self._check(target)
        if not rate > 0.0:
            raise ModelError(f"rates must be positive, got {rate}")
        if self._choices[source]:
            raise ModelError(
                f"state {source} is a vanishing choice state and cannot carry rates"
            )
        if source == target:
            return
        self._rates[source][target] = self._rates[source].get(target, 0.0) + rate
        self._version += 1

    def set_choices(self, source: int, targets: Iterable[int]) -> None:
        """Declare ``source`` vanishing with the given instantaneous successors."""
        self._check(source)
        target_tuple = tuple(dict.fromkeys(targets))
        for target in target_tuple:
            self._check(target)
        if not target_tuple:
            raise ModelError("a vanishing state needs at least one successor")
        if self._rates[source]:
            raise ModelError(
                f"state {source} carries Markovian rates and cannot be vanishing"
            )
        self._choices[source] = target_tuple
        self._version += 1

    def set_labels(self, state: int, labels: Iterable[str]) -> None:
        self._check(state)
        self._labels[state] = frozenset(labels)
        self._version += 1

    def set_initial(self, state: int) -> None:
        self._check(state)
        self._initial = state
        self._version += 1

    # ---------------------------------------------------------------- queries
    @property
    def num_states(self) -> int:
        return self._num_states

    @property
    def initial(self) -> int:
        return self._initial

    def states(self) -> range:
        return range(self._num_states)

    def labels(self, state: int) -> FrozenSet[str]:
        self._check(state)
        return self._labels[state]

    def is_vanishing(self, state: int) -> bool:
        self._check(state)
        return bool(self._choices[state])

    def choices(self, state: int) -> Tuple[int, ...]:
        self._check(state)
        return self._choices[state]

    def rates_from(self, state: int) -> Sequence[Tuple[int, float]]:
        self._check(state)
        return tuple(self._rates[state].items())

    def exit_rate(self, state: int) -> float:
        self._check(state)
        return sum(self._rates[state].values())

    def states_with_label(self, label: str) -> FrozenSet[int]:
        return frozenset(s for s in self.states() if label in self._labels[s])

    @property
    def has_nondeterminism(self) -> bool:
        return any(len(choice) > 1 for choice in self._choices)

    # --------------------------------------------------------------- analysis
    def _vanishing_resolver(self) -> VanishingResolver:
        """The (cached) topological resolver of this model's choice structure."""
        cached = self._resolver
        if cached is None or cached[0] != self._version:
            cached = (self._version, VanishingResolver(self._num_states, self._choices))
            self._resolver = cached
        return cached[1]

    def _resolve_vanishing(self, values: np.ndarray, maximize: bool) -> np.ndarray:
        """Propagate values through vanishing states (max/min of successors).

        Acyclic vanishing states resolve in one reverse-topological pass;
        cyclic SCCs iterate with a round cap and a cycle of instantaneous
        internal moves that fails to stabilise is rejected (see
        :class:`VanishingResolver`).
        """
        resolved = np.asarray(values, dtype=float).copy()
        return self._vanishing_resolver().resolve(resolved, maximize)

    def _kernel(self):
        """The (cached) shared-structure backward-sweep kernel of this model."""
        from .builders import CtmdpSkeleton
        from .kernel import CtmdpKernel

        cached = self._engine
        if cached is None or cached[0] != self._version:
            skeleton = CtmdpSkeleton(
                num_states=self._num_states,
                initial=self._initial,
                labels=tuple(self._labels),
                choices=tuple(self._choices),
                edges=tuple(
                    (source, target, rate)
                    for source, row in enumerate(self._rates)
                    for target, rate in row.items()
                ),
            )
            kernel = CtmdpKernel(skeleton)
            kernel.load()
            cached = (self._version, kernel)
            self._engine = cached
        return cached[1]

    def time_bounded_reachability_curve(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
        term_cache: Optional[PoissonTermCache] = None,
    ) -> np.ndarray:
        """Optimal reach-``label`` probability at each of ``times``, one sweep.

        The backward value-iteration iterates do not depend on the time point,
        only the Poisson weights do, so all time points share one sweep up to
        the deepest truncation (the curve analogue of
        :func:`repro.ctmc.transient.transient_distributions`).  The sweep runs
        on the vectorised :class:`~repro.ctmc.kernel.CtmdpKernel`;
        :meth:`time_bounded_reachability_curve_reference` keeps the original
        per-state Python engine for differential testing.
        """
        return self._kernel().time_bounded_reachability_curve(
            label, times, maximize=maximize, tolerance=tolerance, term_cache=term_cache
        )

    def time_bounded_reachability_curve_reference(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
        term_cache: Optional[PoissonTermCache] = None,
    ) -> np.ndarray:
        """Reference implementation of the reachability-bound curve.

        The original per-state Python backward value iteration, kept (like
        :func:`repro.ctmc.transient.poisson_terms_reference`) as an
        independent implementation for the cross-engine differential tests;
        the production path is the vectorised kernel behind
        :meth:`time_bounded_reachability_curve`.
        """
        times_list = validate_times(times)
        if not times_list:
            return np.zeros(0)
        goal = self.states_with_label(label)
        if not goal:
            return np.zeros(len(times_list))

        uniformization_rate = max(
            (self.exit_rate(s) for s in self.states() if s not in goal), default=0.0
        )
        values = np.array([1.0 if s in goal else 0.0 for s in self.states()])
        values = self._resolve_vanishing(values, maximize)
        if uniformization_rate == 0.0:
            return np.full(len(times_list), float(values[self._initial]))

        weights = SweepWeights(uniformization_rate, times_list, tolerance, term_cache)
        depth = weights.depth
        # Markovian step structure, hoisted out of the sweep: for every
        # tangible non-goal state its stay-probability and jump distribution
        # under the uniformised chain.
        steps: List[Tuple[int, float, Tuple[Tuple[int, float], ...]]] = []
        for state in self.states():
            if state in goal or self._choices[state]:
                continue
            steps.append(
                (
                    state,
                    1.0 - self.exit_rate(state) / uniformization_rate,
                    tuple(
                        (target, rate / uniformization_rate)
                        for target, rate in self._rates[state].items()
                    ),
                )
            )

        # Backward value iteration: after k steps ``current`` holds the
        # probability of reaching the goal within k uniformisation steps.
        results = np.zeros(len(times_list))
        accumulated = np.zeros(len(times_list))
        current = values
        for step in range(depth):
            rows, column = weights.column(step)
            results[rows] += column * current[self._initial]
            accumulated[rows] += column
            if step + 1 == depth:
                break
            nxt = current.copy()
            for state, stay, jumps in steps:
                total = stay * current[state]
                for target, probability in jumps:
                    total += probability * current[target]
                nxt[state] = total
            current = self._resolve_vanishing(nxt, maximize)
        # Account for the truncated tail: the remaining Poisson mass
        # contributes at most its weight (upper bound) and at least its
        # weight times the deepest computed iterate — the reach probabilities
        # v_k are non-decreasing in k, so the final iterate is a valid lower
        # bound on every truncated term.  (The minimise branch used to drop
        # the tail entirely, biasing the lower bound down by ~tolerance.)
        if maximize:
            results = np.minimum(1.0, results + (1.0 - accumulated))
        else:
            results = results + (1.0 - accumulated) * float(current[self._initial])
        return np.clip(results, 0.0, 1.0)

    def time_bounded_reachability(
        self,
        label: str,
        time: float,
        maximize: bool = True,
        tolerance: float = 1e-10,
    ) -> float:
        """Optimal probability of residing in a ``label``-state at ``time``.

        The goal states are made absorbing first (so the value is the
        probability of having reached the goal by ``time``, matching the
        unreliability semantics of absorbing DFT failure states).
        """
        curve = self.time_bounded_reachability_curve(
            label, [time], maximize=maximize, tolerance=tolerance
        )
        return float(curve[0])

    def optimal_scheduler(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
    ) -> Dict[int, Tuple[int, float]]:
        """Which successor each contested choice state picks in the bound.

        Delegates to :meth:`repro.ctmc.kernel.CtmdpKernel.optimal_choices`:
        for every vanishing state with more than one successor, the successor
        the backward sweep's argbest selects at the deepest iterate, together
        with the fraction of sweep steps that agreed with it (1.0 means the
        same choice at every step — a time-abstract scheduler).
        """
        return self._kernel().optimal_choices(
            label, times, maximize=maximize, tolerance=tolerance
        )

    def reachability_bounds_curve(
        self, label: str, times: Sequence[float], tolerance: float = 1e-10
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(minimum, maximum) reach-``label`` probability curves over ``times``.

        The min and max sweeps share one Poisson term cache (they use the same
        uniformisation rate, so every weight array is computed once).
        """
        cache = PoissonTermCache()
        lower = self.time_bounded_reachability_curve(
            label, times, maximize=False, tolerance=tolerance, term_cache=cache
        )
        upper = self.time_bounded_reachability_curve(
            label, times, maximize=True, tolerance=tolerance, term_cache=cache
        )
        return lower, upper

    def reachability_bounds(
        self, label: str, time: float, tolerance: float = 1e-10
    ) -> Tuple[float, float]:
        """(minimum, maximum) probability of having reached ``label`` by ``time``."""
        lower, upper = self.reachability_bounds_curve(label, [time], tolerance=tolerance)
        return float(lower[0]), float(upper[0])

    # ---------------------------------------------------------------- helpers
    def _check(self, state: int) -> None:
        if not 0 <= state < self._num_states:
            raise ModelError(f"state {state} out of range (0..{self._num_states - 1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        vanishing = sum(1 for s in self.states() if self._choices[s])
        return (
            f"CTMDP(states={self.num_states}, vanishing={vanishing}, "
            f"nondeterministic={self.has_nondeterminism})"
        )
