"""Continuous-time Markov decision processes with vanishing choice states.

When a DFT contains inherent non-determinism (Section 4.4 of the paper, e.g.
an FDEP trigger that fails two inputs of a PAND gate "simultaneously"), the
aggregated closed model is not a CTMC: some *vanishing* states offer a
non-deterministic choice between several immediate internal moves.  The paper
follows Baier et al. (2005) and computes *bounds* on the reliability measure —
the best and worst value over all resolutions of the non-determinism.

The model class here is tailored to exactly that structure:

* **tangible** states carry Markovian transitions and let time pass,
* **vanishing** states carry a non-empty set of instantaneous successor
  states; the scheduler picks one, no time passes.

Time-bounded reachability bounds are computed by uniformisation-based value
iteration: the tangible dynamics are uniformised with a global rate and, after
every step, vanishing states take the max (or min) over their successors'
values.  For time-abstract schedulers this is exact up to the Poisson
truncation error; it is reported as the optimistic/pessimistic bound pair used
in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError, ModelError
from .transient import PoissonTermCache, SweepWeights, validate_times


class CTMDP:
    """A CTMC enriched with vanishing non-deterministic choice states."""

    def __init__(self, num_states: int, initial: int = 0):
        if num_states <= 0:
            raise ModelError("a CTMDP needs at least one state")
        if not 0 <= initial < num_states:
            raise ModelError(f"initial state {initial} out of range")
        self._num_states = num_states
        self._initial = initial
        self._rates: List[Dict[int, float]] = [dict() for _ in range(num_states)]
        self._choices: List[Tuple[int, ...]] = [() for _ in range(num_states)]
        self._labels: List[FrozenSet[str]] = [frozenset() for _ in range(num_states)]

    # ------------------------------------------------------------------ build
    def add_rate(self, source: int, target: int, rate: float) -> None:
        self._check(source)
        self._check(target)
        if not rate > 0.0:
            raise ModelError(f"rates must be positive, got {rate}")
        if self._choices[source]:
            raise ModelError(
                f"state {source} is a vanishing choice state and cannot carry rates"
            )
        if source == target:
            return
        self._rates[source][target] = self._rates[source].get(target, 0.0) + rate

    def set_choices(self, source: int, targets: Iterable[int]) -> None:
        """Declare ``source`` vanishing with the given instantaneous successors."""
        self._check(source)
        target_tuple = tuple(dict.fromkeys(targets))
        for target in target_tuple:
            self._check(target)
        if not target_tuple:
            raise ModelError("a vanishing state needs at least one successor")
        if self._rates[source]:
            raise ModelError(
                f"state {source} carries Markovian rates and cannot be vanishing"
            )
        self._choices[source] = target_tuple

    def set_labels(self, state: int, labels: Iterable[str]) -> None:
        self._check(state)
        self._labels[state] = frozenset(labels)

    def set_initial(self, state: int) -> None:
        self._check(state)
        self._initial = state

    # ---------------------------------------------------------------- queries
    @property
    def num_states(self) -> int:
        return self._num_states

    @property
    def initial(self) -> int:
        return self._initial

    def states(self) -> range:
        return range(self._num_states)

    def labels(self, state: int) -> FrozenSet[str]:
        self._check(state)
        return self._labels[state]

    def is_vanishing(self, state: int) -> bool:
        self._check(state)
        return bool(self._choices[state])

    def choices(self, state: int) -> Tuple[int, ...]:
        self._check(state)
        return self._choices[state]

    def rates_from(self, state: int) -> Sequence[Tuple[int, float]]:
        self._check(state)
        return tuple(self._rates[state].items())

    def exit_rate(self, state: int) -> float:
        self._check(state)
        return sum(self._rates[state].values())

    def states_with_label(self, label: str) -> FrozenSet[int]:
        return frozenset(s for s in self.states() if label in self._labels[s])

    @property
    def has_nondeterminism(self) -> bool:
        return any(len(choice) > 1 for choice in self._choices)

    # --------------------------------------------------------------- analysis
    def _resolve_vanishing(self, values: np.ndarray, maximize: bool) -> np.ndarray:
        """Propagate values through vanishing states until a fixpoint.

        Vanishing states take the max/min of their successors.  Chains of
        vanishing states are handled by iterating; a cycle of vanishing states
        (a divergence of internal moves) is rejected.
        """
        resolved = values.copy()
        vanishing = [s for s in self.states() if self._choices[s]]
        for _round in range(self._num_states + 1):
            changed = False
            for state in vanishing:
                candidates = [resolved[target] for target in self._choices[state]]
                best = max(candidates) if maximize else min(candidates)
                if not np.isclose(best, resolved[state], rtol=0.0, atol=1e-15):
                    resolved[state] = best
                    changed = True
            if not changed:
                return resolved
        raise AnalysisError(
            "vanishing states do not stabilise: the model contains a cycle of "
            "instantaneous internal moves"
        )

    def time_bounded_reachability_curve(
        self,
        label: str,
        times: Sequence[float],
        maximize: bool = True,
        tolerance: float = 1e-10,
        term_cache: Optional[PoissonTermCache] = None,
    ) -> np.ndarray:
        """Optimal reach-``label`` probability at each of ``times``, one sweep.

        The backward value-iteration iterates do not depend on the time point,
        only the Poisson weights do, so all time points share one sweep up to
        the deepest truncation (the curve analogue of
        :func:`repro.ctmc.transient.transient_distributions`).
        """
        times_list = validate_times(times)
        if not times_list:
            return np.zeros(0)
        goal = self.states_with_label(label)
        if not goal:
            return np.zeros(len(times_list))

        uniformization_rate = max(
            (self.exit_rate(s) for s in self.states() if s not in goal), default=0.0
        )
        values = np.array([1.0 if s in goal else 0.0 for s in self.states()])
        values = self._resolve_vanishing(values, maximize)
        if uniformization_rate == 0.0:
            return np.full(len(times_list), float(values[self._initial]))

        weights = SweepWeights(uniformization_rate, times_list, tolerance, term_cache)
        depth = weights.depth
        # Markovian step structure, hoisted out of the sweep: for every
        # tangible non-goal state its stay-probability and jump distribution
        # under the uniformised chain.
        steps: List[Tuple[int, float, Tuple[Tuple[int, float], ...]]] = []
        for state in self.states():
            if state in goal or self._choices[state]:
                continue
            steps.append(
                (
                    state,
                    1.0 - self.exit_rate(state) / uniformization_rate,
                    tuple(
                        (target, rate / uniformization_rate)
                        for target, rate in self._rates[state].items()
                    ),
                )
            )

        # Backward value iteration: after k steps ``current`` holds the
        # probability of reaching the goal within k uniformisation steps.
        results = np.zeros(len(times_list))
        accumulated = np.zeros(len(times_list))
        current = values
        for step in range(depth):
            rows, column = weights.column(step)
            results[rows] += column * current[self._initial]
            accumulated[rows] += column
            if step + 1 == depth:
                break
            nxt = current.copy()
            for state, stay, jumps in steps:
                total = stay * current[state]
                for target, probability in jumps:
                    total += probability * current[target]
                nxt[state] = total
            current = self._resolve_vanishing(nxt, maximize)
        # Account for the truncated tail pessimistically/optimistically: the
        # remaining mass contributes at most its weight.
        if maximize:
            results = np.minimum(1.0, results + (1.0 - accumulated))
        return np.clip(results, 0.0, 1.0)

    def time_bounded_reachability(
        self,
        label: str,
        time: float,
        maximize: bool = True,
        tolerance: float = 1e-10,
    ) -> float:
        """Optimal probability of residing in a ``label``-state at ``time``.

        The goal states are made absorbing first (so the value is the
        probability of having reached the goal by ``time``, matching the
        unreliability semantics of absorbing DFT failure states).
        """
        curve = self.time_bounded_reachability_curve(
            label, [time], maximize=maximize, tolerance=tolerance
        )
        return float(curve[0])

    def reachability_bounds_curve(
        self, label: str, times: Sequence[float], tolerance: float = 1e-10
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(minimum, maximum) reach-``label`` probability curves over ``times``.

        The min and max sweeps share one Poisson term cache (they use the same
        uniformisation rate, so every weight array is computed once).
        """
        cache = PoissonTermCache()
        lower = self.time_bounded_reachability_curve(
            label, times, maximize=False, tolerance=tolerance, term_cache=cache
        )
        upper = self.time_bounded_reachability_curve(
            label, times, maximize=True, tolerance=tolerance, term_cache=cache
        )
        return lower, upper

    def reachability_bounds(
        self, label: str, time: float, tolerance: float = 1e-10
    ) -> Tuple[float, float]:
        """(minimum, maximum) probability of having reached ``label`` by ``time``."""
        lower, upper = self.reachability_bounds_curve(label, [time], tolerance=tolerance)
        return float(lower[0]), float(upper[0])

    # ---------------------------------------------------------------- helpers
    def _check(self, state: int) -> None:
        if not 0 <= state < self._num_states:
            raise ModelError(f"state {state} out of range (0..{self._num_states - 1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        vanishing = sum(1 for s in self.states() if self._choices[s])
        return (
            f"CTMDP(states={self.num_states}, vanishing={vanishing}, "
            f"nondeterministic={self.has_nondeterminism})"
        )
