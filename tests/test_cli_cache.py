"""CLI surface of the skeleton cache: `repro cache {stats,clear,warm}` and
`--skeleton-cache` on analyze/sweep."""

import json

import pytest

from repro.cli import main
from repro.dft import galileo
from repro.systems import cardiac_assist_system, random_corpus

STATS_KEYS = {
    "root",
    "entries",
    "total_bytes",
    "max_bytes",
    "hash_version",
    "format_version",
    "hits",
    "misses",
    "stores",
    "evictions",
    "corrupt_evictions",
    "temp_reclaimed",
    "compression",
    "payload_bytes",
    "compressed_bytes",
    "compression_ratio",
}


@pytest.fixture
def corpus_dir(tmp_path):
    for index, tree in enumerate(random_corpus(3, num_basic_events=4, seed=11)):
        galileo.write_file(tree, str(tmp_path / f"tree{index}.dft"))
    return tmp_path


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "skel-cache")


class TestCacheStats:
    def test_json_golden_on_fresh_cache(self, cache_dir, capsys):
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert set(stats) == STATS_KEYS
        golden = {
            "root": cache_dir,
            "entries": 0,
            "total_bytes": 0,
            "max_bytes": None,
            "hash_version": 1,
            "format_version": 2,
            "compression": "zlib-1",
            "payload_bytes": 0,
            "compressed_bytes": 0,
            "compression_ratio": None,
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "corrupt_evictions": 0,
            "temp_reclaimed": 0,
        }
        assert stats == golden

    def test_json_counts_warmed_entries(self, cache_dir, corpus_dir, capsys):
        assert (
            main(["cache", "warm", str(corpus_dir / "*.dft"), "--cache-dir", cache_dir])
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0

    def test_text_mode(self, cache_dir, capsys):
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        output = capsys.readouterr().out
        assert "Entries    : 0" in output
        assert "Byte cap   : unlimited" in output
        assert "Compression: zlib-1" in output
        assert "hash v1" in output
        assert "format v2" in output


class TestCacheWarm:
    def test_warm_then_idempotent(self, cache_dir, corpus_dir, capsys):
        pattern = str(corpus_dir / "*.dft")
        assert main(["cache", "warm", pattern, "--cache-dir", cache_dir]) == 0
        assert "3 built, 0 already cached, 0 failed" in capsys.readouterr().out
        assert main(["cache", "warm", pattern, "--cache-dir", cache_dir]) == 0
        assert "0 built, 3 already cached, 0 failed" in capsys.readouterr().out

    def test_unmatched_glob_is_an_error(self, cache_dir, tmp_path, capsys):
        assert (
            main(
                ["cache", "warm", str(tmp_path / "no-*.dft"), "--cache-dir", cache_dir]
            )
            == 2
        )
        assert "matched no files" in capsys.readouterr().err

    def test_partially_unmatched_glob_is_an_error(self, cache_dir, corpus_dir, capsys):
        """A typo'd pattern must not silently shrink the warm set."""
        assert (
            main(
                [
                    "cache",
                    "warm",
                    str(corpus_dir / "*.dft"),
                    str(corpus_dir / "*.dtf"),
                    "--cache-dir",
                    cache_dir,
                ]
            )
            == 2
        )
        assert "matched no files" in capsys.readouterr().err

    def test_broken_tree_fails_with_exit_1(self, cache_dir, corpus_dir, capsys):
        (corpus_dir / "broken.dft").write_text("not galileo at all\n")
        assert (
            main(["cache", "warm", str(corpus_dir / "*.dft"), "--cache-dir", cache_dir])
            == 1
        )
        assert "1 failed" in capsys.readouterr().out


class TestCacheClear:
    def test_clear_reports_removed_count(self, cache_dir, corpus_dir, capsys):
        main(["cache", "warm", str(corpus_dir / "*.dft"), "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 3 cache entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 0 cache entries" in capsys.readouterr().out


class TestSkeletonCacheFlag:
    @pytest.fixture
    def cas_file(self, tmp_path):
        path = tmp_path / "cas.dft"
        galileo.write_file(cardiac_assist_system(), str(path))
        return str(path)

    def test_analyze_reports_miss_then_hit(self, cas_file, cache_dir, capsys):
        assert (
            main(["analyze", cas_file, "--time", "1.0", "--skeleton-cache", cache_dir])
            == 0
        )
        assert "Cache      : miss" in capsys.readouterr().out
        assert (
            main(["analyze", cas_file, "--time", "1.0", "--skeleton-cache", cache_dir])
            == 0
        )
        output = capsys.readouterr().out
        assert "Cache      : hit" in output
        assert "Unreliability(t=1) = 0.657900" in output

    def test_analyze_json_records_cache_state(self, cas_file, cache_dir, capsys):
        assert (
            main(["analyze", cas_file, "--json", "--skeleton-cache", cache_dir]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["options"]["skeleton_cache"] == "miss"

    def test_cached_values_match_uncached(self, cas_file, cache_dir, capsys):
        assert main(["analyze", cas_file, "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        main(["analyze", cas_file, "--json", "--skeleton-cache", cache_dir])
        capsys.readouterr()
        assert (
            main(["analyze", cas_file, "--json", "--skeleton-cache", cache_dir]) == 0
        )
        cached = json.loads(capsys.readouterr().out)
        for ours, theirs in zip(cached["measures"], plain["measures"]):
            for a, b in zip(ours["values"], theirs["values"]):
                assert a == pytest.approx(b, abs=1e-9)

    def test_sweep_with_cache_and_shared_rate(self, tmp_path, cache_dir, capsys):
        path = tmp_path / "param.dft"
        path.write_text(
            'param lam = 0.5;\n'
            'toplevel "top";\n'
            '"top" and "a" "b";\n'
            '"a" lambda=lam;\n'
            '"b" lambda=0.7;\n'
        )
        args = [
            "sweep",
            str(path),
            "--param",
            "lam=0.1,0.5,1.0",
            "--json",
            "--skeleton-cache",
            cache_dir,
            "--share-uniformisation",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["options"]["skeleton_cache"] == "miss"
        assert payload["options"]["shared_uniformisation_rate"] > 0
        assert main(args) == 0
        again = json.loads(capsys.readouterr().out)
        assert again["options"]["skeleton_cache"] == "hit"
        for ours, theirs in zip(again["rows"], payload["rows"]):
            assert ours["measures"] == theirs["measures"]
