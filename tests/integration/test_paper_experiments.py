"""Integration tests reproducing the paper's quantitative claims.

Each test corresponds to an experiment of DESIGN.md / EXPERIMENTS.md; the
benchmarks regenerate the same numbers with timing, these tests pin them down
as correctness assertions.
"""

import pytest

from repro import CompositionalAnalyzer, detect_nondeterminism, unavailability
from repro.baselines import DiftreeAnalyzer, MonolithicMarkovGenerator
from repro.core import compositional_aggregate, convert
from repro.ctmc import ctmc_from_ioimc, markov_model_from_ioimc
from repro.ioimc import minimize_weak, parallel
from repro.systems import (
    CAS_PAPER_UNRELIABILITY,
    CPS_PAPER_UNRELIABILITY,
    PAPER_DIFTREE_STATES,
    PAPER_DIFTREE_TRANSITIONS,
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    pand_race_system,
    repairable_and_system,
)


class TestFigure2:
    """E1: composition, hiding and aggregation of the Figure 2 example."""

    def test_composition_and_aggregation(self):
        model_a, model_b = figure2_models(rate=1.0)
        composed = parallel(model_a, model_b)
        hidden = composed.hide(["a"])
        aggregated = minimize_weak(hidden)
        # The four interleaving states with identical future behaviour collapse:
        # the aggregated model is strictly smaller than the composition.
        assert aggregated.num_states < composed.num_states
        assert aggregated.num_states <= 4
        # The externally visible action b is preserved.
        assert "b" in aggregated.signature.outputs


class TestCardiacAssistSystem:
    """E2: the CAS (Section 5.1) — unreliability 0.6579 at t=1, small modules."""

    @pytest.fixture(scope="class")
    def analyzer(self):
        return CompositionalAnalyzer(cardiac_assist_system())

    def test_compositional_unreliability_matches_paper(self, analyzer):
        assert analyzer.unreliability(1.0) == pytest.approx(
            CAS_PAPER_UNRELIABILITY, abs=5e-5
        )

    def test_diftree_baseline_agrees(self, analyzer):
        diftree = DiftreeAnalyzer(cardiac_assist_system()).analyze(1.0)
        assert diftree.unreliability == pytest.approx(analyzer.unreliability(1.0), abs=1e-9)

    def test_galileo_biggest_module_is_the_pump_unit_with_8_states(self):
        result = DiftreeAnalyzer(cardiac_assist_system()).analyze(1.0)
        by_root = {m.root: m for m in result.modules if m.dynamic}
        assert by_root["Pump_unit"].states == 8
        assert result.largest_chain_states <= 10

    def test_unit_models_aggregate_to_a_handful_of_states(self):
        """The paper reports ~6 states per aggregated unit I/O-IMC."""
        cas = cardiac_assist_system()
        for unit in ("Motor_unit", "Pump_unit", "CPU_unit"):
            sub = cas.descendants(unit)
            # Build a tree restricted to the unit and analyse it in isolation.
            from repro.dft import DynamicFaultTree

            subtree = DynamicFaultTree(unit)
            for name in cas.topological_order():
                if name in sub or name in {"CPU_fdep", "Trigger", "CS", "SS"} and unit == "CPU_unit":
                    if name not in subtree:
                        subtree.add(cas.element(name))
            subtree.set_top(unit)
            analyzer = CompositionalAnalyzer(subtree)
            assert analyzer.final_ioimc.num_states <= 8

    def test_compositional_peak_far_below_monolithic(self, analyzer):
        monolithic = MonolithicMarkovGenerator(cardiac_assist_system()).build()
        assert analyzer.statistics.peak_product_states < monolithic.num_states


class TestCascadedPandSystem:
    """E3: the CPS (Section 5.2) — the state-space-explosion comparison."""

    @pytest.fixture(scope="class")
    def analyzer(self):
        return CompositionalAnalyzer(cascaded_pand_system())

    @pytest.fixture(scope="class")
    def monolithic(self):
        return MonolithicMarkovGenerator(cascaded_pand_system()).build()

    def test_unreliability_matches_paper(self, analyzer):
        assert analyzer.unreliability(1.0) == pytest.approx(
            CPS_PAPER_UNRELIABILITY, abs=5e-5
        )

    def test_monolithic_chain_matches_paper_exactly(self, monolithic):
        assert monolithic.num_states == PAPER_DIFTREE_STATES
        assert monolithic.num_transitions == PAPER_DIFTREE_TRANSITIONS

    def test_monolithic_value_agrees_with_compositional(self, analyzer):
        from repro.ctmc.transient import probability_reach_label

        monolithic = MonolithicMarkovGenerator(cascaded_pand_system()).build()
        value = probability_reach_label(monolithic.ctmc, "failed", 1.0)
        assert value == pytest.approx(analyzer.unreliability(1.0), abs=1e-9)

    def test_compositional_peak_is_orders_of_magnitude_smaller(self, analyzer, monolithic):
        stats = analyzer.statistics
        assert stats.peak_product_states < 200
        assert stats.peak_product_transitions < 600
        assert stats.peak_product_states * 20 < monolithic.num_states
        assert stats.peak_product_transitions * 40 < monolithic.num_transitions

    def test_module_a_aggregates_to_a_six_state_chain(self):
        """Figure 9: the aggregated module A is a small chain."""
        cps = cascaded_pand_system()
        from repro.dft import DynamicFaultTree

        subtree = DynamicFaultTree("A")
        for name in ("A1", "A2", "A3", "A4", "A"):
            subtree.add(cps.element(name))
        subtree.set_top("A")
        community = convert(subtree)
        models = [m.model for m in community.members if m.kind != "monitor"]
        final, _stats = compositional_aggregate(models, keep_visible=["fail_A"])
        assert final.num_states == 6

    def test_diftree_cannot_modularise_the_cps(self):
        modules = DiftreeAnalyzer(cascaded_pand_system()).modules
        assert len(modules) == 1 and modules[0].dynamic


class TestNondeterminism:
    """E4: FDEP-triggered simultaneity (Section 4.4, Figure 6a)."""

    def test_bounds_reported(self):
        report = detect_nondeterminism(pand_race_system(), time=1.0)
        assert report.nondeterministic
        assert 0.0 < report.bounds[0] < report.bounds[1] < 1.0

    def test_deterministic_baseline_lies_within_bounds(self):
        report = detect_nondeterminism(pand_race_system(), time=1.0)
        from repro.baselines import monolithic_unreliability

        value = monolithic_unreliability(pand_race_system(), 1.0)
        assert report.bounds[0] - 1e-9 <= value <= report.bounds[1] + 1e-9


class TestRepairableSystem:
    """E8: the repairable AND of Figures 13-15 (unavailability)."""

    def test_final_model_is_the_small_birth_death_chain(self):
        analyzer = CompositionalAnalyzer(repairable_and_system())
        ctmc = ctmc_from_ioimc(analyzer.final_ioimc)
        assert ctmc.num_states <= 5

    def test_steady_state_unavailability_closed_form(self):
        value = unavailability(repairable_and_system(failure_rate=1.0, repair_rate=2.0))
        assert value == pytest.approx((1.0 / 3.0) ** 2, abs=1e-9)

    def test_transient_unavailability_below_steady_state_bound(self):
        analyzer = CompositionalAnalyzer(repairable_and_system())
        limit = analyzer.unavailability()
        assert analyzer.unavailability(time=0.2) < limit
