"""The PR's acceptance check: a 50-sample rate sweep on the CPS is >= 5x
faster than 50 independent full-pipeline evaluations, with equal results.

The sweep engine runs conversion + aggregation once and re-instantiates only
the CTMC generator per sample; the naive path re-runs the whole pipeline per
sample.  The same numbers are recorded per PR in BENCH_fig2.json (section
``sweep``) by ``benchmarks/smoke_fig2.py``.
"""

import time

import pytest

from repro import RateSweep, SweepStudy, Unreliability, evaluate
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.systems import cascaded_pand_system

NUM_SAMPLES = 50
MISSION_TIME = 1.0
#: The ISSUE's acceptance floor.  Measured ~10-40x on development machines;
#: the margin absorbs CPU steal on shared CI runners.
REQUIRED_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def parametric_cps():
    events = {f"{module}{i}": "lam" for module in ("A", "C", "D") for i in range(1, 5)}
    return with_rate_parameters(cascaded_pand_system(), events)


def test_cps_sweep_is_5x_faster_and_equal(parametric_cps):
    samples = [{"lam": 0.1 + 0.04 * index} for index in range(NUM_SAMPLES)]
    query = Unreliability([MISSION_TIME])

    start = time.perf_counter()
    result = SweepStudy(parametric_cps).run(RateSweep(query, samples))
    sweep_seconds = time.perf_counter() - start
    assert result.num_failed == 0
    assert len(result.rows) == NUM_SAMPLES

    start = time.perf_counter()
    references = [
        evaluate(substitute_parameters(parametric_cps, sample), query)
        for sample in samples
    ]
    naive_seconds = time.perf_counter() - start

    worst = max(
        abs(row["unreliability"].values[0] - reference["unreliability"].values[0])
        for row, reference in zip(result.rows, references)
    )
    assert worst <= 1e-9

    speedup = naive_seconds / sweep_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"rate sweep is only {speedup:.1f}x faster than {NUM_SAMPLES} naive "
        f"evaluations ({sweep_seconds:.3f}s vs {naive_seconds:.3f}s)"
    )
