"""The PR's acceptance check: a 50-sample rate sweep on the CPS beats 50
independent full-pipeline evaluations by a wide margin, with equal results.

The sweep engine runs conversion + aggregation once and, via the
shared-structure kernel, refills one preallocated CSR pattern per sample; the
naive path re-runs the whole pipeline per sample.  Two ratios are pinned:

* sweep vs naive — the end-to-end acceptance number (measured ~30x; the PR 4
  per-sample-instantiation engine managed ~12x, so the floor below also
  catches a regression to that path);
* kernel vs legacy per-sample cost — the shared-structure refill must beat a
  full CTMC instantiation per sample by >= 1.5x (measured ~4-7x).

The same numbers are recorded per PR in BENCH_fig2.json (section ``sweep``)
by ``benchmarks/smoke_fig2.py``, where CI gates the end-to-end ratio at 20x.
"""

import time

import pytest

from repro import RateSweep, SweepStudy, Unreliability, evaluate
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.systems import cascaded_pand_system

NUM_SAMPLES = 50
MISSION_TIME = 1.0
#: The ISSUE's acceptance floor is 20x (gated in the CI smoke benchmark);
#: this in-suite floor keeps margin for CPU steal on shared CI runners while
#: still tripping on a regression to the ~12x PR 4 engine.
REQUIRED_SPEEDUP = 15.0
#: Shared-structure refills vs per-sample CTMC instantiation.
REQUIRED_STRUCTURE_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def parametric_cps():
    events = {f"{module}{i}": "lam" for module in ("A", "C", "D") for i in range(1, 5)}
    return with_rate_parameters(cascaded_pand_system(), events)


@pytest.fixture(scope="module")
def samples():
    return [{"lam": 0.1 + 0.04 * index} for index in range(NUM_SAMPLES)]


def test_cps_sweep_is_20x_faster_and_equal(parametric_cps, samples):
    query = Unreliability([MISSION_TIME])

    start = time.perf_counter()
    result = SweepStudy(parametric_cps).run(RateSweep(query, samples))
    sweep_seconds = time.perf_counter() - start
    assert result.num_failed == 0
    assert len(result.rows) == NUM_SAMPLES

    start = time.perf_counter()
    references = [
        evaluate(substitute_parameters(parametric_cps, sample), query)
        for sample in samples
    ]
    naive_seconds = time.perf_counter() - start

    worst = max(
        abs(row["unreliability"].values[0] - reference["unreliability"].values[0])
        for row, reference in zip(result.rows, references)
    )
    assert worst <= 1e-9

    speedup = naive_seconds / sweep_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"rate sweep is only {speedup:.1f}x faster than {NUM_SAMPLES} naive "
        f"evaluations ({sweep_seconds:.3f}s vs {naive_seconds:.3f}s)"
    )


def test_kernel_beats_per_sample_instantiation(parametric_cps, samples):
    """The shared-structure path must stay >= 1.5x over the PR 4 path."""
    query = Unreliability([MISSION_TIME])
    study = SweepStudy(parametric_cps)
    study.skeleton  # pay the shared pipeline outside both measurements

    def best_of(fn, repeats=3):
        best = None
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        return result, best

    kernel_result, kernel_seconds = best_of(
        lambda: study.run(RateSweep(query, samples))
    )
    legacy_result, legacy_seconds = best_of(
        lambda: study.run(RateSweep(query, samples), use_kernel=False)
    )
    worst = max(
        abs(mine["unreliability"].values[0] - theirs["unreliability"].values[0])
        for mine, theirs in zip(kernel_result.rows, legacy_result.rows)
    )
    assert worst <= 1e-9

    structure_speedup = legacy_seconds / kernel_seconds
    assert structure_speedup >= REQUIRED_STRUCTURE_SPEEDUP, (
        f"shared-structure kernel is only {structure_speedup:.2f}x faster than "
        f"per-sample instantiation ({kernel_seconds:.3f}s vs {legacy_seconds:.3f}s)"
    )
