"""Cross-validation: compositional pipeline vs. independent baselines.

The compositional I/O-IMC pipeline and the monolithic DIFTree-style generator
are two completely independent implementations of the DFT semantics (they do
not share any semantic code).  Agreement of their numerical results on a wide
range of trees is therefore strong evidence for the correctness of both.
"""

import pytest

from repro import AnalysisOptions, CompositionalAnalyzer, unreliability
from repro.baselines import DiftreeAnalyzer, monolithic_unreliability
from repro.dft import FaultTreeBuilder, galileo
from repro.ioimc import AggregationOptions
from repro.systems import (
    and_spare_system,
    cardiac_assist_system,
    fdep_cascade_family,
    fdep_gate_trigger_system,
    mutually_exclusive_switch,
    nested_spare_system,
    spare_chain_family,
)

MISSION_TIMES = (0.3, 1.0, 2.5)


def tree_catalogue():
    """A catalogue of deterministic trees covering every element type."""
    trees = []

    builder = FaultTreeBuilder("static-mixed")
    builder.basic_events(["A", "B", "C", "D", "E"], failure_rate=0.8)
    builder.or_gate("O1", ["A", "B"])
    builder.voting_gate("V1", ["C", "D", "E"], threshold=2)
    builder.and_gate("Top", ["O1", "V1"])
    trees.append(builder.build("Top"))

    builder = FaultTreeBuilder("pand-over-modules")
    builder.basic_events(["A1", "A2", "B1", "B2"], failure_rate=1.0)
    builder.and_gate("MA", ["A1", "A2"])
    builder.and_gate("MB", ["B1", "B2"])
    builder.pand_gate("Top", ["MA", "MB"])
    trees.append(builder.build("Top"))

    builder = FaultTreeBuilder("warm-spare-pool")
    builder.basic_event("P1", 1.0)
    builder.basic_event("P2", 0.5)
    builder.basic_event("S", 0.8, dormancy=0.3)
    builder.spare_gate("G1", primary="P1", spares=["S"])
    builder.spare_gate("G2", primary="P2", spares=["S"])
    builder.and_gate("Top", ["G1", "G2"])
    trees.append(builder.build("Top"))

    builder = FaultTreeBuilder("fdep-into-spare")
    builder.basic_event("T", 0.4)
    builder.basic_event("P", 1.0)
    builder.basic_event("S", 1.0, dormancy=0.0)
    builder.spare_gate("G", primary="P", spares=["S"])
    builder.fdep("F", trigger="T", dependents=["P"])
    builder.or_gate("Top", ["G"])
    trees.append(builder.build("Top"))

    builder = FaultTreeBuilder("seq-chain")
    builder.basic_events(["A", "B", "C"], failure_rate=1.5)
    builder.seq_gate("Top", ["A", "B", "C"])
    trees.append(builder.build("Top"))

    trees.append(and_spare_system(spare_dormancy=0.5))
    trees.append(nested_spare_system())
    trees.append(fdep_gate_trigger_system())
    trees.append(mutually_exclusive_switch())
    trees.append(spare_chain_family(num_subsystems=2, num_shared_spares=2))
    trees.append(fdep_cascade_family(depth=3))
    trees.append(cardiac_assist_system())
    return trees


@pytest.mark.parametrize("tree", tree_catalogue(), ids=lambda tree: tree.name)
class TestCompositionalVsMonolithic:
    def test_agreement_across_mission_times(self, tree):
        analyzer = CompositionalAnalyzer(tree)
        for time in MISSION_TIMES:
            compositional = analyzer.unreliability_bounds(time)
            reference = monolithic_unreliability(tree, time)
            assert compositional[0] == pytest.approx(compositional[1], abs=1e-9), tree.name
            assert compositional[0] == pytest.approx(reference, abs=1e-7), tree.name


@pytest.mark.parametrize(
    "tree",
    [t for t in tree_catalogue() if not t.is_repairable],
    ids=lambda tree: tree.name,
)
class TestAggregationStrengthEquivalence:
    def test_weak_and_strong_aggregation_agree(self, tree):
        """Weak aggregation (the paper's choice) collapses the confluent
        interleaving diamonds created by hiding; strong aggregation may leave
        such spurious choices behind, in which case the resulting CTMDP bounds
        must still pin down exactly the weak value."""
        weak = unreliability(tree, 1.0, AnalysisOptions())
        strong_options = AnalysisOptions(aggregation=AggregationOptions(method="strong"))
        strong_analyzer = CompositionalAnalyzer(tree, strong_options)
        low, high = strong_analyzer.unreliability_bounds(1.0)
        assert low == pytest.approx(weak, abs=1e-7)
        assert high == pytest.approx(weak, abs=1e-7)


class TestDiftreeAgreement:
    @pytest.mark.parametrize("time", MISSION_TIMES)
    def test_cas(self, time):
        cas = cardiac_assist_system()
        compositional = CompositionalAnalyzer(cas).unreliability(time)
        modular = DiftreeAnalyzer(cas).unreliability(time)
        assert compositional == pytest.approx(modular, abs=1e-9)


class TestGalileoRoundTripAnalysis:
    def test_parsed_tree_gives_same_result(self):
        original = cardiac_assist_system()
        parsed = galileo.parse(galileo.write(original))
        assert CompositionalAnalyzer(parsed).unreliability(1.0) == pytest.approx(
            CompositionalAnalyzer(original).unreliability(1.0), abs=1e-12
        )
