"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.dft import galileo
from repro.systems import (
    cardiac_assist_system,
    pand_race_system,
    random_corpus,
    repairable_and_system,
)


@pytest.fixture
def cas_file(tmp_path):
    path = tmp_path / "cas.dft"
    galileo.write_file(cardiac_assist_system(), str(path))
    return str(path)


@pytest.fixture
def repairable_file(tmp_path):
    path = tmp_path / "repairable.dft"
    galileo.write_file(repairable_and_system(), str(path))
    return str(path)


@pytest.fixture
def nondeterministic_file(tmp_path):
    path = tmp_path / "race.dft"
    galileo.write_file(pand_race_system(), str(path))
    return str(path)


class TestAnalyzeCommand:
    def test_reports_unreliability(self, cas_file, capsys):
        assert main(["analyze", cas_file, "--time", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "Unreliability(t=1) = 0.657900" in output
        assert "Aggregation" in output

    def test_multiple_times_and_mttf(self, cas_file, capsys):
        assert main(["analyze", cas_file, "--time", "0.5", "2.0", "--mttf"]) == 0
        output = capsys.readouterr().out
        assert "t=0.5" in output and "t=2" in output
        assert "Mean time to failure" in output

    def test_unavailability_flag(self, repairable_file, capsys):
        assert main(["analyze", repairable_file, "--unavailability"]) == 0
        output = capsys.readouterr().out
        assert "unavailability = 0.111111" in output

    def test_nondeterministic_tree_reports_bounds(self, nondeterministic_file, capsys):
        assert main(["analyze", nondeterministic_file]) == 0
        output = capsys.readouterr().out
        assert "in [" in output

    def test_unsupported_measure_still_prints_the_others(self, nondeterministic_file, capsys):
        """--mttf on a non-deterministic tree: bounds printed, then exit 2."""
        assert main(["analyze", nondeterministic_file, "--mttf"]) == 2
        captured = capsys.readouterr()
        assert "in [" in captured.out
        assert "non-deterministic" in captured.out  # per-measure error line
        assert "error:" in captured.err

    def test_ordering_and_aggregation_options(self, cas_file, capsys):
        assert main(
            ["analyze", cas_file, "--ordering", "smallest", "--aggregation", "strong"]
        ) == 0
        assert "Unreliability" in capsys.readouterr().out

    def test_minimiser_choice_preserves_result(self, cas_file, capsys):
        """The signature reference engine yields the exact same report."""
        assert main(["analyze", cas_file, "--time", "1.0"]) == 0
        default_output = capsys.readouterr().out
        assert (
            main(["analyze", cas_file, "--time", "1.0", "--minimiser", "signature"])
            == 0
        )
        reference_output = capsys.readouterr().out
        assert "Unreliability(t=1) = 0.657900" in reference_output
        assert default_output == reference_output

    def test_missing_file_is_an_error(self, capsys):
        assert main(["analyze", "/does/not/exist.dft"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "broken.dft"
        path.write_text('toplevel "X";\n"X" unknown_gate "A";\n')
        assert main(["analyze", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestAnalyzeJson:
    def test_json_output_schema_golden(self, cas_file, capsys):
        """Golden test for the ``--json`` schema (repro.study/1)."""
        assert main(["analyze", cas_file, "--time", "0.5", "1.0", "--mttf", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "schema",
            "tree",
            "options",
            "model",
            "measures",
            "statistics",
            "timings",
        }
        assert payload["schema"] == "repro.study/1"
        assert set(payload["tree"]) == {"name", "summary"}
        assert set(payload["options"]) == {
            "ordering",
            "aggregation",
            "minimiser",
            "fuse",
            "tolerance",
            "aggregation_processes",
            "minimisation_processes",
        }
        assert payload["options"]["minimiser"] == "closure"
        assert set(payload["model"]) == {
            "kind",
            "states",
            "nondeterministic",
            "final_ioimc_states",
            "final_ioimc_transitions",
            "community_size",
        }
        assert payload["model"]["kind"] == "ctmc"
        assert payload["model"]["nondeterministic"] is False
        unreliability, mttf = payload["measures"]
        assert unreliability["kind"] == "unreliability"
        assert unreliability["times"] == [0.5, 1.0]
        assert unreliability["values"][1] == pytest.approx(0.657900, abs=1e-6)
        assert mttf["kind"] == "mttf"
        assert len(mttf["values"]) == 1
        stats = payload["statistics"]
        assert {"num_steps", "peak_product_states", "final_states", "steps"} <= set(stats)
        assert len(stats["steps"]) == stats["num_steps"]
        assert {"conversion", "aggregation", "markov", "evaluation", "total"} == set(
            payload["timings"]
        )

    def test_json_bounds_for_nondeterministic_tree(self, nondeterministic_file, capsys):
        assert main(["analyze", nondeterministic_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"]["kind"] == "ctmdp"
        measure = payload["measures"][0]
        assert measure["kind"] == "unreliability_bounds"
        assert measure["lower"][0] < measure["upper"][0]

    def test_bounds_flag_on_deterministic_tree(self, cas_file, capsys):
        assert main(["analyze", cas_file, "--bounds", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        measure = payload["measures"][0]
        assert measure["kind"] == "unreliability_bounds"
        assert measure["lower"][0] == pytest.approx(measure["upper"][0])


class TestBatchCommand:
    @pytest.fixture
    def corpus_dir(self, tmp_path):
        for index, tree in enumerate(random_corpus(3, num_basic_events=4, seed=11)):
            galileo.write_file(tree, str(tmp_path / f"tree{index}.dft"))
        return tmp_path

    def test_batch_glob_rows_and_aggregate(self, corpus_dir, capsys):
        assert main(["batch", str(corpus_dir / "*.dft"), "--time", "1.0"]) == 0
        output = capsys.readouterr().out
        assert output.count("Unreliability(t=1)") == 3
        assert "3 trees analysed (0 failed)" in output

    def test_batch_explicit_paths_and_processes(self, corpus_dir, capsys):
        paths = sorted(str(p) for p in corpus_dir.glob("*.dft"))
        assert main(["batch", *paths, "--processes", "2"]) == 0
        assert "2 processes" in capsys.readouterr().out

    def test_batch_json_schema(self, corpus_dir, capsys):
        assert main(["batch", str(corpus_dir / "*.dft"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.batch/1"
        assert payload["aggregate"]["trees"] == 3
        assert all(row["ok"] for row in payload["rows"])
        # batch rows keep statistics compact (no per-step records).
        assert "steps" not in payload["rows"][0]["result"]["statistics"]

    def test_batch_reports_failures_with_exit_code(self, corpus_dir, capsys):
        (corpus_dir / "broken.dft").write_text('toplevel "X";\n"X" unknown_gate "A";\n')
        assert main(["batch", str(corpus_dir / "*.dft")]) == 1
        output = capsys.readouterr().out
        assert "FAILED" in output
        assert "1 failed" in output

    def test_batch_no_match_is_an_error(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nothing-*.dft")]) == 2
        assert "matched no files" in capsys.readouterr().err

    def test_batch_partially_unmatched_glob_is_an_error(self, corpus_dir, capsys):
        """A typo'd pattern must not silently shrink the corpus."""
        assert main(["batch", str(corpus_dir / "*.dft"), str(corpus_dir / "*.dtf")]) == 2
        assert "matched no files" in capsys.readouterr().err

    def test_batch_prints_every_requested_measure(self, corpus_dir, capsys):
        assert main(["batch", str(corpus_dir / "*.dft"), "--mttf"]) == 0
        output = capsys.readouterr().out
        assert output.count("Mean time to failure") == 3

    def test_batch_mixes_nondeterministic_trees(self, corpus_dir, capsys):
        galileo.write_file(pand_race_system(), str(corpus_dir / "race.dft"))
        assert main(["batch", str(corpus_dir / "*.dft")]) == 0
        assert "in [" in capsys.readouterr().out

    def test_batch_measure_failures_are_visible_and_nonzero(self, corpus_dir, capsys):
        """An unsupported measure keeps the row but fails the exit code."""
        galileo.write_file(pand_race_system(), str(corpus_dir / "race.dft"))
        assert main(["batch", str(corpus_dir / "*.dft"), "--mttf"]) == 1
        captured = capsys.readouterr()
        assert "in [" in captured.out  # bounds still printed for the race tree
        assert "0 failed" in captured.out  # no row-level failures
        assert "could not be evaluated" in captured.err


class TestEntryPoint:
    def test_module_invocation_roundtrips_version(self):
        """``python -m repro --version`` must work as a real subprocess."""
        repo_src = str(Path(__file__).resolve().parent.parent / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": repo_src},
        )
        assert completed.returncode == 0
        assert completed.stdout.strip().startswith("repro ")

    def test_console_script_target_resolves(self):
        """The pyproject ``repro`` console script points at repro.cli:main."""
        import repro.cli

        assert callable(repro.cli.main)


class TestOtherCommands:
    def test_baseline(self, cas_file, capsys):
        assert main(["baseline", cas_file]) == 0
        output = capsys.readouterr().out
        assert "DIFTree unreliability" in output
        assert "0.657900" in output

    def test_modules(self, cas_file, capsys):
        assert main(["modules", cas_file]) == 0
        output = capsys.readouterr().out
        assert "Independent modules" in output
        assert "CPU_unit" in output
        assert "detaches" in output

    def test_community(self, cas_file, capsys):
        assert main(["community", cas_file]) == 0
        output = capsys.readouterr().out
        assert "monitor" in output
        assert "community of 23 I/O-IMC" in output

    def test_dot_to_stdout(self, cas_file, capsys):
        assert main(["dot", cas_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_final_model_to_file(self, cas_file, tmp_path, capsys):
        output_path = tmp_path / "final.dot"
        assert main(["dot", cas_file, "--final-model", "-o", str(output_path)]) == 0
        assert output_path.read_text().startswith("digraph")

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestSweepCommand:
    @pytest.fixture
    def parametric_file(self, tmp_path):
        path = tmp_path / "parametric.dft"
        path.write_text(
            'toplevel "sys";\n'
            "param lam = 0.5;\n"
            '"sys" and "A" "B";\n'
            '"A" lambda=lam;\n'
            '"B" lambda=1.0;\n'
        )
        return str(path)

    def test_sweep_over_declared_parameter(self, parametric_file, capsys):
        assert main(["sweep", parametric_file, "--param", "lam=0.1:1.0:5"]) == 0
        output = capsys.readouterr().out
        assert output.count("Unreliability(t=1)") == 5
        assert "5 samples over lam" in output
        assert "shared pipeline" in output

    def test_sweep_axis_comma_list_and_grid(self, parametric_file, capsys):
        assert (
            main(
                [
                    "sweep",
                    parametric_file,
                    "--param",
                    "lam=0.5,1.0",
                    "--param",
                    "B=0.5,1.0",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert output.count("Unreliability(t=1)") == 4  # 2x2 grid

    def test_sweep_attaches_parameters_to_basic_events(self, parametric_file, capsys):
        """An axis naming a basic event sweeps that event's failure rate."""
        assert main(["sweep", parametric_file, "--param", "B=0.5,2.0"]) == 0
        output = capsys.readouterr().out
        assert "[B=0.5]" in output and "[B=2]" in output

    def test_sweep_json_schema(self, parametric_file, capsys):
        assert (
            main(["sweep", parametric_file, "--param", "lam=0.25,0.75", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.sweep/3"
        assert payload["parameters"] == ["lam"]
        assert payload["aggregate"] == {"samples": 2, "failed": 0, "processes": 1}
        assert [row["sample"]["lam"] for row in payload["rows"]] == [0.25, 0.75]

    def test_sweep_parallel_json_is_bit_identical_to_serial(
        self, parametric_file, capsys
    ):
        def run(extra):
            assert (
                main(
                    ["sweep", parametric_file, "--param", "lam=0.1:2.0:6", "--json"]
                    + extra
                )
                == 0
            )
            payload = json.loads(capsys.readouterr().out)
            payload.pop("timings")
            payload["aggregate"].pop("processes")
            for row in payload["rows"]:
                row.pop("wall_seconds")
                row.pop("instantiate_seconds", None)
                row.pop("solve_seconds", None)
            return payload

        serial = run([])
        parallel = run(["--processes", "2", "--chunk-size", "2"])
        assert parallel == serial

    def test_sweep_results_match_analyze(self, parametric_file, capsys):
        assert main(["sweep", parametric_file, "--param", "lam=0.5", "--json"]) == 0
        swept = json.loads(capsys.readouterr().out)
        assert main(["analyze", parametric_file, "--json"]) == 0
        analysed = json.loads(capsys.readouterr().out)
        sweep_value = swept["rows"][0]["measures"][0]["values"][0]
        analyze_value = analysed["measures"][0]["values"][0]
        assert sweep_value == pytest.approx(analyze_value, abs=1e-9)

    def test_unknown_axis_is_a_clean_error(self, parametric_file, capsys):
        assert main(["sweep", parametric_file, "--param", "nu=1.0"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nu" in err

    def test_malformed_axis_is_a_clean_error(self, parametric_file, capsys):
        assert main(["sweep", parametric_file, "--param", "lam"]) == 2
        assert "cannot parse sweep axis" in capsys.readouterr().err

    def test_non_positive_sample_is_a_clean_error(self, parametric_file, capsys):
        assert main(["sweep", parametric_file, "--param", "lam=-1.0"]) == 2
        assert "positive finite" in capsys.readouterr().err

    def test_nondeterministic_tree_sweeps_bounds(self, nondeterministic_file, capsys):
        assert main(["sweep", nondeterministic_file, "--param", "A=0.5,1.5"]) == 0
        assert "in [" in capsys.readouterr().out


class TestGalileoParamErrorsViaCli:
    """Satellite check: parameter parse errors surface as clean CLI messages."""

    def _write(self, tmp_path, text):
        path = tmp_path / "bad.dft"
        path.write_text(text)
        return str(path)

    def test_undefined_parameter(self, tmp_path, capsys):
        path = self._write(tmp_path, 'toplevel "A";\n"A" lambda=lam;\n')
        assert main(["analyze", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "undefined parameter 'lam'" in err

    def test_duplicate_definition(self, tmp_path, capsys):
        path = self._write(
            tmp_path,
            'toplevel "A";\nparam lam = 1;\nparam lam = 2;\n"A" lambda=lam;\n',
        )
        assert main(["analyze", path]) == 2
        assert "declared twice" in capsys.readouterr().err

    def test_non_positive_rate(self, tmp_path, capsys):
        path = self._write(
            tmp_path, 'toplevel "A";\nparam lam = 0;\n"A" lambda=lam;\n'
        )
        assert main(["analyze", path]) == 2
        assert "positive finite rate" in capsys.readouterr().err


class TestBatchStreamingCli:
    @pytest.fixture
    def corpus_dir(self, tmp_path):
        for index, tree in enumerate(random_corpus(3, num_basic_events=4, seed=11)):
            galileo.write_file(tree, str(tmp_path / f"tree{index}.dft"))
        return tmp_path

    def test_output_jsonl_streams_rows(self, corpus_dir, capsys):
        sink = corpus_dir / "rows.jsonl"
        assert (
            main(
                [
                    "batch",
                    str(corpus_dir / "*.dft"),
                    "--output-jsonl",
                    str(sink),
                    "--chunk-size",
                    "2",
                ]
            )
            == 0
        )
        assert "rows streamed to" in capsys.readouterr().out
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [record["kind"] for record in records] == ["row"] * 3 + ["aggregate"]
        assert all(record["schema"] == "repro.batch/2" for record in records)

    def test_output_jsonl_round_trips_to_batch_result(self, corpus_dir, capsys):
        """CLI-level satellite check: the sink equals the in-memory rows."""
        from repro.core.results import read_batch_jsonl

        sink = corpus_dir / "rows.jsonl"
        assert (
            main(["batch", str(corpus_dir / "*.dft"), "--output-jsonl", str(sink)]) == 0
        )
        capsys.readouterr()
        assert main(["batch", str(corpus_dir / "*.dft"), "--json"]) == 0
        in_memory = json.loads(capsys.readouterr().out)
        with open(sink, "r", encoding="utf-8") as handle:
            restored = read_batch_jsonl(handle)

        def normalise(row_dict):
            row_dict = dict(row_dict)
            row_dict.pop("wall_seconds", None)
            row_dict.pop("schema", None)
            row_dict.pop("kind", None)
            if row_dict.get("result"):
                row_dict["result"] = dict(row_dict["result"])
                row_dict["result"].pop("timings", None)
            return row_dict

        assert [normalise(row.to_dict()) for row in restored.rows] == [
            normalise(row) for row in in_memory["rows"]
        ]

    def test_output_jsonl_keeps_error_rows_and_exit_code(self, corpus_dir, capsys):
        (corpus_dir / "broken.dft").write_text("nonsense\n")
        sink = corpus_dir / "rows.jsonl"
        assert (
            main(["batch", str(corpus_dir / "*.dft"), "--output-jsonl", str(sink)]) == 1
        )
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        failed = [r for r in records if r["kind"] == "row" and not r["ok"]]
        assert len(failed) == 1
        assert failed[0]["error"]
        assert records[-1]["failed"] == 1

    def test_json_and_output_jsonl_are_mutually_exclusive(self, corpus_dir, capsys):
        sink = corpus_dir / "rows.jsonl"
        assert (
            main(
                ["batch", str(corpus_dir / "*.dft"), "--json", "--output-jsonl", str(sink)]
            )
            == 2
        )
        assert "mutually exclusive" in capsys.readouterr().err
