"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.dft import galileo
from repro.systems import (
    cardiac_assist_system,
    pand_race_system,
    repairable_and_system,
)


@pytest.fixture
def cas_file(tmp_path):
    path = tmp_path / "cas.dft"
    galileo.write_file(cardiac_assist_system(), str(path))
    return str(path)


@pytest.fixture
def repairable_file(tmp_path):
    path = tmp_path / "repairable.dft"
    galileo.write_file(repairable_and_system(), str(path))
    return str(path)


@pytest.fixture
def nondeterministic_file(tmp_path):
    path = tmp_path / "race.dft"
    galileo.write_file(pand_race_system(), str(path))
    return str(path)


class TestAnalyzeCommand:
    def test_reports_unreliability(self, cas_file, capsys):
        assert main(["analyze", cas_file, "--time", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "Unreliability(t=1) = 0.657900" in output
        assert "Aggregation" in output

    def test_multiple_times_and_mttf(self, cas_file, capsys):
        assert main(["analyze", cas_file, "--time", "0.5", "2.0", "--mttf"]) == 0
        output = capsys.readouterr().out
        assert "t=0.5" in output and "t=2" in output
        assert "Mean time to failure" in output

    def test_unavailability_flag(self, repairable_file, capsys):
        assert main(["analyze", repairable_file, "--unavailability"]) == 0
        output = capsys.readouterr().out
        assert "unavailability = 0.111111" in output

    def test_nondeterministic_tree_reports_bounds(self, nondeterministic_file, capsys):
        assert main(["analyze", nondeterministic_file]) == 0
        output = capsys.readouterr().out
        assert "in [" in output

    def test_ordering_and_aggregation_options(self, cas_file, capsys):
        assert main(
            ["analyze", cas_file, "--ordering", "smallest", "--aggregation", "strong"]
        ) == 0
        assert "Unreliability" in capsys.readouterr().out

    def test_missing_file_is_an_error(self, capsys):
        assert main(["analyze", "/does/not/exist.dft"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_file_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "broken.dft"
        path.write_text('toplevel "X";\n"X" unknown_gate "A";\n')
        assert main(["analyze", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_baseline(self, cas_file, capsys):
        assert main(["baseline", cas_file]) == 0
        output = capsys.readouterr().out
        assert "DIFTree unreliability" in output
        assert "0.657900" in output

    def test_modules(self, cas_file, capsys):
        assert main(["modules", cas_file]) == 0
        output = capsys.readouterr().out
        assert "Independent modules" in output
        assert "CPU_unit" in output
        assert "detaches" in output

    def test_community(self, cas_file, capsys):
        assert main(["community", cas_file]) == 0
        output = capsys.readouterr().out
        assert "monitor" in output
        assert "community of 23 I/O-IMC" in output

    def test_dot_to_stdout(self, cas_file, capsys):
        assert main(["dot", cas_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_final_model_to_file(self, cas_file, tmp_path, capsys):
        output_path = tmp_path / "final.dot"
        assert main(["dot", cas_file, "--final-model", "-o", str(output_path)]) == 0
        assert output_path.read_text().startswith("digraph")

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out
