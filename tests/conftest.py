"""Shared fixtures of the test-suite.

The fixtures provide small, well-understood fault trees and I/O-IMC used by
many test modules.  Analytical ground-truth helpers live in
``tests/analytic.py``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.dft import FaultTreeBuilder
from repro.ioimc import IOIMC, signature

# Hypothesis profiles for the two suite tiers.  Tests that pin their own
# @settings keep them; profile-driven suites (the cross-engine differential
# matrix) draw few examples in tier-1 and many in the CI full-matrix job
# (`HYPOTHESIS_PROFILE=full pytest -m slow`).
settings.register_profile(
    "tier1",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "full",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))


@pytest.fixture
def and_tree():
    """AND of two hot basic events with rates 1 and 2."""
    builder = FaultTreeBuilder("and2")
    builder.basic_event("A", 1.0)
    builder.basic_event("B", 2.0)
    builder.and_gate("Top", ["A", "B"])
    return builder.build("Top")


@pytest.fixture
def or_tree():
    """OR of two hot basic events with rates 1 and 2."""
    builder = FaultTreeBuilder("or2")
    builder.basic_event("A", 1.0)
    builder.basic_event("B", 2.0)
    builder.or_gate("Top", ["A", "B"])
    return builder.build("Top")


@pytest.fixture
def pand_tree():
    """PAND of two hot basic events with rates 1 and 2 (left input first)."""
    builder = FaultTreeBuilder("pand2")
    builder.basic_event("A", 1.0)
    builder.basic_event("B", 2.0)
    builder.pand_gate("Top", ["A", "B"])
    return builder.build("Top")


@pytest.fixture
def cold_spare_tree():
    """Cold spare: primary rate 1, cold spare rate 2."""
    builder = FaultTreeBuilder("csp")
    builder.basic_event("P", 1.0)
    builder.basic_event("S", 2.0, dormancy=0.0)
    builder.spare_gate("Top", primary="P", spares=["S"])
    return builder.build("Top")


@pytest.fixture
def warm_spare_tree():
    """Warm spare: primary rate 1, spare rate 2 with dormancy 0.5."""
    builder = FaultTreeBuilder("wsp")
    builder.basic_event("P", 1.0)
    builder.basic_event("S", 2.0, dormancy=0.5)
    builder.spare_gate("Top", primary="P", spares=["S"])
    return builder.build("Top")


@pytest.fixture
def shared_spare_tree():
    """Two spare gates sharing one cold spare, combined by an AND."""
    builder = FaultTreeBuilder("shared")
    builder.basic_event("PA", 1.0)
    builder.basic_event("PB", 1.0)
    builder.basic_event("PS", 1.0, dormancy=0.0)
    builder.spare_gate("GateA", primary="PA", spares=["PS"])
    builder.spare_gate("GateB", primary="PB", spares=["PS"])
    builder.and_gate("Top", ["GateA", "GateB"])
    return builder.build("Top")


@pytest.fixture
def fdep_tree():
    """AND(A, B) where A is functionally dependent on trigger T."""
    builder = FaultTreeBuilder("fdep")
    builder.basic_event("T", 0.5)
    builder.basic_event("A", 1.0)
    builder.basic_event("B", 1.0)
    builder.and_gate("Top", ["A", "B"])
    builder.fdep("F", trigger="T", dependents=["A"])
    return builder.build("Top")


@pytest.fixture
def repairable_and_tree():
    """AND of two repairable basic events (Figure 15a)."""
    builder = FaultTreeBuilder("repairable")
    builder.basic_event("A", 1.0, repair_rate=2.0)
    builder.basic_event("B", 1.0, repair_rate=2.0)
    builder.and_gate("Top", ["A", "B"])
    return builder.build("Top")


@pytest.fixture
def simple_ioimc_pair():
    """A tiny producer/consumer pair of I/O-IMC communicating over ``a``."""
    producer = IOIMC("producer", signature(outputs=["a"]))
    p0 = producer.add_state(initial=True)
    p1 = producer.add_state()
    p2 = producer.add_state()
    producer.add_markovian(p0, 2.0, p1)
    producer.add_interactive(p1, "a", p2)

    consumer = IOIMC("consumer", signature(inputs=["a"], outputs=["b"]))
    c0 = consumer.add_state(initial=True)
    c1 = consumer.add_state()
    c2 = consumer.add_state(labels=["failed"])
    consumer.add_interactive(c0, "a", c1)
    consumer.add_interactive(c1, "b", c2)
    return producer, consumer
