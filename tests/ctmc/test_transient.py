"""Tests for transient analysis (uniformisation vs. matrix exponential)."""

import math

import numpy as np
import pytest

from repro.ctmc import (
    CTMC,
    PoissonTermCache,
    poisson_terms,
    probability_of_label_curve,
    probability_reach_label,
    transient_distribution,
    transient_distribution_expm,
    transient_distributions,
    unreliability_curve,
)
from repro.errors import AnalysisError


def erlang_chain(stages: int = 3, rate: float = 2.0) -> CTMC:
    chain = CTMC(stages + 1, initial=0)
    for stage in range(stages):
        chain.add_rate(stage, stage + 1, rate)
    chain.set_labels(stages, ["failed"])
    return chain


class TestPoissonTerms:
    def test_terms_sum_to_one(self):
        for rate in (0.1, 1.0, 7.3, 50.0, 400.0):
            terms = poisson_terms(rate, 1e-12)
            assert terms.sum() == pytest.approx(1.0, abs=1e-10)

    def test_zero_rate(self):
        assert poisson_terms(0.0, 1e-12).tolist() == [1.0]

    def test_negative_rate_rejected(self):
        with pytest.raises(AnalysisError):
            poisson_terms(-1.0, 1e-12)

    def test_out_of_range_tolerance_rejected(self):
        with pytest.raises(AnalysisError):
            poisson_terms(1.0, 0.0)
        with pytest.raises(AnalysisError):
            poisson_terms(1.0, 1.0)

    def test_sub_epsilon_tolerance_is_clamped_not_crashing(self):
        terms = poisson_terms(5.0, 1e-300)
        assert terms.sum() == pytest.approx(1.0, abs=1e-12)


class TestPoissonTermsDifferential:
    """The gammaln log-space path vs the per-term ``scipy.stats`` reference."""

    @pytest.mark.parametrize("rate", [1e-6, 1e-3, 0.1, 1.0, 7.3, 50.0, 400.0, 2500.0])
    @pytest.mark.parametrize("tolerance", [1e-6, 1e-12])
    def test_matches_reference_within_1e_minus_12(self, rate, tolerance):
        from repro.ctmc.transient import poisson_terms_reference

        fast = poisson_terms(rate, tolerance)
        reference = poisson_terms_reference(rate, tolerance)
        assert fast.shape == reference.shape  # identical truncation point
        assert np.max(np.abs(fast - reference)) <= 1e-12

    def test_reference_rejects_bad_inputs_like_the_fast_path(self):
        from repro.ctmc.transient import poisson_terms_reference

        with pytest.raises(AnalysisError):
            poisson_terms_reference(-1.0, 1e-12)
        with pytest.raises(AnalysisError):
            poisson_terms_reference(1.0, 0.0)


class TestTransient:
    def test_matches_matrix_exponential(self):
        chain = erlang_chain()
        for t in (0.1, 0.7, 2.0, 5.0):
            uniform = transient_distribution(chain, t)
            dense = transient_distribution_expm(chain, t)
            assert np.allclose(uniform, dense, atol=1e-9)

    def test_time_zero(self):
        chain = erlang_chain()
        distribution = transient_distribution(chain, 0.0)
        assert distribution.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            transient_distribution(erlang_chain(), -1.0)

    def test_distribution_sums_to_one(self):
        chain = erlang_chain(stages=5, rate=0.7)
        distribution = transient_distribution(chain, 3.0)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-12)
        assert (distribution >= 0).all()

    def test_custom_initial_distribution(self):
        chain = erlang_chain()
        start = np.array([0.0, 1.0, 0.0, 0.0])
        distribution = transient_distribution(chain, 0.5, initial_distribution=start)
        assert distribution[0] == pytest.approx(0.0)

    def test_bad_initial_distribution_rejected(self):
        chain = erlang_chain()
        with pytest.raises(AnalysisError):
            transient_distribution(chain, 1.0, initial_distribution=np.array([0.5, 0.5]))
        with pytest.raises(AnalysisError):
            transient_distribution(
                chain, 1.0, initial_distribution=np.array([0.5, 0.1, 0.1, 0.1])
            )

    def test_chain_without_transitions(self):
        chain = CTMC(1)
        distribution = transient_distribution(chain, 10.0)
        assert distribution.tolist() == [1.0]

    def test_erlang_closed_form(self):
        # Erlang(2, rate): P(T <= t) = 1 - e^{-rt}(1 + rt)
        chain = erlang_chain(stages=2, rate=3.0)
        t = 0.8
        probability = transient_distribution(chain, t)[2]
        assert probability == pytest.approx(
            1.0 - math.exp(-3.0 * t) * (1.0 + 3.0 * t), abs=1e-10
        )


class TestReachability:
    def test_reach_equals_occupancy_for_absorbing_goal(self):
        chain = erlang_chain()
        t = 1.3
        assert probability_reach_label(chain, "failed", t) == pytest.approx(
            float(transient_distribution(chain, t)[3]), abs=1e-10
        )

    def test_reach_differs_for_recurrent_goal(self):
        chain = CTMC(2, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 0, 10.0)
        chain.set_labels(1, ["failed"])
        t = 2.0
        occupancy = float(transient_distribution(chain, t)[1])
        visited = probability_reach_label(chain, "failed", t)
        assert visited > occupancy

    def test_reach_without_goal_states(self):
        chain = erlang_chain()
        assert probability_reach_label(chain, "nothing", 1.0) == 0.0

    def test_unreliability_curve_monotone_for_absorbing_failures(self):
        chain = erlang_chain()
        times = [0.0, 0.5, 1.0, 2.0, 4.0]
        curve = unreliability_curve(chain, "failed", times)
        assert list(curve) == sorted(curve)
        assert curve[0] == pytest.approx(0.0)


class TestVectorisedSweep:
    def test_rows_match_per_point_distributions(self):
        chain = erlang_chain()
        times = [0.0, 0.3, 1.0, 2.5, 1.0]  # unsorted, with a duplicate
        rows = transient_distributions(chain, times)
        assert rows.shape == (5, chain.num_states)
        for row, time in zip(rows, times):
            assert row == pytest.approx(transient_distribution(chain, time), abs=1e-12)

    def test_empty_times(self):
        rows = transient_distributions(erlang_chain(), [])
        assert rows.shape == (0, 4)
        assert probability_of_label_curve(erlang_chain(), "failed", []).shape == (0,)

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            transient_distributions(erlang_chain(), [1.0, -0.5])

    def test_curve_without_goal_states_is_zero(self):
        curve = probability_of_label_curve(erlang_chain(), "nothing", [0.5, 1.0])
        assert curve.tolist() == [0.0, 0.0]

    def test_curve_matches_per_point_probability(self):
        chain = erlang_chain(stages=4, rate=1.7)
        times = np.linspace(0.0, 5.0, 37)
        curve = probability_of_label_curve(chain, "failed", times)
        expected = [chain.probability_of_label("failed", float(t)) for t in times]
        assert curve == pytest.approx(expected, abs=1e-12)

    def test_initial_distribution_is_respected(self):
        chain = erlang_chain()
        start = np.array([0.0, 1.0, 0.0, 0.0])
        rows = transient_distributions(chain, [0.7], initial_distribution=start)
        single = transient_distribution(chain, 0.7, initial_distribution=start)
        assert rows[0] == pytest.approx(single, abs=1e-12)

    def test_wildly_skewed_truncation_depths(self):
        """One deep time point must not perturb (or bloat) the shallow ones."""
        chain = erlang_chain(stages=3, rate=2.0)
        times = [0.01, 0.02, 500.0, 0.05]
        rows = transient_distributions(chain, times)
        for row, time in zip(rows, times):
            assert row == pytest.approx(transient_distribution(chain, time), abs=1e-12)

    def test_non_finite_time_rejected_even_without_goal_states(self):
        with pytest.raises(AnalysisError):
            probability_of_label_curve(erlang_chain(), "nothing", [float("nan")])


class TestPoissonTermCache:
    def test_cache_returns_identical_arrays(self):
        cache = PoissonTermCache()
        first = cache.get(3.0, 1e-12)
        second = cache.get(3.0, 1e-12)
        assert first is second
        assert first == pytest.approx(poisson_terms(3.0, 1e-12))

    def test_cache_distinguishes_tolerance(self):
        cache = PoissonTermCache()
        loose = cache.get(5.0, 1e-4)
        tight = cache.get(5.0, 1e-12)
        assert len(loose) < len(tight)

    def test_duplicate_times_share_terms_within_a_sweep(self):
        chain = erlang_chain()
        cache = PoissonTermCache()
        transient_distributions(chain, [1.0, 1.0, 2.0], term_cache=cache)
        assert len(cache._cache) == 2
