"""Tests for transient analysis (uniformisation vs. matrix exponential)."""

import math

import numpy as np
import pytest

from repro.ctmc import (
    CTMC,
    poisson_terms,
    probability_reach_label,
    transient_distribution,
    transient_distribution_expm,
    unreliability_curve,
)
from repro.errors import AnalysisError


def erlang_chain(stages: int = 3, rate: float = 2.0) -> CTMC:
    chain = CTMC(stages + 1, initial=0)
    for stage in range(stages):
        chain.add_rate(stage, stage + 1, rate)
    chain.set_labels(stages, ["failed"])
    return chain


class TestPoissonTerms:
    def test_terms_sum_to_one(self):
        for rate in (0.1, 1.0, 7.3, 50.0, 400.0):
            terms = poisson_terms(rate, 1e-12)
            assert terms.sum() == pytest.approx(1.0, abs=1e-10)

    def test_zero_rate(self):
        assert poisson_terms(0.0, 1e-12).tolist() == [1.0]

    def test_negative_rate_rejected(self):
        with pytest.raises(AnalysisError):
            poisson_terms(-1.0, 1e-12)


class TestTransient:
    def test_matches_matrix_exponential(self):
        chain = erlang_chain()
        for t in (0.1, 0.7, 2.0, 5.0):
            uniform = transient_distribution(chain, t)
            dense = transient_distribution_expm(chain, t)
            assert np.allclose(uniform, dense, atol=1e-9)

    def test_time_zero(self):
        chain = erlang_chain()
        distribution = transient_distribution(chain, 0.0)
        assert distribution.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            transient_distribution(erlang_chain(), -1.0)

    def test_distribution_sums_to_one(self):
        chain = erlang_chain(stages=5, rate=0.7)
        distribution = transient_distribution(chain, 3.0)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-12)
        assert (distribution >= 0).all()

    def test_custom_initial_distribution(self):
        chain = erlang_chain()
        start = np.array([0.0, 1.0, 0.0, 0.0])
        distribution = transient_distribution(chain, 0.5, initial_distribution=start)
        assert distribution[0] == pytest.approx(0.0)

    def test_bad_initial_distribution_rejected(self):
        chain = erlang_chain()
        with pytest.raises(AnalysisError):
            transient_distribution(chain, 1.0, initial_distribution=np.array([0.5, 0.5]))
        with pytest.raises(AnalysisError):
            transient_distribution(
                chain, 1.0, initial_distribution=np.array([0.5, 0.1, 0.1, 0.1])
            )

    def test_chain_without_transitions(self):
        chain = CTMC(1)
        distribution = transient_distribution(chain, 10.0)
        assert distribution.tolist() == [1.0]

    def test_erlang_closed_form(self):
        # Erlang(2, rate): P(T <= t) = 1 - e^{-rt}(1 + rt)
        chain = erlang_chain(stages=2, rate=3.0)
        t = 0.8
        probability = transient_distribution(chain, t)[2]
        assert probability == pytest.approx(
            1.0 - math.exp(-3.0 * t) * (1.0 + 3.0 * t), abs=1e-10
        )


class TestReachability:
    def test_reach_equals_occupancy_for_absorbing_goal(self):
        chain = erlang_chain()
        t = 1.3
        assert probability_reach_label(chain, "failed", t) == pytest.approx(
            float(transient_distribution(chain, t)[3]), abs=1e-10
        )

    def test_reach_differs_for_recurrent_goal(self):
        chain = CTMC(2, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 0, 10.0)
        chain.set_labels(1, ["failed"])
        t = 2.0
        occupancy = float(transient_distribution(chain, t)[1])
        visited = probability_reach_label(chain, "failed", t)
        assert visited > occupancy

    def test_reach_without_goal_states(self):
        chain = erlang_chain()
        assert probability_reach_label(chain, "nothing", 1.0) == 0.0

    def test_unreliability_curve_monotone_for_absorbing_failures(self):
        chain = erlang_chain()
        times = [0.0, 0.5, 1.0, 2.0, 4.0]
        curve = unreliability_curve(chain, "failed", times)
        assert list(curve) == sorted(curve)
        assert curve[0] == pytest.approx(0.0)
