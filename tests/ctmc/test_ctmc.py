"""Tests for the CTMC container and its measures."""

import math

import numpy as np
import pytest

from repro.ctmc import CTMC
from repro.errors import AnalysisError, ModelError


def two_state_chain(rate: float = 2.0) -> CTMC:
    chain = CTMC(2, initial=0)
    chain.add_rate(0, 1, rate)
    chain.set_labels(1, ["failed"])
    return chain


def birth_death(failure: float = 1.0, repair: float = 3.0) -> CTMC:
    chain = CTMC(2, initial=0)
    chain.add_rate(0, 1, failure)
    chain.add_rate(1, 0, repair)
    chain.set_labels(1, ["failed"])
    return chain


class TestConstruction:
    def test_requires_at_least_one_state(self):
        with pytest.raises(ModelError):
            CTMC(0)

    def test_initial_in_range(self):
        with pytest.raises(ModelError):
            CTMC(2, initial=5)

    def test_rates_accumulate(self):
        chain = CTMC(2)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(0, 1, 2.0)
        assert chain.exit_rate(0) == pytest.approx(3.0)

    def test_self_loops_ignored(self):
        chain = CTMC(2)
        chain.add_rate(0, 0, 4.0)
        assert chain.exit_rate(0) == 0.0

    def test_negative_rate_rejected(self):
        chain = CTMC(2)
        with pytest.raises(ModelError):
            chain.add_rate(0, 1, -1.0)

    def test_generator_rows_sum_to_zero(self):
        chain = birth_death()
        generator = chain.generator_matrix().toarray()
        assert np.allclose(generator.sum(axis=1), 0.0)

    def test_uniformized_matrix_is_stochastic(self):
        chain = birth_death()
        matrix, rate = chain.uniformized_matrix()
        assert rate == pytest.approx(3.0)
        assert np.allclose(matrix.toarray().sum(axis=1), 1.0)

    def test_labels_and_queries(self):
        chain = two_state_chain()
        assert chain.states_with_label("failed") == frozenset({1})
        assert chain.is_absorbing(1)
        assert not chain.is_absorbing(0)
        assert chain.max_exit_rate() == pytest.approx(2.0)


class TestMeasures:
    def test_transient_two_state(self):
        chain = two_state_chain(rate=2.0)
        for t in (0.0, 0.3, 1.0, 2.5):
            assert chain.probability_of_label("failed", t) == pytest.approx(
                1.0 - math.exp(-2.0 * t), abs=1e-10
            )

    def test_steady_state_birth_death(self):
        chain = birth_death(failure=1.0, repair=3.0)
        assert chain.steady_state_probability_of_label("failed") == pytest.approx(0.25)

    def test_mean_time_to_failure_single_step(self):
        chain = two_state_chain(rate=2.0)
        assert chain.mean_time_to_label("failed") == pytest.approx(0.5)

    def test_mean_time_to_failure_series(self):
        # Hypoexponential: MTTF = 1/2 + 1/4
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 2.0)
        chain.add_rate(1, 2, 4.0)
        chain.set_labels(2, ["failed"])
        assert chain.mean_time_to_label("failed") == pytest.approx(0.75)

    def test_mttf_zero_when_starting_failed(self):
        chain = two_state_chain()
        chain.set_initial(1)
        assert chain.mean_time_to_label("failed") == 0.0

    def test_mttf_infinite_raises(self):
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 1.0)   # absorbing non-goal state 1
        chain.set_labels(2, ["failed"])
        with pytest.raises(AnalysisError):
            chain.mean_time_to_label("failed")

    def test_mttf_unknown_label(self):
        chain = two_state_chain()
        with pytest.raises(AnalysisError):
            chain.mean_time_to_label("unknown")

    def test_initial_distribution_and_indicator(self):
        chain = two_state_chain()
        assert chain.initial_distribution().tolist() == [1.0, 0.0]
        assert chain.indicator([1]).tolist() == [0.0, 1.0]
