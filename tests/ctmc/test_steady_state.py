"""Tests for steady-state analysis."""

import numpy as np
import pytest

from repro.ctmc import CTMC, bottom_strongly_connected_components, steady_state_distribution
from repro.errors import AnalysisError


class TestBottomComponents:
    def test_single_absorbing_state(self):
        chain = CTMC(2, initial=0)
        chain.add_rate(0, 1, 1.0)
        bottoms = bottom_strongly_connected_components(chain)
        assert bottoms == [[1]]

    def test_recurrent_pair(self):
        chain = CTMC(2, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 0, 2.0)
        bottoms = bottom_strongly_connected_components(chain)
        assert bottoms == [[0, 1]]

    def test_two_terminal_components(self):
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(0, 2, 1.0)
        bottoms = bottom_strongly_connected_components(chain)
        assert sorted(map(tuple, bottoms)) == [(1,), (2,)]


class TestSteadyState:
    def test_birth_death(self):
        chain = CTMC(2, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 0, 4.0)
        pi = steady_state_distribution(chain)
        assert pi[1] == pytest.approx(0.2)
        assert pi.sum() == pytest.approx(1.0)

    def test_three_state_cycle(self):
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 2, 1.0)
        chain.add_rate(2, 0, 1.0)
        pi = steady_state_distribution(chain)
        assert np.allclose(pi, [1 / 3, 1 / 3, 1 / 3])

    def test_cycle_with_different_rates(self):
        chain = CTMC(2, initial=0)
        chain.add_rate(0, 1, 2.0)
        chain.add_rate(1, 0, 1.0)
        pi = steady_state_distribution(chain)
        # Sojourn proportional to 1/rate: pi0 : pi1 = 1/2 : 1
        assert pi[0] == pytest.approx(1 / 3)
        assert pi[1] == pytest.approx(2 / 3)

    def test_absorbing_state_gets_all_mass(self):
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 2, 1.0)
        pi = steady_state_distribution(chain)
        assert pi[2] == pytest.approx(1.0)

    def test_transient_component_excluded(self):
        # State 0 is transient; the recurrent class is {1, 2}.
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(1, 2, 1.0)
        chain.add_rate(2, 1, 1.0)
        pi = steady_state_distribution(chain)
        assert pi[0] == pytest.approx(0.0)
        assert pi[1] + pi[2] == pytest.approx(1.0)

    def test_multiple_reachable_terminal_components_rejected(self):
        chain = CTMC(3, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(0, 2, 1.0)
        with pytest.raises(AnalysisError):
            steady_state_distribution(chain)

    def test_unreachable_second_component_is_fine(self):
        chain = CTMC(4, initial=0)
        chain.add_rate(0, 1, 1.0)
        chain.add_rate(2, 3, 1.0)  # unreachable island
        pi = steady_state_distribution(chain)
        assert pi[1] == pytest.approx(1.0)
