"""Tests for the conversion of closed I/O-IMC into CTMC / CTMDP."""

import math

import pytest

from repro.ctmc import CTMC, CTMDP, ctmc_from_ioimc, ctmdp_from_ioimc, markov_model_from_ioimc
from repro.errors import ModelError, NondeterminismError
from repro.ioimc import IOIMC, signature


def closed_model_with_vanishing_chain() -> IOIMC:
    model = IOIMC("closed", signature(internals=["tau"]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state()
    s3 = model.add_state(labels=["failed"])
    model.add_markovian(s0, 2.0, s1)
    model.add_interactive(s1, "tau", s2)
    model.add_markovian(s2, 3.0, s3)
    return model


def closed_model_with_choice() -> IOIMC:
    model = IOIMC("choice", signature(internals=["tau"]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state(labels=["failed"])
    s3 = model.add_state()
    model.add_markovian(s0, 1.0, s1)
    model.add_interactive(s1, "tau", s2)
    model.add_interactive(s1, "tau", s3)
    return model


class TestCtmcConversion:
    def test_vanishing_states_eliminated(self):
        ctmc = ctmc_from_ioimc(closed_model_with_vanishing_chain())
        assert isinstance(ctmc, CTMC)
        assert ctmc.num_states == 3
        assert ctmc.probability_of_label("failed", 1.0) > 0.0

    def test_open_model_rejected(self):
        model = IOIMC("open", signature(inputs=["a"]))
        model.add_state(initial=True)
        with pytest.raises(ModelError):
            ctmc_from_ioimc(model)
        with pytest.raises(ModelError):
            ctmdp_from_ioimc(model)

    def test_outputs_treated_as_urgent(self):
        model = IOIMC("out", signature(outputs=["boom"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state(labels=["failed"])
        model.add_markovian(s0, 1.0, s1)
        model.add_interactive(s1, "boom", s2)
        ctmc = ctmc_from_ioimc(model)
        assert ctmc.num_states == 2
        assert ctmc.probability_of_label("failed", 1.0) == pytest.approx(
            1.0 - math.exp(-1.0), abs=1e-9
        )

    def test_nondeterminism_detected(self):
        with pytest.raises(NondeterminismError) as excinfo:
            ctmc_from_ioimc(closed_model_with_choice())
        assert excinfo.value.states  # offending states are reported

    def test_divergent_tau_cycle_rejected(self):
        model = IOIMC("diverge", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_interactive(s1, "tau", s1)
        # A tau self-loop is filtered out (not a real move), so this is fine.
        ctmc = ctmc_from_ioimc(model)
        assert ctmc.num_states == 2

        cyclic = IOIMC("cycle", signature(internals=["tau"]))
        c0 = cyclic.add_state(initial=True)
        c1 = cyclic.add_state()
        c2 = cyclic.add_state()
        cyclic.add_markovian(c0, 1.0, c1)
        cyclic.add_interactive(c1, "tau", c2)
        cyclic.add_interactive(c2, "tau", c1)
        with pytest.raises(ModelError):
            ctmc_from_ioimc(cyclic)

    def test_initial_vanishing_state_resolved(self):
        model = IOIMC("vanish-init", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state(labels=["failed"])
        model.add_interactive(s0, "tau", s1)
        model.add_markovian(s1, 5.0, s2)
        ctmc = ctmc_from_ioimc(model)
        assert ctmc.num_states == 2
        assert ctmc.exit_rate(ctmc.initial) == pytest.approx(5.0)


class TestCtmdpConversion:
    def test_choice_states_preserved(self):
        ctmdp = ctmdp_from_ioimc(closed_model_with_choice())
        assert isinstance(ctmdp, CTMDP)
        assert ctmdp.has_nondeterminism
        low, high = ctmdp.reachability_bounds("failed", 10.0)
        assert low == pytest.approx(0.0, abs=1e-9)
        assert high == pytest.approx(1.0 - math.exp(-10.0), abs=1e-6)

    def test_markov_model_dispatch(self):
        assert isinstance(markov_model_from_ioimc(closed_model_with_vanishing_chain()), CTMC)
        assert isinstance(markov_model_from_ioimc(closed_model_with_choice()), CTMDP)

    def test_maximal_progress_in_ctmdp(self):
        model = IOIMC("urgent", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        s2 = model.add_state()
        model.add_interactive(s0, "tau", s1)
        model.add_markovian(s0, 100.0, s2)  # pre-empted by the internal move
        ctmdp = ctmdp_from_ioimc(model)
        assert ctmdp.is_vanishing(0)
        assert ctmdp.exit_rate(0) == 0.0
