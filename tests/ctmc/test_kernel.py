"""Unit and regression tests of the shared-structure uniformisation kernel.

The kernel's contract has two halves:

* **numerics** — refilled matrices and label-probability curves must agree
  with the fully instantiated per-sample path (`CtmcSkeleton.instantiate`
  + :func:`repro.ctmc.transient.probability_of_label_curve`);
* **structure reuse** — after the first sample a sweep performs **zero**
  sparse-structure allocations: the CSR pattern is built exactly once and
  every further sample only rewrites ``data``.  Pinned here with constructor
  counters so the optimisation cannot silently regress.
"""

import numpy as np
import pytest

import repro.ctmc.builders as builders_module
import repro.ctmc.kernel as kernel_module
from repro import RateSweep, SweepStudy, Unreliability
from repro.core.sweep import with_rate_parameters
from repro.ctmc.builders import ctmc_skeleton_from_ioimc
from repro.ctmc.kernel import CsrBuffer, TransientKernel
from repro.ctmc.transient import probability_of_label_curve
from repro.dft import FaultTreeBuilder
from repro.errors import AnalysisError, ModelError
from repro.systems import cascaded_pand_system

TIMES = [0.25, 1.0, 3.0]


def parametric_tree():
    builder = FaultTreeBuilder("kernel-param")
    builder.parameter("lam", 0.5)
    builder.parameter("mu", 2.0)
    builder.basic_event("A", param="lam")
    builder.basic_event("B", failure_rate=1.5)
    builder.basic_event("S", param="mu", dormancy=0.3)
    builder.spare_gate("G", primary="A", spares=["S"])
    builder.and_gate("top", ["G", "B"])
    return builder.build(top="top")


def tree_skeleton(tree):
    study = SweepStudy(tree)
    return study.skeleton, dict(tree.parameters)


ASSIGNMENTS = [
    None,
    {"lam": 0.1, "mu": 0.7},
    {"lam": 2.5, "mu": 0.2},
    {"lam": 0.9, "mu": 4.0},
]


class TestCsrBuffer:
    @pytest.mark.parametrize("dense_limit", [kernel_module.DENSE_STATE_LIMIT, 0])
    @pytest.mark.parametrize("assignment", ASSIGNMENTS)
    def test_refill_matches_uniformized_matrix(self, assignment, dense_limit):
        skeleton, _ = tree_skeleton(parametric_tree())
        buffer = CsrBuffer(skeleton, dense_limit=dense_limit)
        matrix, rate = skeleton.instantiate(assignment, into=buffer)
        reference, ref_rate = skeleton.instantiate(assignment).uniformized_matrix()
        assert rate == ref_rate
        assert np.allclose(matrix.toarray(), reference.toarray(), atol=1e-15)
        if dense_limit == 0:
            assert buffer.dense is None
            assert np.allclose(
                buffer.transposed.toarray().T, reference.toarray(), atol=1e-15
            )
        else:
            assert buffer.transposed is None
            assert np.allclose(buffer.dense, reference.toarray(), atol=1e-15)

    def test_refill_is_in_place(self):
        skeleton, _ = tree_skeleton(parametric_tree())
        buffer = CsrBuffer(skeleton)
        matrix_a, _ = buffer.refill({"lam": 0.3})
        data_id = id(matrix_a.data)
        matrix_b, _ = buffer.refill({"lam": 1.7})
        assert matrix_b is matrix_a
        assert id(matrix_b.data) == data_id
        assert buffer.structure_builds == 1
        assert buffer.refills == 2

    def test_non_positive_rate_raises_and_buffer_stays_usable(self):
        # A negative constant part can drive a linear form non-positive for
        # small parameter values — exactly what the positivity check guards.
        from repro.ioimc.rates import ParametricRate

        from repro.ctmc.builders import CtmcSkeleton

        bad = ParametricRate(-0.5, {"lam": 1.0}, {"lam": 1.0})
        skeleton = CtmcSkeleton(
            num_states=2,
            initial=0,
            labels=(frozenset(), frozenset({"failed"})),
            state_names=(None, None),
            edges=((0, 1, bad),),
        )
        buffer = CsrBuffer(skeleton)
        with pytest.raises(ModelError, match="non-positive"):
            buffer.refill({"lam": 0.2})
        matrix, rate = buffer.refill({"lam": 2.0})
        assert rate == pytest.approx(1.5)
        assert matrix.toarray()[0, 1] == pytest.approx(1.0)

    def test_buffer_rejects_foreign_skeleton(self):
        skeleton_a, _ = tree_skeleton(parametric_tree())
        skeleton_b, _ = tree_skeleton(parametric_tree())
        buffer = CsrBuffer(skeleton_a)
        with pytest.raises(ModelError, match="different skeleton"):
            skeleton_b.instantiate(into=buffer)


class TestDenseLimitResolution:
    """The dense/sparse crossover: argument > environment > module default."""

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(kernel_module.DENSE_LIMIT_ENV, "999")
        assert kernel_module.resolve_dense_limit(4) == 4

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(kernel_module.DENSE_LIMIT_ENV, "17")
        assert kernel_module.resolve_dense_limit() == 17

    def test_module_default(self, monkeypatch):
        monkeypatch.delenv(kernel_module.DENSE_LIMIT_ENV, raising=False)
        assert kernel_module.resolve_dense_limit() == kernel_module.DENSE_STATE_LIMIT

    def test_non_integer_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel_module.DENSE_LIMIT_ENV, "not-a-number")
        with pytest.raises(AnalysisError):
            kernel_module.resolve_dense_limit()

    def test_negative_limit_rejected(self):
        with pytest.raises(AnalysisError):
            kernel_module.resolve_dense_limit(-1)

    def test_kernel_threads_dense_limit_through(self):
        skeleton, declared = tree_skeleton(parametric_tree())
        forced_sparse = TransientKernel(skeleton, dense_limit=0)
        default = TransientKernel(skeleton)
        forced_sparse.load(declared)
        default.load(declared)
        sparse_curve = forced_sparse.probability_of_label_curve("failed", TIMES)
        dense_curve = default.probability_of_label_curve("failed", TIMES)
        assert sparse_curve == pytest.approx(dense_curve, abs=1e-12)


class TestTransientKernel:
    @pytest.mark.parametrize("assignment", ASSIGNMENTS)
    def test_curve_matches_per_sample_instantiation(self, assignment):
        skeleton, declared = tree_skeleton(parametric_tree())
        kernel = TransientKernel(skeleton)
        full = dict(declared)
        full.update(assignment or {})
        kernel.load(full)
        curve = kernel.probability_of_label_curve("failed", TIMES)
        reference = probability_of_label_curve(
            skeleton.instantiate(full), "failed", TIMES
        )
        assert curve == pytest.approx(reference, abs=1e-12)

    def test_sparse_path_curve_matches_dense_path(self):
        events = {f"{m}{i}": "lam" for m in ("A", "C", "D") for i in range(1, 5)}
        tree = with_rate_parameters(cascaded_pand_system(), events)
        skeleton, declared = tree_skeleton(tree)
        dense_kernel = TransientKernel(skeleton)
        sparse_kernel = TransientKernel(skeleton)
        sparse_kernel.buffer = CsrBuffer(skeleton, dense_limit=0)
        assignment = dict(declared)
        assignment["lam"] = 0.8
        dense_kernel.load(assignment)
        sparse_kernel.load(assignment)
        dense_curve = dense_kernel.probability_of_label_curve("failed", TIMES)
        sparse_curve = sparse_kernel.probability_of_label_curve("failed", TIMES)
        assert dense_curve == pytest.approx(sparse_curve, abs=1e-12)

    def test_curve_requires_a_loaded_sample(self):
        skeleton, _ = tree_skeleton(parametric_tree())
        kernel = TransientKernel(skeleton)
        with pytest.raises(AnalysisError, match="no sample loaded"):
            kernel.probability_of_label_curve("failed", TIMES)

    def test_unlabelled_goal_yields_zeros(self):
        skeleton, _ = tree_skeleton(parametric_tree())
        kernel = TransientKernel(skeleton)
        kernel.load()
        assert kernel.probability_of_label_curve("no-such-label", TIMES) == pytest.approx(
            np.zeros(len(TIMES))
        )


class _CountingSparse:
    """Stand-in for the `scipy.sparse` module that counts constructor calls."""

    def __init__(self, real):
        self._real = real
        self.csr_calls = 0

    def csr_matrix(self, *args, **kwargs):
        self.csr_calls += 1
        return self._real.csr_matrix(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._real, name)


class _CountingCTMC:
    calls = 0

    def __init__(self, real):
        self._real = real

    def __call__(self, *args, **kwargs):
        type(self).calls += 1
        return self._real(*args, **kwargs)


class TestStructureReuseRegression:
    """The optimisation's pin: no CSR pattern rebuild after the first sample."""

    def test_sweep_builds_the_sparse_structure_exactly_once(self, monkeypatch):
        counting = _CountingSparse(kernel_module.sparse)
        monkeypatch.setattr(kernel_module, "sparse", counting)
        skeleton, declared = tree_skeleton(parametric_tree())
        kernel = TransientKernel(skeleton)
        built = counting.csr_calls
        assert built >= 1  # the one-off pattern build
        for index in range(10):
            assignment = dict(declared)
            assignment["lam"] = 0.2 + 0.3 * index
            kernel.load(assignment)
            kernel.probability_of_label_curve("failed", TIMES)
        assert counting.csr_calls == built, "a sample rebuilt the CSR pattern"
        assert kernel.structure_builds == 1
        assert kernel.refills == 10
        # The Poisson term cache must not accumulate entries across samples
        # (every sample's uniformisation rate produces fresh cache keys).
        assert len(kernel.term_cache._cache) <= len(TIMES)

    def test_transient_only_sweep_instantiates_no_ctmc(self, monkeypatch):
        counting = _CountingCTMC(builders_module.CTMC)
        _CountingCTMC.calls = 0
        monkeypatch.setattr(builders_module, "CTMC", counting)
        tree = parametric_tree()
        study = SweepStudy(tree)
        result = study.run(
            RateSweep.grid(Unreliability(TIMES), lam=[0.2, 0.5, 1.0, 2.0])
        )
        assert result.num_failed == 0
        assert _CountingCTMC.calls == 0, (
            "a purely transient sweep built a full CTMC per sample instead of "
            "reusing the kernel's shared structure"
        )
