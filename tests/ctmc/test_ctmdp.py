"""Tests for the CTMDP model and time-bounded reachability bounds."""

import math

import pytest

from repro.ctmc import CTMC, CTMDP
from repro.errors import AnalysisError, ModelError


def deterministic_ctmdp(rate: float = 2.0) -> CTMDP:
    model = CTMDP(3, initial=0)
    model.add_rate(0, 1, rate)
    model.set_choices(1, [2])
    model.set_labels(2, ["failed"])
    return model


def racing_ctmdp() -> CTMDP:
    """After an exponential delay a scheduler chooses between a safe and a
    failing branch; the failing branch leads to a goal state."""
    model = CTMDP(4, initial=0)
    model.add_rate(0, 1, 1.0)
    model.set_choices(1, [2, 3])
    model.set_labels(3, ["failed"])
    return model


class TestConstruction:
    def test_choices_and_rates_exclusive(self):
        model = CTMDP(3)
        model.add_rate(0, 1, 1.0)
        with pytest.raises(ModelError):
            model.set_choices(0, [2])
        model.set_choices(1, [2])
        with pytest.raises(ModelError):
            model.add_rate(1, 2, 1.0)

    def test_empty_choice_rejected(self):
        model = CTMDP(2)
        with pytest.raises(ModelError):
            model.set_choices(0, [])

    def test_nondeterminism_flag(self):
        assert not deterministic_ctmdp().has_nondeterminism
        assert racing_ctmdp().has_nondeterminism

    def test_self_loop_rates_ignored(self):
        model = CTMDP(2)
        model.add_rate(0, 0, 5.0)
        assert model.exit_rate(0) == 0.0


class TestReachability:
    def test_deterministic_model_matches_ctmc(self):
        rate = 2.0
        model = deterministic_ctmdp(rate)
        for t in (0.2, 1.0, 3.0):
            expected = 1.0 - math.exp(-rate * t)
            low, high = model.reachability_bounds("failed", t)
            assert low == pytest.approx(expected, abs=1e-6)
            assert high == pytest.approx(expected, abs=1e-6)

    def test_bounds_order(self):
        model = racing_ctmdp()
        low, high = model.reachability_bounds("failed", 1.0)
        assert 0.0 <= low <= high <= 1.0

    def test_racing_bounds_are_extreme(self):
        model = racing_ctmdp()
        t = 1.5
        low, high = model.reachability_bounds("failed", t)
        # The minimising scheduler always avoids the failure, the maximising
        # one always picks it (and then it is just the exponential delay).
        assert low == pytest.approx(0.0, abs=1e-9)
        assert high == pytest.approx(1.0 - math.exp(-t), abs=1e-6)

    def test_goal_at_time_zero(self):
        model = deterministic_ctmdp()
        model.set_labels(0, ["failed"])
        assert model.time_bounded_reachability("failed", 0.0) == pytest.approx(1.0)

    def test_no_goal_states(self):
        model = deterministic_ctmdp()
        assert model.time_bounded_reachability("nothing", 1.0) == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            deterministic_ctmdp().time_bounded_reachability("failed", -1.0)

    def test_vanishing_cycle_yields_zero(self):
        # A cycle of vanishing states that can never reach the goal is benign:
        # the value iteration stabilises at probability zero.
        model = CTMDP(3, initial=0)
        model.set_choices(0, [1])
        model.set_choices(1, [0])
        model.set_labels(2, ["failed"])
        assert model.time_bounded_reachability("failed", 1.0) == 0.0

    def test_initial_vanishing_state(self):
        model = CTMDP(3, initial=0)
        model.set_choices(0, [1, 2])
        model.set_labels(2, ["failed"])
        low, high = model.reachability_bounds("failed", 5.0)
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(1.0)


class TestOptimalScheduler:
    """Per-state argbest extraction for contested vanishing states."""

    def test_racing_max_picks_failing_branch(self):
        scheduler = racing_ctmdp().optimal_scheduler("failed", [1.5], maximize=True)
        assert set(scheduler) == {1}
        successor, agreement = scheduler[1]
        assert successor == 3
        assert agreement == pytest.approx(1.0)

    def test_racing_min_picks_safe_branch(self):
        scheduler = racing_ctmdp().optimal_scheduler("failed", [1.5], maximize=False)
        successor, agreement = scheduler[1]
        assert successor == 2
        assert agreement == pytest.approx(1.0)

    def test_deterministic_model_has_no_contested_states(self):
        assert deterministic_ctmdp().optimal_scheduler("failed", [1.0]) == {}

    def test_no_goal_states_yields_empty_scheduler(self):
        assert racing_ctmdp().optimal_scheduler("nothing", [1.0]) == {}

    def test_three_way_choice(self):
        # choices: 2 safe sink, 3 slow path to failure, 4 immediately failed.
        model = CTMDP(6, initial=0)
        model.add_rate(0, 1, 1.0)
        model.set_choices(1, [2, 3, 4])
        model.add_rate(3, 5, 0.5)
        model.set_labels(4, ["failed"])
        model.set_labels(5, ["failed"])
        top = model.optimal_scheduler("failed", [2.0], maximize=True)
        assert top[1][0] == 4
        bottom = model.optimal_scheduler("failed", [2.0], maximize=False)
        assert bottom[1][0] == 2

    def test_scheduler_is_consistent_with_bounds(self):
        # Pinning the chosen successor as the *only* choice must reproduce
        # the corresponding bound of the nondeterministic model.
        model = racing_ctmdp()
        t = 1.5
        low, high = model.reachability_bounds("failed", t)
        for maximize, expected in ((True, high), (False, low)):
            choice = model.optimal_scheduler("failed", [t], maximize=maximize)[1][0]
            pinned = CTMDP(4, initial=0)
            pinned.add_rate(0, 1, 1.0)
            pinned.set_choices(1, [choice])
            pinned.set_labels(3, ["failed"])
            value = pinned.time_bounded_reachability("failed", t)
            assert value == pytest.approx(expected, abs=1e-9)

    def test_agreement_is_a_fraction(self):
        model = racing_ctmdp()
        scheduler = model.optimal_scheduler("failed", [0.1, 1.0, 5.0])
        for successor, agreement in scheduler.values():
            assert successor in (2, 3)
            assert 0.0 < agreement <= 1.0
