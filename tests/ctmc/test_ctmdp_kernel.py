"""Tests for the shared-structure CTMDP kernel and the bound-path bugfixes.

Covers the three correctness fixes this engine landed with:

* the truncated-tail correction on the ``maximize=False`` branch (the min
  bound used to silently drop the Poisson tail mass),
* the topological vanishing-state resolution (``_resolve_vanishing`` used to
  round-robin all vanishing states for up to ``num_states + 1`` rounds —
  quadratic on long chains),
* the deduplicated exit-rate accumulation shared by
  ``CsrBuffer.max_exit_rate`` and ``refill``.
"""

import math
import time

import numpy as np
import pytest

from repro.core import Study, signals
from repro.core.sweep import with_rate_parameters
from repro.ctmc import CTMC, CTMDP, CsrBuffer, CtmdpKernel, VanishingResolver
from repro.ctmc.builders import ctmdp_skeleton_from_ioimc
from repro.errors import AnalysisError
from repro.systems import (
    mutually_exclusive_switch,
    pand_race_bank,
    pand_race_system,
    shared_spare_race_system,
)

TIMES = (0.25, 0.5, 1.0, 2.0)


def envelope_of(tree):
    """The parametric CTMDP envelope skeleton of a tree's aggregated model."""
    return ctmdp_skeleton_from_ioimc(Study(tree).final_ioimc)


def vanishing_chain(depth: int) -> CTMDP:
    """Tangible initial -> a ``depth``-long chain of vanishing states -> goal."""
    model = CTMDP(depth + 2, initial=0)
    model.add_rate(0, 1, 2.0)
    for state in range(1, depth + 1):
        model.set_choices(state, [state + 1])
    model.set_labels(depth + 1, ["failed"])
    return model


class TestVanishingResolver:
    def test_deep_chain_is_linear(self):
        # The old round-robin fixpoint needed ~depth rounds over all states
        # (quadratic); the topological pass must handle a 1000-deep chain
        # essentially instantly and still produce the exact CTMC answer.
        model = vanishing_chain(1000)
        start = time.perf_counter()
        low, high = model.reachability_bounds_curve("failed", TIMES)
        elapsed = time.perf_counter() - start
        expected = [1.0 - math.exp(-2.0 * t) for t in TIMES]
        assert np.allclose(low, expected, atol=1e-9)
        assert np.allclose(high, expected, atol=1e-9)
        assert elapsed < 2.0

    def test_resolver_direct_max_min(self):
        # State 0 chooses between terminal values 1 and 2.
        resolver = VanishingResolver(3, ((1, 2), (), ()))
        values = np.array([0.0, 0.25, 0.75])
        assert resolver.resolve(values.copy(), maximize=True)[0] == 0.75
        assert resolver.resolve(values.copy(), maximize=False)[0] == 0.25

    def test_companion_follows_selected_choice(self):
        # The gradient companion must be copied from the argmax/argmin target.
        resolver = VanishingResolver(3, ((1, 2), (), ()))
        values = np.array([0.0, 0.25, 0.75])
        companion = np.array([[0.0], [10.0], [20.0]])
        resolver.resolve(values.copy(), maximize=True, companion=companion)
        assert companion[0, 0] == 20.0
        companion = np.array([[0.0], [10.0], [20.0]])
        resolver.resolve(values.copy(), maximize=False, companion=companion)
        assert companion[0, 0] == 10.0

    def test_companion_through_chain(self):
        # Chains of single choices must propagate the companion transitively.
        resolver = VanishingResolver(4, ((1,), (2,), (3,), ()))
        values = np.array([0.0, 0.0, 0.0, 0.5])
        companion = np.array([[0.0], [0.0], [0.0], [7.0]])
        out = resolver.resolve(values, maximize=True, companion=companion)
        assert out[0] == 0.5
        assert companion[0, 0] == 7.0

    def test_cycle_of_equal_values_stabilises(self):
        # A benign cycle (all members converge to the same value) must not
        # raise; the divergence diagnostic is covered in test_ctmdp.py.
        model = CTMDP(3, initial=0)
        model.set_choices(0, [1])
        model.set_choices(1, [0, 2])
        model.set_labels(2, ["failed"])
        low, high = model.reachability_bounds("failed", 1.0)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high == pytest.approx(1.0, abs=1e-12)


class TestMinBoundTailCorrection:
    @pytest.mark.parametrize(
        "tree",
        [pand_race_system(), mutually_exclusive_switch(), shared_spare_race_system()],
        ids=["pand-race", "mutex", "shared-spare"],
    )
    def test_min_bound_within_tolerance_of_finer_truncation(self, tree):
        # Before the fix the maximize=False branch dropped the truncated tail
        # entirely, so a coarse tolerance understated the min bound by far
        # more than the tolerance itself.
        model = ctmdp_skeleton_from_ioimc(Study(tree).final_ioimc).instantiate()
        coarse = model.time_bounded_reachability_curve_reference(
            signals.FAILED_LABEL, TIMES, maximize=False, tolerance=1e-6
        )
        fine = model.time_bounded_reachability_curve_reference(
            signals.FAILED_LABEL, TIMES, maximize=False, tolerance=1e-13
        )
        assert np.max(np.abs(coarse - fine)) <= 1e-6


class TestAccumulateExit:
    def test_scan_and_refill_report_identical_lambda(self):
        skeleton = envelope_of(with_rate_parameters(pand_race_system()))
        buffer = CsrBuffer(skeleton)
        for assignment in (None, {"T": 0.3, "A": 1.7, "B": 0.9}):
            scanned = buffer.max_exit_rate(
                None if assignment is None else dict(assignment)
            )
            _matrix, refilled = buffer.refill(
                None if assignment is None else dict(assignment)
            )
            assert scanned == refilled


class TestCtmdpKernel:
    def test_requires_load(self):
        kernel = envelope_of(pand_race_system()).ctmdp_kernel()
        with pytest.raises(AnalysisError):
            kernel.time_bounded_reachability_curve(signals.FAILED_LABEL, TIMES)

    def test_matches_reference_engine_both_directions(self):
        skeleton = envelope_of(pand_race_bank(2))
        kernel = skeleton.ctmdp_kernel()
        kernel.load()
        model = skeleton.instantiate()
        for maximize in (True, False):
            fast = kernel.time_bounded_reachability_curve(
                signals.FAILED_LABEL, TIMES, maximize=maximize, tolerance=1e-12
            )
            slow = model.time_bounded_reachability_curve_reference(
                signals.FAILED_LABEL, TIMES, maximize=maximize, tolerance=1e-12
            )
            assert np.max(np.abs(fast - slow)) <= 1e-9

    def test_ctmdp_curve_delegates_to_kernel(self):
        # CTMDP.time_bounded_reachability_curve now runs on a kernel snapshot
        # of the instance; it must agree with the reference engine.
        skeleton = envelope_of(pand_race_system())
        model = skeleton.instantiate()
        fast = model.time_bounded_reachability_curve(
            signals.FAILED_LABEL, TIMES, maximize=True
        )
        slow = model.time_bounded_reachability_curve_reference(
            signals.FAILED_LABEL, TIMES, maximize=True
        )
        assert np.max(np.abs(fast - slow)) <= 1e-9

    def test_mutation_invalidates_kernel_snapshot(self):
        model = CTMDP(3, initial=0)
        model.add_rate(0, 1, 1.0)
        model.set_labels(1, ["failed"])
        before = model.time_bounded_reachability_curve("failed", (1.0,))
        model.add_rate(0, 2, 3.0)
        after = model.time_bounded_reachability_curve("failed", (1.0,))
        assert before[0] == pytest.approx(1.0 - math.exp(-1.0), abs=1e-9)
        assert after[0] < before[0]

    def test_deterministic_kernel_matches_ctmc(self):
        rate = 2.0
        skeleton = ctmdp_skeleton_from_ioimc(
            Study(mutually_exclusive_switch()).final_ioimc
        )
        kernel = skeleton.ctmdp_kernel()
        kernel.load()
        lower, upper = kernel.reachability_bounds_curve(
            signals.FAILED_LABEL, TIMES, tolerance=1e-12
        )
        ctmc = Study(mutually_exclusive_switch()).markov_model
        assert isinstance(ctmc, CTMC)
        curve = ctmc.probability_of_label_curve(signals.FAILED_LABEL, TIMES)
        assert np.max(np.abs(lower - curve)) <= 1e-9
        assert np.max(np.abs(upper - curve)) <= 1e-9

    def test_no_goal_label_gives_zero(self):
        kernel = envelope_of(pand_race_system()).ctmdp_kernel()
        kernel.load()
        curve = kernel.time_bounded_reachability_curve("no-such-label", TIMES)
        assert np.all(curve == 0.0)

    def test_empty_times(self):
        kernel = envelope_of(pand_race_system()).ctmdp_kernel()
        kernel.load()
        assert kernel.time_bounded_reachability_curve(signals.FAILED_LABEL, ()).size == 0

    def test_refill_changes_values(self):
        skeleton = envelope_of(with_rate_parameters(pand_race_system()))
        kernel = skeleton.ctmdp_kernel()
        kernel.load({"T": 1.0, "A": 1.0, "B": 1.0})
        slow = kernel.time_bounded_reachability_curve(signals.FAILED_LABEL, TIMES)
        kernel.load({"T": 4.0, "A": 4.0, "B": 4.0})
        fast = kernel.time_bounded_reachability_curve(signals.FAILED_LABEL, TIMES)
        assert np.all(fast >= slow)
        assert fast[0] > slow[0]
        # Reloading the first sample must reproduce its curve bit-identically.
        kernel.load({"T": 1.0, "A": 1.0, "B": 1.0})
        again = kernel.time_bounded_reachability_curve(signals.FAILED_LABEL, TIMES)
        assert np.array_equal(again, slow)
