"""Property-based tests for the CTMC solvers (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ctmc import CTMC, poisson_terms, transient_distribution, transient_distribution_expm
from repro.ctmc.steady_state import steady_state_distribution


@st.composite
def random_ctmc(draw, max_states: int = 6, allow_absorbing: bool = True):
    """A random CTMC with moderately sized rates; state 0 is initial."""
    num_states = draw(st.integers(min_value=2, max_value=max_states))
    chain = CTMC(num_states, initial=0)
    rate_strategy = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
    for source in range(num_states):
        if allow_absorbing and draw(st.booleans()) and source != 0:
            continue  # leave this state absorbing
        targets = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_states - 1),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        for target in targets:
            if target == source:
                continue
            chain.add_rate(source, target, draw(rate_strategy))
    # Label a non-initial state so measures are non-trivial when reachable.
    chain.set_labels(num_states - 1, ["failed"])
    return chain


@st.composite
def random_irreducible_ctmc(draw, max_states: int = 5):
    """A random CTMC whose states form one communicating class (via a ring)."""
    num_states = draw(st.integers(min_value=2, max_value=max_states))
    chain = CTMC(num_states, initial=0)
    rate_strategy = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
    for source in range(num_states):
        chain.add_rate(source, (source + 1) % num_states, draw(rate_strategy))
        extra_target = draw(st.integers(min_value=0, max_value=num_states - 1))
        if extra_target != source:
            chain.add_rate(source, extra_target, draw(rate_strategy))
    return chain


class TestTransientProperties:
    @settings(max_examples=40, deadline=None)
    @given(chain=random_ctmc(), time=st.floats(min_value=0.0, max_value=4.0))
    def test_uniformisation_matches_matrix_exponential(self, chain, time):
        uniform = transient_distribution(chain, time)
        dense = transient_distribution_expm(chain, time)
        assert np.allclose(uniform, dense, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(chain=random_ctmc(), time=st.floats(min_value=0.0, max_value=4.0))
    def test_result_is_a_distribution(self, chain, time):
        distribution = transient_distribution(chain, time)
        assert distribution.sum() == pytest.approx(1.0, abs=1e-9)
        assert (distribution >= -1e-12).all()

    @settings(max_examples=25, deadline=None)
    @given(chain=random_ctmc(allow_absorbing=False), times=st.lists(
        st.floats(min_value=0.0, max_value=3.0), min_size=2, max_size=4))
    def test_chapman_kolmogorov_composition(self, chain, times):
        """pi(t1 + t2) equals propagating pi(t1) for another t2."""
        t1, t2 = sorted(times)[:2]
        direct = transient_distribution(chain, t1 + t2)
        staged = transient_distribution(
            chain, t2, initial_distribution=transient_distribution(chain, t1)
        )
        assert np.allclose(direct, staged, atol=1e-8)


class TestSteadyStateProperties:
    @settings(max_examples=30, deadline=None)
    @given(chain=random_irreducible_ctmc())
    def test_stationarity(self, chain):
        pi = steady_state_distribution(chain)
        generator = chain.generator_matrix().toarray()
        assert np.allclose(pi @ generator, 0.0, atol=1e-9)
        assert pi.sum() == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(chain=random_irreducible_ctmc())
    def test_long_run_transient_converges_to_steady_state(self, chain):
        # The horizon must dominate the chain's mixing time, which is governed
        # by the *slowest* transitions (rates down to 0.1), not the fastest:
        # scaling by max_exit_rate alone was flaky for skewed rate ratios.
        pi = steady_state_distribution(chain)
        horizon = 5000.0 / max(chain.max_exit_rate(), 1e-6)
        late = transient_distribution(chain, horizon)
        assert np.allclose(pi, late, atol=1e-4)


class TestPoissonProperties:
    @settings(max_examples=50, deadline=None)
    @given(rate=st.floats(min_value=0.0, max_value=300.0))
    def test_terms_form_a_distribution_prefix(self, rate):
        terms = poisson_terms(rate, 1e-10)
        assert (terms >= 0.0).all()
        assert 1.0 - terms.sum() <= 1e-9
