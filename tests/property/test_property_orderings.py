"""Property tests: the modular plan and the linked ordering agree.

The satellite claim of the planner refactor: whatever composition order the
engine follows, the final aggregated I/O-IMC is weakly bisimilar — same
quotient sizes and identical top-event CTMC unreliability.  Checked on the
paper's hand-drawn Figure 2 models, the cardiac assist system (Section 5.1),
the cascaded PAND system (Section 5.2) and a hypothesis sweep over the
cascaded-PAND family.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import AnalysisOptions, CompositionalAnalyzer
from repro.core import compositional_aggregate, convert
from repro.ctmc import ctmc_from_ioimc
from repro.ioimc import minimize_weak
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_family,
    cascaded_pand_system,
    figure2_models,
)

MISSION_TIME = 1.0


def _assert_orderings_agree(tree):
    linked = CompositionalAnalyzer(tree, AnalysisOptions(ordering="linked"))
    modular = CompositionalAnalyzer(tree, AnalysisOptions(ordering="modular"))
    # Identical top-event CTMC unreliability...
    assert modular.unreliability(MISSION_TIME) == pytest.approx(
        linked.unreliability(MISSION_TIME), abs=1e-9
    )
    # ... and weak-bisimilar final models: both are already weak-bisimulation
    # quotients, so their sizes coincide and re-minimising does not shrink them.
    final_linked = linked.final_ioimc
    final_modular = modular.final_ioimc
    assert final_modular.num_states == final_linked.num_states
    assert final_modular.num_transitions == final_linked.num_transitions
    assert minimize_weak(final_modular).num_states == final_modular.num_states
    assert minimize_weak(final_linked).num_states == final_linked.num_states


class TestPaperSystems:
    def test_figure2_models_agree_across_orderings(self):
        results = {}
        for ordering in ("linked", "modular"):
            model_a, model_b = figure2_models(rate=1.0)
            final, _stats = compositional_aggregate(
                [model_a, model_b], ordering=ordering, keep_visible=["b"]
            )
            results[ordering] = final
        linked, modular = results["linked"], results["modular"]
        assert modular.num_states == linked.num_states
        assert modular.num_transitions == linked.num_transitions
        assert "b" in modular.signature.outputs

    def test_cas_orderings_agree(self):
        _assert_orderings_agree(cardiac_assist_system())

    def test_cascaded_pand_orderings_agree(self):
        _assert_orderings_agree(cascaded_pand_system())

    def test_cascaded_pand_ctmc_identical(self):
        linked = CompositionalAnalyzer(
            cascaded_pand_system(), AnalysisOptions(ordering="linked")
        )
        modular = CompositionalAnalyzer(
            cascaded_pand_system(), AnalysisOptions(ordering="modular")
        )
        ctmc_linked = ctmc_from_ioimc(linked.final_ioimc)
        ctmc_modular = ctmc_from_ioimc(modular.final_ioimc)
        assert ctmc_modular.num_states == ctmc_linked.num_states


class TestCascadedPandFamily:
    @settings(max_examples=6, deadline=None)
    @given(
        num_modules=st.integers(min_value=2, max_value=3),
        events_per_module=st.integers(min_value=2, max_value=3),
    )
    def test_family_orderings_agree(self, num_modules, events_per_module):
        tree = cascaded_pand_family(num_modules, events_per_module)
        _assert_orderings_agree(tree)

    @settings(max_examples=6, deadline=None)
    @given(
        num_modules=st.integers(min_value=2, max_value=3),
        events_per_module=st.integers(min_value=2, max_value=3),
    )
    def test_family_modular_peak_not_worse(self, num_modules, events_per_module):
        tree = cascaded_pand_family(num_modules, events_per_module)
        linked = CompositionalAnalyzer(tree, AnalysisOptions(ordering="linked"))
        modular = CompositionalAnalyzer(tree, AnalysisOptions(ordering="modular"))
        linked.final_ioimc
        modular.final_ioimc
        assert (
            modular.statistics.peak_product_states
            <= linked.statistics.peak_product_states
        )
