"""Three-engine differential cells: closure vs splitter vs signature.

The closure-then-strong weak engine (PR 8) must be *bit-identical* to the
two older engines, not merely equivalent: every cell below asserts the
engines produce byte-for-byte the same quotient dot rendering (the
partitions are canonicalised by smallest member, so identical partitions
force identical quotients) and measures that agree to ``1e-12``.

The corpus crosses the paper systems (figure 2 at the I/O-IMC level, the
cardiac assist system, the cascaded PAND system, the mutex switch) with
seeded random models whose tau back-edges create the internal cycles the
condensation machinery exists for.

A tracemalloc cell pins the closure engine's failure mode: saturating a
deep tau-chain is inherently quadratic, so the engine must detect the blow
up (saturation cap), fall back to the splitter engine and keep its peak
memory linear in the chain length.
"""

import random
import tracemalloc

import pytest

from repro.core import Study
from repro.core.measures import Unreliability
from repro.core.study import StudyOptions
from repro.ioimc import (
    AggregationOptions,
    IOIMC,
    minimize_weak,
    parallel,
    signature,
)
from repro.ioimc.bisimulation import (
    DEFAULT_RATE_DIGITS,
    _weak_engine,
    _WeakSplitterEngine,
)
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    mutually_exclusive_switch,
)

ENGINES = ("closure", "splitter", "signature")
MISSION_TIMES = (0.5, 1.0)
TOLERANCE = 1e-12

PAPER_SYSTEMS = {
    "cas": cardiac_assist_system,
    "cps": cascaded_pand_system,
    "mutex": mutually_exclusive_switch,
}


def random_tau_cycle_model(seed: int, num_states: int = 14) -> IOIMC:
    """A seeded model whose random tau back-edges form internal cycles."""
    rng = random.Random(seed)
    model = IOIMC(
        f"tau-cycle-{seed}", signature(outputs=("out",), internals=("tau",))
    )
    for _ in range(num_states):
        model.add_state()
    for state in range(num_states - 1):  # backbone: everything reachable
        model.add_interactive(state, "tau", state + 1)
    for _ in range(num_states):  # back-edges close tau cycles
        source, target = rng.randrange(num_states), rng.randrange(num_states)
        if source != target:
            model.add_interactive(source, "tau", target)
    for _ in range(num_states // 2):
        model.add_interactive(
            rng.randrange(num_states), "out", rng.randrange(num_states)
        )
        model.add_markovian(
            rng.randrange(num_states),
            rng.choice([0.5, 1.0, 2.0]),
            rng.randrange(num_states),
        )
    for state in rng.sample(range(num_states), 3):
        model.set_labels(state, {"failed"})
    model.set_initial(0)
    return model


class TestQuotientIdentity:
    """Identical quotient dots across all three engines, per corpus cell."""

    def test_figure2_cell(self):
        composed = parallel(*figure2_models(rate=1.5)).hide(["a"])
        dots = {
            engine: minimize_weak(composed, algorithm=engine).to_dot()
            for engine in ENGINES
        }
        assert dots["closure"] == dots["splitter"] == dots["signature"]

    @pytest.mark.parametrize("system", sorted(PAPER_SYSTEMS))
    def test_paper_system_cell(self, system):
        tree = PAPER_SYSTEMS[system]()
        dots = {}
        measures = {}
        for engine in ENGINES:
            study = Study(
                tree, StudyOptions(aggregation=AggregationOptions(minimiser=engine))
            )
            dots[engine] = study.final_ioimc.to_dot()
            measures[engine] = study.evaluate(
                Unreliability(MISSION_TIMES)
            ).measures[0].values
        assert dots["closure"] == dots["splitter"] == dots["signature"]
        for engine in ("closure", "splitter"):
            assert measures[engine] == pytest.approx(
                measures["signature"], abs=TOLERANCE
            )

    @pytest.mark.parametrize("seed", range(12))
    def test_random_tau_cycle_cell(self, seed):
        model = random_tau_cycle_model(seed)
        dots = {
            engine: minimize_weak(model, algorithm=engine).to_dot()
            for engine in ENGINES
        }
        assert dots["closure"] == dots["splitter"] == dots["signature"]

    @pytest.mark.parametrize("seed", [3, 8])
    @pytest.mark.parametrize("respect_labels", [True, False])
    def test_label_handling_cell(self, seed, respect_labels):
        model = random_tau_cycle_model(seed)
        dots = {
            engine: minimize_weak(
                model, respect_labels=respect_labels, algorithm=engine
            ).to_dot()
            for engine in ENGINES
        }
        assert dots["closure"] == dots["splitter"] == dots["signature"]


def _tau_chain(num_states: int) -> IOIMC:
    model = IOIMC("deep-tau-chain", signature(internals=("tick",)))
    for _ in range(num_states):
        model.add_state()
    for state in range(num_states - 1):
        model.add_interactive(state, "tick", state + 1)
    model.set_labels(num_states - 1, {"failed"})
    model.set_initial(0)
    return model


class TestClosureMemoryOnTauChains:
    """The saturation cap keeps the closure path linear on deep tau-chains."""

    def test_deep_chain_falls_back_to_splitter(self):
        # A 3000-state tau-chain has ~n^2/2 closure entries — over the cap.
        engine = _weak_engine(_tau_chain(3000), True, DEFAULT_RATE_DIGITS, "closure")
        assert isinstance(engine, _WeakSplitterEngine)

    def test_peak_memory_linear_not_quadratic(self):
        # Quadratic closure-matrix memory would quadruple from n to 2n; the
        # cap-bounded build plus the splitter fallback must stay flat-ish.
        peaks = {}
        for num_states in (3000, 6000):
            model = _tau_chain(num_states)
            tracemalloc.start()
            quotient = minimize_weak(model, algorithm="closure")
            _current, peaks[num_states] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            # {pre-failure states, failed}: the quotient itself is tiny.
            assert quotient.num_states == 2
        assert peaks[6000] <= 2.0 * peaks[3000]
