"""Differential property: pruned branch-and-bound == exhaustive enumeration.

The optimiser's claim (`repro.core.optimize`): with monotone-safe choice
placements, the Russian-doll table prescreen and the optimistic-completion
envelope only ever cut subtrees that cannot contain the optimum, and both
modes enumerate leaves in the same order with strict incumbent updates — so
the pruned search returns the *identical* optimal design and value (to
1e-12) as brute force.  Pinned here on seeded random fdep/shared-spare
trees with and without repair choices, and (in the slow suite) on the
seeded CAS/CPS scenarios.
"""

from __future__ import annotations

import random

import pytest

from repro.core.optimize import (
    DesignProblem,
    RepairChoice,
    SpareCountChoice,
    monotonicity_warnings,
    optimize,
)
from repro.dft.builder import FaultTreeBuilder
from repro.systems import cas_spares_scenario, cps_spares_scenario

TOLERANCE = 1e-12


def random_problem(seed: int, with_repair: bool) -> DesignProblem:
    """A small seeded tree with spare pools, an FDEP and optional repair.

    Units hang off an OR top (improvement is monotone everywhere), so the
    pruning bounds are sound by construction; repair choices go on events
    inside a static AND unit, the placement the conversion layer's
    repairable extension supports.
    """
    rng = random.Random(seed)
    builder = FaultTreeBuilder(f"random-opt-{seed}-{int(with_repair)}")
    units = []
    choices = []

    # One spare unit with two candidate spares; sometimes a second gate
    # shares the pool (the Figure 6b shared-spare pattern).
    rate = rng.uniform(0.5, 2.0)
    builder.basic_event("P1", rate)
    builder.basic_event("SP1", rate, dormancy=rng.choice([0.0, 0.5]))
    builder.basic_event("SP2", rate, dormancy=0.0)
    builder.spare_gate("W1", primary="P1", spares=["SP1", "SP2"])
    units.append("W1")
    if rng.random() < 0.5:
        builder.basic_event("P2", rng.uniform(0.5, 2.0))
        builder.spare_gate("W2", primary="P2", spares=["SP1", "SP2"])
        units.append("W2")
        choices.append(
            SpareCountChoice(("W1", "W2"), counts=(1, 2), costs=(0.0, 1.0))
        )
    else:
        choices.append(SpareCountChoice("W1", counts=(1, 2), costs=(0.0, 1.0)))

    # An FDEP-wired pair under an OR (common-cause unit).
    builder.basic_event("T", rng.uniform(0.3, 1.5))
    builder.basic_event("D1", rng.uniform(0.3, 1.5))
    builder.basic_event("D2", rng.uniform(0.3, 1.5))
    builder.fdep("F", trigger="T", dependents=["D1", "D2"])
    builder.and_gate("CC", ["D1", "D2"])
    units.append("CC")

    # A static AND unit carrying the repair choices.
    builder.basic_event("E1", rng.uniform(0.4, 1.2))
    builder.basic_event("E2", rng.uniform(0.4, 1.2))
    builder.and_gate("ST", ["E1", "E2"])
    units.append("ST")
    if with_repair:
        choices.append(
            RepairChoice("E1", rates=(None, rng.uniform(1.0, 3.0)), costs=(0.0, 1.0))
        )
        choices.append(
            RepairChoice(
                "E2",
                rates=(None, rng.uniform(0.5, 1.5), rng.uniform(2.0, 4.0)),
                costs=(0.0, 1.0, 2.0),
            )
        )

    builder.or_gate("sys", units)
    tree = builder.build(top="sys")
    max_cost = sum(max(choice.costs) for choice in choices)
    return DesignProblem(
        tree=tree,
        choices=tuple(choices),
        mission_time=rng.choice([0.5, 1.0]),
        budget=max_cost / 2,
    )


def assert_pruned_equals_exhaustive(problem: DesignProblem) -> None:
    assert monotonicity_warnings(problem) == ()
    pruned = optimize(problem)
    exhaustive = optimize(problem, exhaustive=True)
    assert [c.option_index for c in pruned.best_design] == [
        c.option_index for c in exhaustive.best_design
    ]
    assert abs(pruned.best_value - exhaustive.best_value) <= TOLERANCE
    assert abs(pruned.best_lower - exhaustive.best_lower) <= TOLERANCE
    assert pruned.best_cost == exhaustive.best_cost
    assert pruned.leaves_feasible == exhaustive.leaves_feasible
    assert pruned.leaves_evaluated <= exhaustive.leaves_evaluated
    assert exhaustive.leaves_evaluated == exhaustive.leaves_feasible


class TestRandomTrees:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_without_repair(self, seed):
        assert_pruned_equals_exhaustive(random_problem(seed, with_repair=False))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_with_repair(self, seed):
        assert_pruned_equals_exhaustive(random_problem(seed, with_repair=True))


@pytest.mark.slow
class TestSeededScenarios:
    def test_cps_scenario(self):
        assert_pruned_equals_exhaustive(cps_spares_scenario())

    def test_cas_scenario(self):
        assert_pruned_equals_exhaustive(cas_spares_scenario())

    def test_cas_scenario_tight_budget(self):
        assert_pruned_equals_exhaustive(cas_spares_scenario(budget=1.0))
