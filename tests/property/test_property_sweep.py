"""Differential property tests of the rate-sweep engine.

The sweep engine's claim: aggregating once (with symbolic rate forms) and
re-instantiating only the CTMC/CTMDP rates per sample yields exactly the
measures a full pipeline re-run at that sample produces.  Pinned here against
the naive path (:func:`substitute_parameters` + :func:`evaluate`) to <= 1e-9:

* on the paper's systems (the Figure 2 composition example at the I/O-IMC
  level, CAS, CPS) with Hypothesis-drawn rate samples;
* on random DFT corpora, including the FDEP / shared-spare generator
  patterns (bound measures where the model may be non-deterministic).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    RateSweep,
    SweepStudy,
    Unreliability,
    UnreliabilityBounds,
    evaluate,
)
from repro.core import signals
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.ctmc.builders import ctmc_skeleton_from_ioimc
from repro.ioimc import IOIMC, ParametricRate, minimize_weak, parallel, signature
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    random_dft,
)

MISSION_TIMES = (0.5, 1.0)
TOLERANCE = 1e-9

rates = st.floats(min_value=0.05, max_value=5.0, allow_nan=False, allow_infinity=False)

# Shared pipelines: one conversion + aggregation per system for the whole
# test module; Hypothesis only varies the cheap per-sample instantiation.
_SWEEP_STUDIES = {}


def _sweep_study(key, tree_factory):
    if key not in _SWEEP_STUDIES:
        _SWEEP_STUDIES[key] = (SweepStudy(tree_factory()), tree_factory())
    return _SWEEP_STUDIES[key]


class TestFigure2Composition:
    """Figure 2 at the I/O-IMC level: the symbolic form survives compose +
    hide + weak minimisation, and instantiation equals a numeric rebuild."""

    @given(rate=rates)
    @settings(max_examples=20, deadline=None)
    def test_parametric_pipeline_matches_numeric_rebuild(self, rate):
        def build(lam):
            model_a, numeric_b = figure2_models(rate=1.0)
            model_b = IOIMC("B", signature(inputs=["a"], outputs=["b"]))
            states = [model_b.add_state(name=str(i + 1), initial=(i == 0)) for i in range(5)]
            model_b.add_markovian(states[0], lam, states[1])
            model_b.add_interactive(states[0], "a", states[2])
            model_b.add_interactive(states[1], "a", states[3])
            model_b.add_markovian(states[2], lam, states[3])
            model_b.add_interactive(states[3], "b", states[4])
            return minimize_weak(parallel(model_a, model_b).hide(["a"]))

        symbolic = build(ParametricRate.for_parameter("lam", 1.0))
        skeleton = ctmc_skeleton_from_ioimc(symbolic.hide(["b"]))
        numeric = build(rate)
        reference = ctmc_skeleton_from_ioimc(numeric.hide(["b"])).instantiate()
        instantiated = skeleton.instantiate({"lam": rate})
        assert instantiated.num_states == reference.num_states
        for state in instantiated.states():
            assert dict(instantiated.rates_from(state)) == pytest.approx(
                dict(reference.rates_from(state)), abs=TOLERANCE
            )


class TestPaperSystems:
    @given(scale=rates)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cas_sweep_equals_rerun(self, scale):
        study, tree = _sweep_study(
            "cas", lambda: with_rate_parameters(cardiac_assist_system(), ["P", "MA", "PA"])
        )
        sample = {"P": scale, "MA": 0.5 * scale, "PA": 2.0 * scale}
        result = study.run(RateSweep(Unreliability(MISSION_TIMES), [sample]))
        reference = evaluate(
            substitute_parameters(tree, sample), Unreliability(MISSION_TIMES)
        )
        assert result.rows[0]["unreliability"].values == pytest.approx(
            reference["unreliability"].values, abs=TOLERANCE
        )

    @given(lam=rates)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cps_sweep_equals_rerun(self, lam):
        events = {f"{m}{i}": "lam" for m in ("A", "C", "D") for i in range(1, 5)}
        study, tree = _sweep_study(
            "cps", lambda: with_rate_parameters(cascaded_pand_system(), events)
        )
        sample = {"lam": lam}
        result = study.run(RateSweep(Unreliability(MISSION_TIMES), [sample]))
        reference = evaluate(
            substitute_parameters(tree, sample), Unreliability(MISSION_TIMES)
        )
        assert result.rows[0]["unreliability"].values == pytest.approx(
            reference["unreliability"].values, abs=TOLERANCE
        )


@pytest.mark.slow
class TestRandomCorpora:
    """Heavy Hypothesis differential suite: runs in the CI full-matrix job
    (``-m slow``); the seeded corpus in ``test_differential_matrix.py`` and
    the paper systems above keep tier-1 coverage."""

    @given(
        seed=st.integers(min_value=0, max_value=40),
        num_events=st.integers(min_value=4, max_value=6),
        scale=rates,
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_tree_sweep_equals_rerun(self, seed, num_events, scale):
        tree = with_rate_parameters(random_dft(num_events, seed=seed))
        study = SweepStudy(tree)
        events = sorted(tree.parameters)
        sample = {
            name: max(0.05, min(5.0, nominal * scale))
            for name, nominal in tree.parameters.items()
            if name in events[: max(2, len(events) // 2)]
        }
        result = study.run(RateSweep(Unreliability(MISSION_TIMES), [sample]))
        reference = evaluate(
            substitute_parameters(tree, sample), Unreliability(MISSION_TIMES)
        )
        assert result.rows[0]["unreliability"].values == pytest.approx(
            reference["unreliability"].values, abs=TOLERANCE
        )

    @given(seed=st.integers(min_value=0, max_value=20), scale=rates)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generator_patterns_sweep_bounds_equal_rerun(self, seed, scale):
        """FDEP + shared-spare corpora may be non-deterministic: compare the
        bound envelopes (exact on deterministic members) per sample."""
        tree = with_rate_parameters(
            random_dft(5, seed=seed, fdep=True, shared_spares=True)
        )
        study = SweepStudy(tree)
        first = sorted(tree.parameters)[0]
        sample = {first: max(0.05, min(5.0, tree.parameters[first] * scale))}
        query = UnreliabilityBounds(MISSION_TIMES)
        result = study.run(RateSweep(query, [sample]))
        reference = evaluate(substitute_parameters(tree, sample), query)
        row_measure = result.rows[0]["unreliability_bounds"]
        ref_measure = reference["unreliability_bounds"]
        assert row_measure.lower == pytest.approx(ref_measure.lower, abs=TOLERANCE)
        assert row_measure.upper == pytest.approx(ref_measure.upper, abs=TOLERANCE)
