"""Property tests: vectorised curve evaluation vs per-point evaluation.

The vectorised transient sweep (:func:`repro.ctmc.transient.
transient_distributions`) must agree with per-point
``probability_of_label`` on the paper's systems — the figure 2 pair, the
cardiac assist system (CAS) and the cascaded PAND system (CPS) — and the
CTMDP bound sweeps must produce monotone (min, max) envelopes that agree
with the per-point bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompositionalAnalyzer, signals
from repro.ctmc import CTMC, CTMDP, ctmc_from_ioimc
from repro.ioimc import minimize_weak, parallel
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    pand_race_system,
)

times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)


def _figure2_ctmc() -> CTMC:
    model_a, model_b = figure2_models(rate=1.0)
    aggregated = minimize_weak(parallel(model_a, model_b).hide(["a"]))
    return ctmc_from_ioimc(aggregated)


@pytest.fixture(scope="module")
def paper_ctmcs():
    """label -> CTMC for figure2, CAS and CPS (built once per module)."""
    return {
        "figure2": _figure2_ctmc(),
        "cas": CompositionalAnalyzer(cardiac_assist_system()).markov_model,
        "cps": CompositionalAnalyzer(cascaded_pand_system()).markov_model,
    }


def _hand_built_ctmdp() -> CTMDP:
    """A vanishing choice between a fast and a slow route to the goal."""
    ctmdp = CTMDP(5, initial=0)
    ctmdp.add_rate(0, 1, 1.0)
    ctmdp.set_choices(1, [2, 3])  # scheduler picks the route
    ctmdp.add_rate(2, 4, 4.0)  # fast route
    ctmdp.add_rate(3, 4, 0.5)  # slow route
    ctmdp.set_labels(4, [signals.FAILED_LABEL])
    return ctmdp


@pytest.fixture(scope="module")
def paper_ctmdps():
    """Non-deterministic models: the paper's PAND race plus a hand-built one."""
    models = {
        "pand_race": CompositionalAnalyzer(pand_race_system()).markov_model,
        "vanishing_choice": _hand_built_ctmdp(),
    }
    assert all(isinstance(model, CTMDP) for model in models.values())
    return models


class TestVectorisedCtmcCurves:
    @pytest.mark.parametrize("system", ["figure2", "cas", "cps"])
    @given(times=times_strategy)
    @settings(max_examples=25, deadline=None)
    def test_curve_equals_per_point(self, paper_ctmcs, system, times):
        ctmc = paper_ctmcs[system]
        curve = ctmc.probability_of_label_curve(signals.FAILED_LABEL, times)
        expected = [ctmc.probability_of_label(signals.FAILED_LABEL, t) for t in times]
        assert curve == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("system", ["figure2", "cas", "cps"])
    def test_dense_curve_matches_per_point(self, paper_ctmcs, system):
        """The acceptance-criterion shape: a dense 100-point curve."""
        ctmc = paper_ctmcs[system]
        times = np.linspace(0.0, 5.0, 100)
        curve = ctmc.probability_of_label_curve(signals.FAILED_LABEL, times)
        expected = [ctmc.probability_of_label(signals.FAILED_LABEL, t) for t in times]
        assert float(np.max(np.abs(curve - np.asarray(expected)))) <= 1e-9
        # Failed states of a DFT are absorbing: the curve is monotone.
        assert np.all(np.diff(curve) >= -1e-12)

    @given(times=times_strategy)
    @settings(max_examples=25, deadline=None)
    def test_distributions_rows_match_single_point(self, paper_ctmcs, times):
        ctmc = paper_ctmcs["figure2"]
        rows = ctmc.transient_distributions(times)
        for row, time in zip(rows, times):
            assert row == pytest.approx(ctmc.transient_distribution(time), abs=1e-12)
            assert float(row.sum()) == pytest.approx(1.0, abs=1e-9)


class TestCtmdpBoundCurves:
    @pytest.mark.parametrize("system", ["pand_race", "vanishing_choice"])
    @given(times=times_strategy)
    @settings(max_examples=15, deadline=None)
    def test_bounds_curve_equals_per_point(self, paper_ctmdps, system, times):
        ctmdp = paper_ctmdps[system]
        lower, upper = ctmdp.reachability_bounds_curve(signals.FAILED_LABEL, times)
        for index, time in enumerate(times):
            low, high = ctmdp.reachability_bounds(signals.FAILED_LABEL, time)
            assert lower[index] == pytest.approx(low, abs=1e-9)
            assert upper[index] == pytest.approx(high, abs=1e-9)

    @pytest.mark.parametrize("system", ["pand_race", "vanishing_choice"])
    def test_bounds_curves_are_monotone_envelopes(self, paper_ctmdps, system):
        ctmdp = paper_ctmdps[system]
        times = np.linspace(0.0, 5.0, 60)
        lower, upper = ctmdp.reachability_bounds_curve(signals.FAILED_LABEL, times)
        # Envelope: min <= max everywhere, both within [0, 1].
        assert np.all(lower <= upper + 1e-12)
        assert np.all((0.0 <= lower) & (upper <= 1.0))
        # Goal states are absorbing, so both reachability curves are monotone
        # non-decreasing in the time bound.
        assert np.all(np.diff(lower) >= -1e-9)
        assert np.all(np.diff(upper) >= -1e-9)
        # The envelope is non-trivial for these systems at positive times.
        assert upper[-1] > lower[-1]
