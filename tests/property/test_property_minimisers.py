"""Property tests: the splitter and signature minimisers are interchangeable.

The tentpole claim of the splitter-refinement PR: the worklist-of-splitters
engine (with its tau-SCC condensation on the weak path) computes exactly the
partitions of the seed signature-refinement engine — same blocks, same
quotients, same measures.  Pinned three ways:

* end to end on the paper's systems (Figure 2, CAS, CPS, mutex examples):
  identical unreliability to <= 1e-12 and identical final model sizes;
* on the intermediate fused products of random DFT corpora (Hypothesis):
  identical strong and weak partitions;
* on randomly generated internal-cycle models: the tau-SCC condensation
  preserves the weak partition and quotient that the closure-based signature
  reference computes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import AnalysisOptions, CompositionalAnalyzer
from repro.core import convert
from repro.ioimc import (
    IOIMC,
    AggregationOptions,
    minimize_weak,
    parallel,
    signature,
    strong_bisimulation_partition,
    weak_bisimulation_partition,
)
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    inhibition_pair,
    mutually_exclusive_switch,
    random_dft,
)

MISSION_TIME = 1.0


def _options(minimiser: str) -> AnalysisOptions:
    return AnalysisOptions(aggregation=AggregationOptions(minimiser=minimiser))


class TestPaperSystemsEndToEnd:
    @pytest.mark.parametrize(
        "factory",
        [cardiac_assist_system, cascaded_pand_system, inhibition_pair,
         mutually_exclusive_switch],
        ids=["cas", "cps", "mutex-inhibition", "mutex-switch"],
    )
    def test_minimisers_agree_on_unreliability(self, factory):
        tree = factory()
        splitter = CompositionalAnalyzer(tree, _options("splitter"))
        reference = CompositionalAnalyzer(tree, _options("signature"))
        assert splitter.unreliability(MISSION_TIME) == pytest.approx(
            reference.unreliability(MISSION_TIME), abs=1e-12
        )
        assert splitter.final_ioimc.num_states == reference.final_ioimc.num_states
        assert (
            splitter.final_ioimc.num_transitions
            == reference.final_ioimc.num_transitions
        )

    def test_figure2_agrees(self):
        model_a, model_b = figure2_models(rate=1.5)
        composed = parallel(model_a, model_b).hide(["a"])
        assert weak_bisimulation_partition(
            composed, algorithm="splitter"
        ) == weak_bisimulation_partition(composed, algorithm="signature")


def _intermediate_product(tree):
    """The fused product of the two largest community members, hidden the way
    the aggregation engine would hide it — the input weak minimisation sees."""
    community = convert(tree)
    models = sorted(community.models(), key=lambda m: -m.num_states)
    left, right = models[0], models[1]
    product = parallel(left, right, fuse=True)
    external = set()
    for other in models[2:]:
        external |= other.signature.inputs
    hideable = product.signature.outputs - external
    return product.hide(hideable) if hideable else product


class TestRandomCorpora:
    @settings(max_examples=12, deadline=None)
    @given(
        num_basic_events=st.integers(min_value=3, max_value=7),
        seed=st.integers(min_value=0, max_value=40),
        dynamic=st.booleans(),
    )
    def test_partitions_identical_on_random_products(
        self, num_basic_events, seed, dynamic
    ):
        tree = random_dft(num_basic_events=num_basic_events, seed=seed, dynamic=dynamic)
        product = _intermediate_product(tree)
        assert strong_bisimulation_partition(
            product, algorithm="splitter"
        ) == strong_bisimulation_partition(product, algorithm="signature")
        assert weak_bisimulation_partition(
            product, algorithm="splitter"
        ) == weak_bisimulation_partition(product, algorithm="signature")

    @settings(max_examples=6, deadline=None)
    @given(
        num_basic_events=st.integers(min_value=3, max_value=6),
        seed=st.integers(min_value=0, max_value=20),
    )
    def test_random_tree_measures_identical(self, num_basic_events, seed):
        tree = random_dft(num_basic_events=num_basic_events, seed=seed)
        splitter = CompositionalAnalyzer(tree, _options("splitter"))
        reference = CompositionalAnalyzer(tree, _options("signature"))
        assert splitter.unreliability(MISSION_TIME) == pytest.approx(
            reference.unreliability(MISSION_TIME), abs=1e-12
        )


def random_tau_model(draw) -> IOIMC:
    """A random model with internal cycles, visible actions and rates."""
    num_states = draw(st.integers(min_value=2, max_value=9))
    model = IOIMC(
        "random-tau", signature(inputs=["in"], outputs=["out"], internals=["tau"])
    )
    for index in range(num_states):
        labelled = draw(st.booleans())
        model.add_state(labels=["failed"] if labelled else [], initial=index == 0)
    state_ids = st.integers(min_value=0, max_value=num_states - 1)
    for _ in range(draw(st.integers(min_value=1, max_value=2 * num_states))):
        kind = draw(st.sampled_from(["tau", "out", "in", "rate"]))
        source = draw(state_ids)
        target = draw(state_ids)
        if kind == "rate":
            model.add_markovian(source, draw(st.sampled_from([0.5, 1.0, 2.0])), target)
        else:
            model.add_interactive(source, kind, target)
    return model


class TestCondensationOnInternalCycles:
    """The tau-SCC condensation preserves the weak quotient on cyclic models."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_weak_partition_preserved(self, data):
        model = random_tau_model(data.draw)
        splitter = weak_bisimulation_partition(model, algorithm="splitter")
        reference = weak_bisimulation_partition(model, algorithm="signature")
        assert splitter == reference

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_weak_quotient_preserved(self, data):
        model = random_tau_model(data.draw)
        fused = minimize_weak(model, algorithm="splitter")
        reference = minimize_weak(model, algorithm="signature")
        assert fused.num_states == reference.num_states
        assert fused.num_transitions == reference.num_transitions
