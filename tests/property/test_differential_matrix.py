"""Cross-engine differential test matrix for the rate-sweep pipeline.

The reusable backbone for every future engine variant: a fixture corpus
(paper systems + seeded ``random_dft`` trees including FDEP and shared-spare
patterns) crossed with

* the two bisimulation engines — ``splitter`` and ``signature`` — and
* the three sweep paths — serial shared-structure kernel, chunked process
  pool, and naive full-pipeline re-runs per sample —

asserting row-for-row agreement to ``<= 1e-9`` (and bit-identity between the
serial and parallel kernel paths).  The figure 2 composition example is
covered at the I/O-IMC level, where the sweep kernel's refilled matrix must
reproduce a numeric rebuild of the whole compose + hide + minimise pipeline.

The full matrix is heavy, so everything except a tier-1 smoke slice carries
the ``slow`` marker; the CI full-matrix job runs it under the ``full``
Hypothesis profile (``HYPOTHESIS_PROFILE=full pytest -m slow``).
"""

import pytest
from hypothesis import given, strategies as st

from repro import (
    RateSweep,
    StudyOptions,
    SweepStudy,
    Unreliability,
    UnreliabilityBounds,
    evaluate,
)
from repro.core import Study
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.ctmc.builders import ctmc_skeleton_from_ioimc
from repro.ctmc.kernel import TransientKernel
from repro.ioimc import AggregationOptions, minimize_weak, parallel
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    mutually_exclusive_switch,
    random_dft,
)

MISSION_TIMES = (0.5, 1.0)
TOLERANCE = 1e-9
MINIMISERS = ("splitter", "signature")


def _options(minimiser):
    return StudyOptions(aggregation=AggregationOptions(minimiser=minimiser))


def _corpus_tree(name):
    if name == "cas":
        return with_rate_parameters(cardiac_assist_system(), ["P", "MA", "PA"])
    if name == "cps":
        events = {f"{m}{i}": "lam" for m in ("A", "C", "D") for i in range(1, 5)}
        return with_rate_parameters(cascaded_pand_system(), events)
    if name == "mutex":
        return with_rate_parameters(mutually_exclusive_switch(), ["SO", "SC", "Pump"])
    raise AssertionError(name)


def _corpus_samples(tree, count=4):
    """A deterministic spread of per-parameter scalings around the nominals."""
    scales = [0.35, 0.8, 1.6, 2.9, 0.55, 2.2][:count]
    return [
        {
            name: max(0.05, min(5.0, nominal * scale))
            for name, nominal in tree.parameters.items()
        }
        for scale in scales
    ]

# Shared pipelines: one conversion + aggregation per (system, minimiser) cell
# for the whole module; the matrix only re-runs the cheap per-sample paths.
_STUDIES = {}


def _study(name, minimiser):
    key = (name, minimiser)
    if key not in _STUDIES:
        _STUDIES[key] = SweepStudy(_corpus_tree(name), _options(minimiser))
    return _STUDIES[key]


def assert_matrix_cell(tree, study, query, samples, bounds=False):
    """One corpus x engine cell: serial == parallel (bit), both == naive (1e-9)."""
    sweep = RateSweep(query, samples)
    serial = study.run(sweep)
    parallel_run = study.run(sweep, processes=2, chunk_size=2)
    assert serial.num_failed == 0
    for mine, theirs in zip(serial.rows, parallel_run.rows):
        assert mine.sample == theirs.sample
        assert mine.measures == theirs.measures  # bit-identical floats
        assert mine.error == theirs.error
    for row, sample in zip(serial.rows, samples):
        reference = evaluate(
            substitute_parameters(tree, sample), query, study.study.options
        )
        for kind in (m.kind for m in row.measures):
            if bounds:
                assert row[kind].lower == pytest.approx(
                    reference[kind].lower, abs=TOLERANCE
                )
                assert row[kind].upper == pytest.approx(
                    reference[kind].upper, abs=TOLERANCE
                )
            else:
                assert row[kind].values == pytest.approx(
                    reference[kind].values, abs=TOLERANCE
                )


def _mode_study(tree, minimiser, processes):
    return Study(
        tree,
        StudyOptions(
            ordering="modular",
            aggregation=AggregationOptions(minimiser=minimiser),
            aggregation_processes=processes,
        ),
    )


def assert_aggregation_mode_cell(tree, query, bounds=False):
    """{serial, parallel-modular} x {smaller-half splitter, signature}.

    Per engine the parallel quotient must be *structurally identical* to the
    serial one (same dot rendering, not just equal sizes); across engines the
    quotients agree on size and every cell agrees on the measures to
    ``<= 1e-9``.
    """
    finals = {}
    results = {}
    for minimiser in MINIMISERS:
        for processes in (1, 2):
            study = _mode_study(tree, minimiser, processes)
            finals[minimiser, processes] = study.final_ioimc
            results[minimiser, processes] = study.evaluate(query)
        assert finals[minimiser, 2].to_dot() == finals[minimiser, 1].to_dot(), (
            f"parallel modular aggregation changed the {minimiser} quotient"
        )
    assert (
        finals["splitter", 1].num_states == finals["signature", 1].num_states
    ), "the two engines disagree on the quotient size"
    baseline = results[MINIMISERS[0], 1]
    for result in results.values():
        for measure, reference in zip(result.measures, baseline.measures):
            assert measure.kind == reference.kind
            if bounds:
                assert measure.lower == pytest.approx(reference.lower, abs=TOLERANCE)
                assert measure.upper == pytest.approx(reference.upper, abs=TOLERANCE)
            else:
                assert measure.values == pytest.approx(reference.values, abs=TOLERANCE)


class TestTier1Smoke:
    """The matrix's tier-1 slice: one small system, both engines."""

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    def test_mutex_cell(self, minimiser):
        tree = _corpus_tree("mutex")
        assert_matrix_cell(
            tree,
            _study("mutex", minimiser),
            Unreliability(MISSION_TIMES),
            _corpus_samples(tree, count=3),
        )

    def test_cps_aggregation_modes(self):
        # Multi-module system: the modular plan actually fans out workers.
        assert_aggregation_mode_cell(
            cascaded_pand_system(), Unreliability(MISSION_TIMES)
        )


@pytest.mark.slow
class TestAggregationModeMatrix:
    """{serial, parallel} x {smaller-half, signature} on paper + random trees."""

    @pytest.mark.parametrize("system", ["cas", "mutex"])
    def test_paper_system_cell(self, system):
        assert_aggregation_mode_cell(
            _corpus_tree(system), Unreliability(MISSION_TIMES)
        )

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_random_tree_cell(self, seed):
        assert_aggregation_mode_cell(
            random_dft(6, seed=seed), Unreliability(MISSION_TIMES)
        )

    @pytest.mark.parametrize("seed", [2, 7])
    def test_pattern_tree_cell_bounds(self, seed):
        # FDEP / shared-spare patterns may leave a CTMDP: compare bounds.
        assert_aggregation_mode_cell(
            random_dft(5, seed=seed, fdep=True, shared_spares=True),
            UnreliabilityBounds(MISSION_TIMES),
            bounds=True,
        )


@pytest.mark.slow
class TestPaperSystemMatrix:
    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @pytest.mark.parametrize("system", ["cas", "cps", "mutex"])
    def test_cell(self, system, minimiser):
        tree = _corpus_tree(system)
        assert_matrix_cell(
            tree,
            _study(system, minimiser),
            Unreliability(MISSION_TIMES),
            _corpus_samples(tree, count=6),
        )


@pytest.mark.slow
class TestFigure2Matrix:
    """Figure 2 at the I/O-IMC level: the kernel's refilled matrix reproduces
    a full numeric rebuild of compose + hide + minimisation, per engine."""

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @given(rate=st.floats(min_value=0.05, max_value=5.0))
    def test_kernel_curve_equals_numeric_rebuild(self, minimiser, rate):
        from repro.ioimc import ParametricRate

        def build(lam):
            model_a, _ = figure2_models(rate=1.0)
            from repro.ioimc import IOIMC, signature

            model_b = IOIMC("B", signature(inputs=["a"], outputs=["b"]))
            states = [
                model_b.add_state(name=str(i + 1), initial=(i == 0)) for i in range(5)
            ]
            model_b.add_markovian(states[0], lam, states[1])
            model_b.add_interactive(states[0], "a", states[2])
            model_b.add_interactive(states[1], "a", states[3])
            model_b.add_markovian(states[2], lam, states[3])
            model_b.add_interactive(states[3], "b", states[4])
            composed = parallel(model_a, model_b).hide(["a"])
            return minimize_weak(composed, algorithm=minimiser).hide(["b"])

        symbolic = build(ParametricRate.for_parameter("lam", 1.0))
        kernel = TransientKernel(ctmc_skeleton_from_ioimc(symbolic))
        kernel.load({"lam": rate})
        curve = kernel.probability_of_label_curve("failed", MISSION_TIMES)

        numeric = ctmc_skeleton_from_ioimc(build(rate)).instantiate()
        reference = numeric.probability_of_label_curve("failed", MISSION_TIMES)
        assert curve == pytest.approx(reference, abs=TOLERANCE)


@pytest.mark.slow
class TestRandomTreeMatrix:
    """Seeded random trees, including FDEP / shared-spare patterns (where the
    model may be a CTMDP, compared on bound envelopes)."""

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @given(
        seed=st.integers(min_value=0, max_value=30),
        num_events=st.integers(min_value=4, max_value=6),
        scale=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_plain_tree_cell(self, minimiser, seed, num_events, scale):
        tree = with_rate_parameters(random_dft(num_events, seed=seed))
        samples = [
            {
                name: max(0.05, min(5.0, nominal * factor))
                for name, nominal in tree.parameters.items()
            }
            for factor in (scale, 1.0, 2.0 / (1.0 + scale))
        ]
        assert_matrix_cell(
            tree,
            SweepStudy(tree, _options(minimiser)),
            Unreliability(MISSION_TIMES),
            samples,
        )

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @given(
        seed=st.integers(min_value=0, max_value=15),
        scale=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_pattern_tree_cell_bounds(self, minimiser, seed, scale):
        tree = with_rate_parameters(
            random_dft(5, seed=seed, fdep=True, shared_spares=True)
        )
        samples = [
            {
                name: max(0.05, min(5.0, nominal * factor))
                for name, nominal in tree.parameters.items()
            }
            for factor in (scale, 1.0)
        ]
        assert_matrix_cell(
            tree,
            SweepStudy(tree, _options(minimiser)),
            UnreliabilityBounds(MISSION_TIMES),
            samples,
            bounds=True,
        )
