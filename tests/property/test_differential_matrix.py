"""Cross-engine differential test matrix for the rate-sweep pipeline.

The reusable backbone for every future engine variant: a fixture corpus
(paper systems + seeded ``random_dft`` trees including FDEP and shared-spare
patterns) crossed with

* the two bisimulation engines — ``splitter`` and ``signature`` — and
* the three sweep paths — serial shared-structure kernel, chunked process
  pool, and naive full-pipeline re-runs per sample —

asserting row-for-row agreement to ``<= 1e-9`` (and bit-identity between the
serial and parallel kernel paths).  The figure 2 composition example is
covered at the I/O-IMC level, where the sweep kernel's refilled matrix must
reproduce a numeric rebuild of the whole compose + hide + minimise pipeline.

The full matrix is heavy, so everything except a tier-1 smoke slice carries
the ``slow`` marker; the CI full-matrix job runs it under the ``full``
Hypothesis profile (``HYPOTHESIS_PROFILE=full pytest -m slow``).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import (
    RateSweep,
    StudyOptions,
    SweepStudy,
    Unreliability,
    UnreliabilityBounds,
    evaluate,
)
from repro.core import Study, signals
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.ctmc.builders import ctmc_skeleton_from_ioimc, ctmdp_skeleton_from_ioimc
from repro.ctmc.kernel import TransientKernel
from repro.ioimc import AggregationOptions, minimize_weak, parallel
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    figure2_models,
    mutually_exclusive_switch,
    pand_race_bank,
    pand_race_system,
    random_dft,
    shared_spare_race_system,
)

MISSION_TIMES = (0.5, 1.0)
TOLERANCE = 1e-9
MINIMISERS = ("splitter", "signature")


def _options(minimiser):
    return StudyOptions(aggregation=AggregationOptions(minimiser=minimiser))


def _corpus_tree(name):
    if name == "cas":
        return with_rate_parameters(cardiac_assist_system(), ["P", "MA", "PA"])
    if name == "cps":
        events = {f"{m}{i}": "lam" for m in ("A", "C", "D") for i in range(1, 5)}
        return with_rate_parameters(cascaded_pand_system(), events)
    if name == "mutex":
        return with_rate_parameters(mutually_exclusive_switch(), ["SO", "SC", "Pump"])
    raise AssertionError(name)


def _corpus_samples(tree, count=4):
    """A deterministic spread of per-parameter scalings around the nominals."""
    scales = [0.35, 0.8, 1.6, 2.9, 0.55, 2.2][:count]
    return [
        {
            name: max(0.05, min(5.0, nominal * scale))
            for name, nominal in tree.parameters.items()
        }
        for scale in scales
    ]

# Shared pipelines: one conversion + aggregation per (system, minimiser) cell
# for the whole module; the matrix only re-runs the cheap per-sample paths.
_STUDIES = {}


def _study(name, minimiser):
    key = (name, minimiser)
    if key not in _STUDIES:
        _STUDIES[key] = SweepStudy(_corpus_tree(name), _options(minimiser))
    return _STUDIES[key]


def assert_matrix_cell(tree, study, query, samples, bounds=False):
    """One corpus x engine cell: serial == parallel (bit), both == naive (1e-9)."""
    sweep = RateSweep(query, samples)
    serial = study.run(sweep)
    parallel_run = study.run(sweep, processes=2, chunk_size=2)
    assert serial.num_failed == 0
    for mine, theirs in zip(serial.rows, parallel_run.rows):
        assert mine.sample == theirs.sample
        assert mine.measures == theirs.measures  # bit-identical floats
        assert mine.error == theirs.error
    for row, sample in zip(serial.rows, samples):
        reference = evaluate(
            substitute_parameters(tree, sample), query, study.study.options
        )
        for kind in (m.kind for m in row.measures):
            if bounds:
                assert row[kind].lower == pytest.approx(
                    reference[kind].lower, abs=TOLERANCE
                )
                assert row[kind].upper == pytest.approx(
                    reference[kind].upper, abs=TOLERANCE
                )
            else:
                assert row[kind].values == pytest.approx(
                    reference[kind].values, abs=TOLERANCE
                )


def _mode_study(tree, minimiser, processes):
    return Study(
        tree,
        StudyOptions(
            ordering="modular",
            aggregation=AggregationOptions(minimiser=minimiser),
            aggregation_processes=processes,
        ),
    )


def assert_aggregation_mode_cell(tree, query, bounds=False):
    """{serial, parallel-modular} x {smaller-half splitter, signature}.

    Per engine the parallel quotient must be *structurally identical* to the
    serial one (same dot rendering, not just equal sizes); across engines the
    quotients agree on size and every cell agrees on the measures to
    ``<= 1e-9``.
    """
    finals = {}
    results = {}
    for minimiser in MINIMISERS:
        for processes in (1, 2):
            study = _mode_study(tree, minimiser, processes)
            finals[minimiser, processes] = study.final_ioimc
            results[minimiser, processes] = study.evaluate(query)
        assert finals[minimiser, 2].to_dot() == finals[minimiser, 1].to_dot(), (
            f"parallel modular aggregation changed the {minimiser} quotient"
        )
    assert (
        finals["splitter", 1].num_states == finals["signature", 1].num_states
    ), "the two engines disagree on the quotient size"
    baseline = results[MINIMISERS[0], 1]
    for result in results.values():
        for measure, reference in zip(result.measures, baseline.measures):
            assert measure.kind == reference.kind
            if bounds:
                assert measure.lower == pytest.approx(reference.lower, abs=TOLERANCE)
                assert measure.upper == pytest.approx(reference.upper, abs=TOLERANCE)
            else:
                assert measure.values == pytest.approx(reference.values, abs=TOLERANCE)


# --- CTMDP cells: shared-structure kernel vs legacy per-sample reference ---

_CTMDP_TREES = {
    "mutex-envelope": lambda: with_rate_parameters(mutually_exclusive_switch()),
    "pand-race": lambda: with_rate_parameters(pand_race_system()),
    "shared-spare": lambda: with_rate_parameters(shared_spare_race_system()),
    "race-bank-2": lambda: with_rate_parameters(pand_race_bank(2)),
    "rand-fdep-3": lambda: with_rate_parameters(
        random_dft(5, seed=3, fdep=True, shared_spares=True)
    ),
    "rand-fdep-11": lambda: with_rate_parameters(
        random_dft(6, seed=11, fdep=True, shared_spares=True)
    ),
}


def _ctmdp_central_fd(kernel, assignment, maximize):
    """Central finite differences of the kernel's bound curve per parameter."""
    columns = []
    for name in kernel.parameters:
        h = 1e-4 * max(assignment[name], 1.0)
        shifted = dict(assignment)
        shifted[name] = assignment[name] + h
        kernel.load(shifted)
        plus = kernel.time_bounded_reachability_curve(
            signals.FAILED_LABEL, MISSION_TIMES, maximize=maximize, tolerance=1e-12
        )
        shifted[name] = assignment[name] - h
        kernel.load(shifted)
        minus = kernel.time_bounded_reachability_curve(
            signals.FAILED_LABEL, MISSION_TIMES, maximize=maximize, tolerance=1e-12
        )
        columns.append((plus - minus) / (2.0 * h))
    return np.column_stack(columns)


def assert_ctmdp_cell(tree, samples, gradient_samples=0):
    """One CTMDP corpus cell: kernel == legacy reference engine per sample and
    direction to ``<= 1e-9``; on the first ``gradient_samples`` samples the
    analytic gradients also match central finite differences to ``<= 1e-6``."""
    skeleton = ctmdp_skeleton_from_ioimc(Study(tree).final_ioimc)
    kernel = skeleton.ctmdp_kernel()
    for index, sample in enumerate(samples):
        legacy = skeleton.instantiate(sample)
        for maximize in (True, False):
            kernel.load(sample)
            fast = kernel.time_bounded_reachability_curve(
                signals.FAILED_LABEL, MISSION_TIMES, maximize=maximize, tolerance=1e-12
            )
            slow = legacy.time_bounded_reachability_curve_reference(
                signals.FAILED_LABEL, MISSION_TIMES, maximize=maximize, tolerance=1e-12
            )
            assert np.max(np.abs(fast - slow)) <= TOLERANCE
            if index < gradient_samples:
                _curve, grads = kernel.gradient_curve(
                    signals.FAILED_LABEL,
                    MISSION_TIMES,
                    maximize=maximize,
                    tolerance=1e-12,
                )
                fd = _ctmdp_central_fd(kernel, sample, maximize)
                assert np.max(np.abs(grads - fd)) <= 1e-6


def assert_ctmdp_sweep_cell(tree, samples):
    """The sweep paths over a CTMDP skeleton: shared-structure kernel rows vs
    legacy per-sample instantiation rows agree on both bounds."""
    study = SweepStudy(tree)
    sweep = RateSweep(UnreliabilityBounds(MISSION_TIMES), samples)
    fast = study.run(sweep)
    slow = study.run(sweep, use_kernel=False)
    assert fast.num_failed == 0
    assert slow.num_failed == 0
    for mine, theirs in zip(fast.rows, slow.rows):
        assert mine.sample == theirs.sample
        bounds = mine["unreliability_bounds"]
        reference = theirs["unreliability_bounds"]
        assert bounds.lower == pytest.approx(reference.lower, abs=TOLERANCE)
        assert bounds.upper == pytest.approx(reference.upper, abs=TOLERANCE)


class TestTier1Smoke:
    """The matrix's tier-1 slice: one small system, both engines."""

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    def test_mutex_cell(self, minimiser):
        tree = _corpus_tree("mutex")
        assert_matrix_cell(
            tree,
            _study("mutex", minimiser),
            Unreliability(MISSION_TIMES),
            _corpus_samples(tree, count=3),
        )

    def test_cps_aggregation_modes(self):
        # Multi-module system: the modular plan actually fans out workers.
        assert_aggregation_mode_cell(
            cascaded_pand_system(), Unreliability(MISSION_TIMES)
        )

    def test_pand_race_ctmdp_cell(self):
        # One genuinely non-deterministic cell in tier 1: kernel vs legacy
        # reference in both directions, plus a gradient-vs-FD sample.
        tree = _CTMDP_TREES["pand-race"]()
        assert_ctmdp_cell(tree, _corpus_samples(tree, count=2), gradient_samples=1)


@pytest.mark.slow
class TestAggregationModeMatrix:
    """{serial, parallel} x {smaller-half, signature} on paper + random trees."""

    @pytest.mark.parametrize("system", ["cas", "mutex"])
    def test_paper_system_cell(self, system):
        assert_aggregation_mode_cell(
            _corpus_tree(system), Unreliability(MISSION_TIMES)
        )

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_random_tree_cell(self, seed):
        assert_aggregation_mode_cell(
            random_dft(6, seed=seed), Unreliability(MISSION_TIMES)
        )

    @pytest.mark.parametrize("seed", [2, 7])
    def test_pattern_tree_cell_bounds(self, seed):
        # FDEP / shared-spare patterns may leave a CTMDP: compare bounds.
        assert_aggregation_mode_cell(
            random_dft(5, seed=seed, fdep=True, shared_spares=True),
            UnreliabilityBounds(MISSION_TIMES),
            bounds=True,
        )


@pytest.mark.slow
class TestPaperSystemMatrix:
    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @pytest.mark.parametrize("system", ["cas", "cps", "mutex"])
    def test_cell(self, system, minimiser):
        tree = _corpus_tree(system)
        assert_matrix_cell(
            tree,
            _study(system, minimiser),
            Unreliability(MISSION_TIMES),
            _corpus_samples(tree, count=6),
        )


@pytest.mark.slow
class TestFigure2Matrix:
    """Figure 2 at the I/O-IMC level: the kernel's refilled matrix reproduces
    a full numeric rebuild of compose + hide + minimisation, per engine."""

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @given(rate=st.floats(min_value=0.05, max_value=5.0))
    def test_kernel_curve_equals_numeric_rebuild(self, minimiser, rate):
        from repro.ioimc import ParametricRate

        def build(lam):
            model_a, _ = figure2_models(rate=1.0)
            from repro.ioimc import IOIMC, signature

            model_b = IOIMC("B", signature(inputs=["a"], outputs=["b"]))
            states = [
                model_b.add_state(name=str(i + 1), initial=(i == 0)) for i in range(5)
            ]
            model_b.add_markovian(states[0], lam, states[1])
            model_b.add_interactive(states[0], "a", states[2])
            model_b.add_interactive(states[1], "a", states[3])
            model_b.add_markovian(states[2], lam, states[3])
            model_b.add_interactive(states[3], "b", states[4])
            composed = parallel(model_a, model_b).hide(["a"])
            return minimize_weak(composed, algorithm=minimiser).hide(["b"])

        symbolic = build(ParametricRate.for_parameter("lam", 1.0))
        kernel = TransientKernel(ctmc_skeleton_from_ioimc(symbolic))
        kernel.load({"lam": rate})
        curve = kernel.probability_of_label_curve("failed", MISSION_TIMES)

        numeric = ctmc_skeleton_from_ioimc(build(rate)).instantiate()
        reference = numeric.probability_of_label_curve("failed", MISSION_TIMES)
        assert curve == pytest.approx(reference, abs=TOLERANCE)


@pytest.mark.slow
class TestRandomTreeMatrix:
    """Seeded random trees, including FDEP / shared-spare patterns (where the
    model may be a CTMDP, compared on bound envelopes)."""

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @given(
        seed=st.integers(min_value=0, max_value=30),
        num_events=st.integers(min_value=4, max_value=6),
        scale=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_plain_tree_cell(self, minimiser, seed, num_events, scale):
        tree = with_rate_parameters(random_dft(num_events, seed=seed))
        samples = [
            {
                name: max(0.05, min(5.0, nominal * factor))
                for name, nominal in tree.parameters.items()
            }
            for factor in (scale, 1.0, 2.0 / (1.0 + scale))
        ]
        assert_matrix_cell(
            tree,
            SweepStudy(tree, _options(minimiser)),
            Unreliability(MISSION_TIMES),
            samples,
        )

    @pytest.mark.parametrize("minimiser", MINIMISERS)
    @given(
        seed=st.integers(min_value=0, max_value=15),
        scale=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_pattern_tree_cell_bounds(self, minimiser, seed, scale):
        tree = with_rate_parameters(
            random_dft(5, seed=seed, fdep=True, shared_spares=True)
        )
        samples = [
            {
                name: max(0.05, min(5.0, nominal * factor))
                for name, nominal in tree.parameters.items()
            }
            for factor in (scale, 1.0)
        ]
        assert_matrix_cell(
            tree,
            SweepStudy(tree, _options(minimiser)),
            UnreliabilityBounds(MISSION_TIMES),
            samples,
            bounds=True,
        )


@pytest.mark.slow
class TestCtmdpMatrix:
    """CTMDP corpus x {kernel, legacy per-sample reference} x {max, min}.

    Every cell checks the bound curves to ``<= 1e-9``; gradient cells check
    the analytic derivatives against central finite differences to
    ``<= 1e-6``.  The mutex envelope cell covers the degenerate case where
    aggregation removes all non-determinism (the bounds coincide but still
    have to match the reference engine).
    """

    @pytest.mark.parametrize("system", sorted(_CTMDP_TREES))
    def test_kernel_vs_reference_cell(self, system):
        tree = _CTMDP_TREES[system]()
        assert_ctmdp_cell(tree, _corpus_samples(tree, count=4), gradient_samples=2)

    @pytest.mark.parametrize("system", ["pand-race", "race-bank-2", "rand-fdep-3"])
    def test_sweep_path_cell(self, system):
        tree = _CTMDP_TREES[system]()
        assert_ctmdp_sweep_cell(tree, _corpus_samples(tree, count=4))
