"""Property-based tests at the fault-tree level (hypothesis).

The key invariant: the compositional I/O-IMC pipeline and the monolithic
DIFTree-style generator — two independent implementations of the DFT
semantics — must agree on the unreliability of randomly generated trees.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompositionalAnalyzer, unreliability
from repro.baselines import DiftreeAnalyzer, monolithic_unreliability
from repro.dft import FaultTreeBuilder, galileo


@st.composite
def random_static_tree(draw):
    """A random two-level static tree (AND/OR/K-of-M over basic events)."""
    builder = FaultTreeBuilder("random-static")
    num_branches = draw(st.integers(min_value=1, max_value=3))
    branch_names = []
    counter = 0
    for branch in range(num_branches):
        size = draw(st.integers(min_value=1, max_value=3))
        events = []
        for _ in range(size):
            counter += 1
            name = f"E{counter}"
            rate = draw(st.floats(min_value=0.2, max_value=3.0))
            builder.basic_event(name, rate)
            events.append(name)
        kind = draw(st.sampled_from(["and", "or", "voting"]))
        gate_name = f"G{branch}"
        if kind == "and" or size == 1:
            builder.and_gate(gate_name, events)
        elif kind == "or":
            builder.or_gate(gate_name, events)
        else:
            threshold = draw(st.integers(min_value=1, max_value=size))
            builder.voting_gate(gate_name, events, threshold=threshold)
        branch_names.append(gate_name)
    top_kind = draw(st.sampled_from(["and", "or"]))
    if top_kind == "and":
        builder.and_gate("Top", branch_names)
    else:
        builder.or_gate("Top", branch_names)
    return builder.build("Top")


@st.composite
def random_dynamic_tree(draw):
    """A small random tree mixing spare gates, PAND and static gates.

    The construction avoids configurations with inherent non-determinism so
    that both pipelines produce a single number.
    """
    builder = FaultTreeBuilder("random-dynamic")
    rate = lambda: draw(st.floats(min_value=0.3, max_value=2.0))  # noqa: E731

    builder.basic_event("P1", rate())
    builder.basic_event("P2", rate())
    dormancy = draw(st.sampled_from([0.0, 0.5, 1.0]))
    builder.basic_event("S", rate(), dormancy=dormancy)
    shared = draw(st.booleans())
    builder.spare_gate("G1", primary="P1", spares=["S"])
    if shared:
        builder.spare_gate("G2", primary="P2", spares=["S"])
        subsystem_a = ["G1", "G2"]
    else:
        subsystem_a = ["G1", "P2"]

    builder.basic_event("X", rate())
    builder.basic_event("Y", rate())
    use_pand = draw(st.booleans())
    if use_pand:
        builder.pand_gate("GB", ["X", "Y"])
    else:
        builder.and_gate("GB", ["X", "Y"])

    top_kind = draw(st.sampled_from(["and", "or"]))
    children = subsystem_a + ["GB"]
    if top_kind == "and":
        builder.and_gate("Top", children)
    else:
        builder.or_gate("Top", children)
    return builder.build("Top")


class TestStaticTrees:
    @settings(max_examples=20, deadline=None)
    @given(tree=random_static_tree(), time=st.floats(min_value=0.2, max_value=2.0))
    def test_compositional_matches_bdd(self, tree, time):
        compositional = unreliability(tree, time)
        bdd_based = DiftreeAnalyzer(tree).unreliability(time)
        assert compositional == pytest.approx(bdd_based, abs=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(tree=random_static_tree(), time=st.floats(min_value=0.2, max_value=2.0))
    def test_compositional_matches_monolithic(self, tree, time):
        compositional = unreliability(tree, time)
        monolithic = monolithic_unreliability(tree, time)
        assert compositional == pytest.approx(monolithic, abs=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(tree=random_static_tree())
    def test_unreliability_is_monotone_in_time(self, tree):
        analyzer = CompositionalAnalyzer(tree)
        values = analyzer.unreliability_curve([0.0, 0.5, 1.0, 2.0, 4.0])
        assert all(later >= earlier - 1e-12 for earlier, later in zip(values, values[1:]))
        assert 0.0 <= values[0] <= 1e-12
        assert values[-1] <= 1.0 + 1e-12


class TestDynamicTrees:
    @settings(max_examples=15, deadline=None)
    @given(tree=random_dynamic_tree(), time=st.floats(min_value=0.3, max_value=1.5))
    def test_compositional_matches_monolithic(self, tree, time):
        analyzer = CompositionalAnalyzer(tree)
        low, high = analyzer.unreliability_bounds(time)
        reference = monolithic_unreliability(tree, time)
        assert low == pytest.approx(high, abs=1e-9)
        assert low == pytest.approx(reference, abs=1e-7)

    @settings(max_examples=10, deadline=None)
    @given(tree=random_dynamic_tree())
    def test_galileo_round_trip_preserves_unreliability(self, tree):
        parsed = galileo.parse(galileo.write(tree))
        assert unreliability(parsed, 1.0) == pytest.approx(
            unreliability(tree, 1.0), abs=1e-9
        )

    @settings(max_examples=10, deadline=None)
    @given(tree=random_dynamic_tree(), time=st.floats(min_value=0.3, max_value=1.5))
    def test_bounds_always_bracket_point_values(self, tree, time):
        low, high = CompositionalAnalyzer(tree).unreliability_bounds(time)
        assert 0.0 - 1e-12 <= low <= high <= 1.0 + 1e-12
