"""Property-based tests for the I/O-IMC calculus (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctmc import markov_model_from_ioimc
from repro.ioimc import (
    AggregationOptions,
    IOIMC,
    aggregate,
    minimize_strong,
    minimize_weak,
    parallel,
    signature,
)


@st.composite
def random_closed_ioimc(draw, max_states: int = 6):
    """A random closed model mixing Markovian and internal transitions.

    The last state is labelled ``failed``.  All interactive transitions are
    internal, so the model can be interpreted directly as a CTMC (possibly a
    CTMDP when internal choices appear).
    """
    num_states = draw(st.integers(min_value=2, max_value=max_states))
    model = IOIMC("random", signature(internals=["tau"]))
    for index in range(num_states):
        model.add_state(labels=["failed"] if index == num_states - 1 else ())
    model.set_initial(0)
    rate_strategy = st.floats(min_value=0.1, max_value=4.0, allow_nan=False)
    for source in range(num_states - 1):
        kind = draw(st.sampled_from(["markovian", "internal", "both", "none"]))
        targets = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_states - 1),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
        for target in targets:
            if target == source:
                continue
            if kind in ("markovian", "both"):
                model.add_markovian(source, draw(rate_strategy), target)
            # Internal moves only go "forward" so the generated models are free
            # of divergent (Zeno) cycles of instantaneous transitions, which do
            # not occur in DFT communities either.
            if kind in ("internal", "both") and target > source:
                model.add_interactive(source, "tau", target)
    # Guarantee the failed state is reachable from the initial state.
    model.add_markovian(0, draw(rate_strategy), num_states - 1)
    return model


@st.composite
def random_producer_consumer(draw):
    """A pair of open models communicating over a single action."""
    rate = draw(st.floats(min_value=0.2, max_value=3.0))
    producer = IOIMC("producer", signature(outputs=["a"]))
    p0 = producer.add_state(initial=True)
    p1 = producer.add_state()
    p2 = producer.add_state()
    producer.add_markovian(p0, rate, p1)
    producer.add_interactive(p1, "a", p2)

    consumer = IOIMC("consumer", signature(inputs=["a"]))
    c0 = consumer.add_state(initial=True)
    stages = draw(st.integers(min_value=1, max_value=3))
    previous = c0
    consumer_rate = draw(st.floats(min_value=0.2, max_value=3.0))
    for _ in range(stages):
        nxt = consumer.add_state()
        consumer.add_markovian(previous, consumer_rate, nxt)
        previous = nxt
    failed = consumer.add_state(labels=["failed"])
    consumer.add_interactive(previous, "a", failed)
    return producer, consumer


def failure_bounds(model, time=1.0):
    """(min, max) probability of occupying a failed state at ``time``.

    Works uniformly for deterministic (CTMC) and non-deterministic (CTMDP)
    closed models.
    """
    markov = markov_model_from_ioimc(model)
    if hasattr(markov, "probability_of_label"):
        value = markov.probability_of_label("failed", time)
        return value, value
    return markov.reachability_bounds("failed", time)


def failure_probability(model, time=1.0):
    low, high = failure_bounds(model, time)
    return (low + high) / 2.0


class TestAggregationPreservesMeasures:
    @settings(max_examples=40, deadline=None)
    @given(model=random_closed_ioimc(), time=st.floats(min_value=0.1, max_value=3.0))
    def test_weak_aggregation_preserves_failure_probability(self, model, time):
        """Both the best- and worst-case failure probabilities are preserved.

        Aggregation may turn a (spuriously) non-deterministic model into a
        deterministic one; in that case the original bounds must already have
        coincided with the reduced value.
        """
        reduced, _stats = aggregate(model)
        raw_low, raw_high = failure_bounds(model, time)
        red_low, red_high = failure_bounds(reduced, time)
        assert red_low == pytest.approx(raw_low, abs=1e-6)
        assert red_high == pytest.approx(raw_high, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(model=random_closed_ioimc())
    def test_aggregation_never_grows_the_model(self, model):
        reduced, stats = aggregate(model)
        assert reduced.num_states <= model.num_states
        assert stats.states_after <= stats.states_before

    @settings(max_examples=30, deadline=None)
    @given(model=random_closed_ioimc())
    def test_minimisation_is_idempotent(self, model):
        once, _ = aggregate(model)
        twice, _ = aggregate(once)
        assert twice.num_states == once.num_states

    @settings(max_examples=30, deadline=None)
    @given(model=random_closed_ioimc())
    def test_weak_at_most_strong_states(self, model):
        weak, _ = aggregate(model, AggregationOptions(method="weak"))
        strong, _ = aggregate(model, AggregationOptions(method="strong"))
        assert weak.num_states <= strong.num_states


class TestCompositionProperties:
    @settings(max_examples=30, deadline=None)
    @given(pair=random_producer_consumer(), time=st.floats(min_value=0.2, max_value=2.0))
    def test_composition_is_commutative_for_the_measure(self, pair, time):
        producer, consumer = pair
        left = parallel(producer, consumer).hide(["a"])
        right = parallel(consumer, producer).hide(["a"])
        assert failure_probability(left, time) == pytest.approx(
            failure_probability(right, time), abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(pair=random_producer_consumer())
    def test_composite_size_bounded_by_product(self, pair):
        producer, consumer = pair
        composite = parallel(producer, consumer)
        assert composite.num_states <= producer.num_states * consumer.num_states

    @settings(max_examples=30, deadline=None)
    @given(pair=random_producer_consumer(), time=st.floats(min_value=0.2, max_value=2.0))
    def test_aggregating_components_first_preserves_the_measure(self, pair, time):
        producer, consumer = pair
        direct = parallel(producer, consumer).hide(["a"])
        minimized = parallel(minimize_weak(producer), minimize_weak(consumer)).hide(["a"])
        assert failure_probability(minimized, time) == pytest.approx(
            failure_probability(direct, time), abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(pair=random_producer_consumer())
    def test_strong_minimisation_of_composite_sound(self, pair):
        producer, consumer = pair
        composite = parallel(producer, consumer).hide(["a"])
        reduced = minimize_strong(composite)
        assert failure_probability(reduced) == pytest.approx(
            failure_probability(composite), abs=1e-9
        )
