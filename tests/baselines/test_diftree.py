"""Tests for the modular DIFTree baseline."""

import pytest

from repro.baselines import DiftreeAnalyzer, diftree_unreliability
from repro.dft import FaultTreeBuilder
from repro.errors import AnalysisError
from repro.systems import cardiac_assist_system, cascaded_pand_system
from tests import analytic


class TestStaticSolving:
    def test_static_tree_solved_with_bdd(self, and_tree):
        analyzer = DiftreeAnalyzer(and_tree)
        result = analyzer.analyze(1.0)
        assert result.unreliability == pytest.approx(
            analytic.and_unreliability([1.0, 2.0], 1.0), abs=1e-12
        )
        assert all(not module.dynamic for module in result.modules)
        assert result.largest_chain_states == 0

    def test_nested_static_modules(self):
        builder = FaultTreeBuilder("nested")
        builder.basic_events(["A", "B", "C", "D"], failure_rate=2.0)
        builder.or_gate("Left", ["A", "B"])
        builder.or_gate("Right", ["C", "D"])
        builder.and_gate("Top", ["Left", "Right"])
        tree = builder.build("Top")
        result = DiftreeAnalyzer(tree).analyze(0.5)
        expected = analytic.or_unreliability([2.0, 2.0], 0.5) ** 2
        assert result.unreliability == pytest.approx(expected, abs=1e-12)
        assert len(result.modules) == 3

    def test_voting_tree(self):
        builder = FaultTreeBuilder("vote")
        builder.basic_events(["A", "B", "C"], failure_rate=1.0)
        builder.voting_gate("Top", ["A", "B", "C"], threshold=2)
        tree = builder.build("Top")
        assert diftree_unreliability(tree, 1.0) == pytest.approx(
            analytic.voting_unreliability([1.0, 1.0, 1.0], 2, 1.0), abs=1e-12
        )


class TestDynamicSolving:
    def test_dynamic_tree_single_module(self, cold_spare_tree):
        result = DiftreeAnalyzer(cold_spare_tree).analyze(1.0)
        assert len(result.modules) == 1
        assert result.modules[0].dynamic
        assert result.unreliability == pytest.approx(
            analytic.cold_spare_unreliability(1.0, 2.0, 1.0), abs=1e-9
        )

    def test_cas_module_structure(self):
        result = DiftreeAnalyzer(cardiac_assist_system()).analyze(1.0)
        dynamic = [m for m in result.modules if m.dynamic]
        static = [m for m in result.modules if not m.dynamic]
        assert {m.root for m in dynamic} == {"CPU_unit", "Motor_unit", "Pump_unit"}
        assert {m.root for m in static} == {"system"}
        # The paper reports the pump unit as the biggest module chain (8 states).
        pump = next(m for m in dynamic if m.root == "Pump_unit")
        assert pump.states == 8

    def test_cas_value_matches_paper(self):
        assert diftree_unreliability(cardiac_assist_system(), 1.0) == pytest.approx(
            0.6579, abs=5e-5
        )

    def test_cps_is_monolithic_and_matches_paper_sizes(self):
        result = DiftreeAnalyzer(cascaded_pand_system()).analyze(1.0)
        assert len(result.modules) == 1
        module = result.modules[0]
        assert module.dynamic
        assert module.states == 4113
        assert module.transitions == 24608
        assert result.unreliability == pytest.approx(0.00135, abs=5e-5)

    def test_repairable_tree_rejected(self, repairable_and_tree):
        with pytest.raises(AnalysisError):
            DiftreeAnalyzer(repairable_and_tree)

    def test_negative_time_rejected(self, and_tree):
        with pytest.raises(AnalysisError):
            DiftreeAnalyzer(and_tree).analyze(-1.0)

    def test_result_summary(self, and_tree):
        result = DiftreeAnalyzer(and_tree).analyze(1.0)
        assert "DIFTree" in result.summary()
        assert all("module" in m.summary() for m in result.modules)
