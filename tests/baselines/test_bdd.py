"""Tests for the ROBDD engine."""

import itertools

import pytest

from repro.baselines import BDDManager
from repro.errors import AnalysisError


class TestBasicOperations:
    def test_terminals(self):
        manager = BDDManager(["x"])
        assert manager.zero.is_terminal and manager.zero.value == 0
        assert manager.one.is_terminal and manager.one.value == 1

    def test_variable_node(self):
        manager = BDDManager(["x"])
        node = manager.var("x")
        assert node.low is manager.zero
        assert node.high is manager.one

    def test_unknown_variable(self):
        manager = BDDManager(["x"])
        with pytest.raises(AnalysisError):
            manager.var("y")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(AnalysisError):
            BDDManager(["x", "x"])

    def test_hash_consing(self):
        manager = BDDManager(["x", "y"])
        a = manager.apply_and(manager.var("x"), manager.var("y"))
        b = manager.apply_and(manager.var("x"), manager.var("y"))
        assert a is b

    def test_and_or_not_laws(self):
        manager = BDDManager(["x", "y"])
        x, y = manager.var("x"), manager.var("y")
        assert manager.apply_and(x, manager.one) is x
        assert manager.apply_and(x, manager.zero) is manager.zero
        assert manager.apply_or(x, manager.zero) is x
        assert manager.apply_or(x, manager.one) is manager.one
        assert manager.apply_not(manager.apply_not(x)) is x
        # De Morgan
        lhs = manager.apply_not(manager.apply_and(x, y))
        rhs = manager.apply_or(manager.apply_not(x), manager.apply_not(y))
        assert lhs is rhs

    def test_reduction_removes_redundant_tests(self):
        manager = BDDManager(["x", "y"])
        x = manager.var("x")
        # ite(y, x, x) == x regardless of y.
        assert manager.ite(manager.var("y"), x, x) is x


class TestProbability:
    def test_single_variable(self):
        manager = BDDManager(["x"])
        assert manager.probability(manager.var("x"), {"x": 0.3}) == pytest.approx(0.3)

    def test_and_probability(self):
        manager = BDDManager(["x", "y"])
        node = manager.apply_and(manager.var("x"), manager.var("y"))
        assert manager.probability(node, {"x": 0.3, "y": 0.5}) == pytest.approx(0.15)

    def test_or_probability(self):
        manager = BDDManager(["x", "y"])
        node = manager.apply_or(manager.var("x"), manager.var("y"))
        assert manager.probability(node, {"x": 0.3, "y": 0.5}) == pytest.approx(
            1 - 0.7 * 0.5
        )

    def test_voting_probability_matches_enumeration(self):
        names = ["a", "b", "c", "d"]
        probabilities = {"a": 0.1, "b": 0.25, "c": 0.4, "d": 0.6}
        manager = BDDManager(names)
        node = manager.at_least(2, [manager.var(n) for n in names])
        expected = 0.0
        for assignment in itertools.product([0, 1], repeat=4):
            if sum(assignment) < 2:
                continue
            term = 1.0
            for name, value in zip(names, assignment):
                term *= probabilities[name] if value else 1 - probabilities[name]
            expected += term
        assert manager.probability(node, probabilities) == pytest.approx(expected)

    def test_missing_probability_rejected(self):
        manager = BDDManager(["x"])
        with pytest.raises(AnalysisError):
            manager.probability(manager.var("x"), {})

    def test_invalid_probability_rejected(self):
        manager = BDDManager(["x"])
        with pytest.raises(AnalysisError):
            manager.probability(manager.var("x"), {"x": 1.5})

    def test_terminal_probabilities(self):
        manager = BDDManager(["x"])
        assert manager.probability(manager.one, {}) == 1.0
        assert manager.probability(manager.zero, {}) == 0.0


class TestStructuralQueries:
    def test_node_count(self):
        manager = BDDManager(["x", "y", "z"])
        node = manager.conjoin([manager.var(n) for n in ["x", "y", "z"]])
        assert manager.node_count(node) == 3
        assert manager.node_count(manager.one) == 0

    def test_minimal_cut_sets_and(self):
        manager = BDDManager(["x", "y"])
        node = manager.apply_and(manager.var("x"), manager.var("y"))
        assert manager.minimal_cut_sets(node) == [frozenset({"x", "y"})]

    def test_minimal_cut_sets_or(self):
        manager = BDDManager(["x", "y"])
        node = manager.apply_or(manager.var("x"), manager.var("y"))
        cut_sets = {frozenset(c) for c in manager.minimal_cut_sets(node)}
        assert cut_sets == {frozenset({"x"}), frozenset({"y"})}

    def test_minimal_cut_sets_voting(self):
        manager = BDDManager(["a", "b", "c"])
        node = manager.at_least(2, [manager.var(n) for n in ["a", "b", "c"]])
        cut_sets = {frozenset(c) for c in manager.minimal_cut_sets(node)}
        assert cut_sets == {
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        }

    def test_at_least_edge_cases(self):
        manager = BDDManager(["a"])
        assert manager.at_least(0, [manager.var("a")]) is manager.one
        assert manager.at_least(2, [manager.var("a")]) is manager.zero
