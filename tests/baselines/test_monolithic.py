"""Tests for the monolithic (DIFTree-style) Markov-chain generator."""

import pytest

from repro.baselines import MonolithicMarkovGenerator, monolithic_unreliability
from repro.dft import FaultTreeBuilder
from repro.errors import AnalysisError
from tests import analytic


class TestStateSpace:
    def test_and_tree_states(self, and_tree):
        result = MonolithicMarkovGenerator(and_tree).build()
        # Subsets of {A, B}: 4 states; the all-failed state is absorbing.
        assert result.num_states == 4
        assert result.num_transitions == 4
        assert result.num_failed_states == 1

    def test_or_tree_stops_at_failure(self, or_tree):
        result = MonolithicMarkovGenerator(or_tree).build()
        # Failure after a single event: 1 initial + 2 failed states.
        assert result.num_states == 3
        assert result.num_failed_states == 2

    def test_expand_failed_states_grows_the_chain(self, or_tree):
        absorbed = MonolithicMarkovGenerator(or_tree).build(expand_failed_states=False)
        expanded = MonolithicMarkovGenerator(or_tree).build(expand_failed_states=True)
        assert expanded.num_states >= absorbed.num_states

    def test_repairable_tree_rejected(self, repairable_and_tree):
        with pytest.raises(AnalysisError):
            MonolithicMarkovGenerator(repairable_and_tree)

    def test_summary(self, and_tree):
        result = MonolithicMarkovGenerator(and_tree).build()
        assert "states" in result.summary()


class TestNumericalAgreement:
    def test_and(self, and_tree):
        assert monolithic_unreliability(and_tree, 1.0) == pytest.approx(
            analytic.and_unreliability([1.0, 2.0], 1.0), abs=1e-9
        )

    def test_pand_in_order(self, pand_tree):
        assert monolithic_unreliability(pand_tree, 1.0) == pytest.approx(
            analytic.pand_two_unreliability(1.0, 2.0, 1.0), abs=1e-9
        )

    def test_cold_spare(self, cold_spare_tree):
        assert monolithic_unreliability(cold_spare_tree, 1.0) == pytest.approx(
            analytic.cold_spare_unreliability(1.0, 2.0, 1.0), abs=1e-9
        )

    def test_warm_spare(self, warm_spare_tree):
        assert monolithic_unreliability(warm_spare_tree, 1.0) == pytest.approx(
            analytic.warm_spare_unreliability(1.0, 2.0, 0.5, 1.0), abs=1e-9
        )

    def test_fdep(self, fdep_tree):
        expected = analytic.exp_cdf(1.5, 1.0) * analytic.exp_cdf(1.0, 1.0)
        assert monolithic_unreliability(fdep_tree, 1.0) == pytest.approx(expected, abs=1e-9)

    def test_shared_spare(self, shared_spare_tree):
        generator = [
            [-2.0, 2.0, 0.0, 0.0],
            [0.0, -2.0, 2.0, 0.0],
            [0.0, 0.0, -1.0, 1.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
        expected = analytic.ctmc_transient_probability(generator, 0, [3], 1.0)
        assert monolithic_unreliability(shared_spare_tree, 1.0) == pytest.approx(
            expected, abs=1e-9
        )


class TestStepperSemantics:
    def test_initial_activation(self, cold_spare_tree):
        generator = MonolithicMarkovGenerator(cold_spare_tree)
        state = generator.initial_state()
        assert "P" in state.active
        assert "S" not in state.active
        # Only the primary can fail initially (the spare is cold).
        assert [name for name, _ in generator.enabled_failures(state)] == ["P"]

    def test_spare_activated_after_primary_failure(self, cold_spare_tree):
        generator = MonolithicMarkovGenerator(cold_spare_tree)
        state = generator.fail(generator.initial_state(), "P")
        assert "S" in state.active
        assert dict(state.using)["Top"] == "S"
        assert not generator.is_system_failed(state)
        state = generator.fail(state, "S")
        assert generator.is_system_failed(state)

    def test_shared_spare_taken_once(self, shared_spare_tree):
        generator = MonolithicMarkovGenerator(shared_spare_tree)
        state = generator.fail(generator.initial_state(), "PA")
        assert dict(state.using)["GateA"] == "PS"
        assert "PS" in state.taken
        # GateB's primary fails next: the spare is gone, GateB fails.
        state = generator.fail(state, "PB")
        assert dict(state.using)["GateB"] is None
        assert "GateB" in state.failed
        assert not generator.is_system_failed(state)  # AND needs both gates
        state = generator.fail(state, "PS")
        assert generator.is_system_failed(state)

    def test_pand_wrong_order_disables(self, pand_tree):
        generator = MonolithicMarkovGenerator(pand_tree)
        state = generator.fail(generator.initial_state(), "B")
        state = generator.fail(state, "A")
        assert not generator.is_system_failed(state)
        assert dict(state.pand_progress)["Top"] == -1

    def test_fdep_simultaneity_resolved_left_to_right(self):
        builder = FaultTreeBuilder("race")
        builder.basic_events(["T", "A", "B"], failure_rate=1.0)
        builder.pand_gate("Top", ["A", "B"])
        builder.fdep("F", trigger="T", dependents=["A", "B"])
        tree = builder.build("Top")
        generator = MonolithicMarkovGenerator(tree)
        state = generator.fail(generator.initial_state(), "T")
        # Deterministic resolution: A and B count as failing in order.
        assert generator.is_system_failed(state)

    def test_inhibition_prevents_failure(self):
        builder = FaultTreeBuilder("inhibit")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        builder.inhibition("I", inhibitor="A", target="B")
        builder.or_gate("Top", ["B"])
        tree = builder.build("Top")
        generator = MonolithicMarkovGenerator(tree)
        state = generator.fail(generator.initial_state(), "A")
        assert "B" in state.inhibited
        assert [name for name, _ in generator.enabled_failures(state)] == []

    def test_seq_keeps_later_events_frozen(self):
        builder = FaultTreeBuilder("seq")
        builder.basic_events(["A", "B"], failure_rate=1.0)
        builder.seq_gate("Top", ["A", "B"])
        tree = builder.build("Top")
        generator = MonolithicMarkovGenerator(tree)
        initial = generator.initial_state()
        assert [name for name, _ in generator.enabled_failures(initial)] == ["A"]
        after_a = generator.fail(initial, "A")
        assert [name for name, _ in generator.enabled_failures(after_a)] == ["B"]

    def test_double_failure_rejected(self, and_tree):
        generator = MonolithicMarkovGenerator(and_tree)
        state = generator.fail(generator.initial_state(), "A")
        with pytest.raises(AnalysisError):
            generator.fail(state, "A")
