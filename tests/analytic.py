"""Closed-form ground-truth formulas used by several test modules.

All formulas assume exponentially distributed failure times and statistically
independent components unless stated otherwise.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import linalg


def exp_cdf(rate: float, time: float) -> float:
    """P(failure by ``time``) of a single exponential component."""
    return 1.0 - math.exp(-rate * time)


def and_unreliability(rates: Sequence[float], time: float) -> float:
    """All components failed by ``time``."""
    value = 1.0
    for rate in rates:
        value *= exp_cdf(rate, time)
    return value


def or_unreliability(rates: Sequence[float], time: float) -> float:
    """At least one component failed by ``time``."""
    return 1.0 - math.exp(-sum(rates) * time)


def voting_unreliability(rates: Sequence[float], threshold: int, time: float) -> float:
    """At least ``threshold`` of the components failed by ``time`` (brute force)."""
    n = len(rates)
    probability = 0.0
    for mask in range(2 ** n):
        failed = [i for i in range(n) if mask & (1 << i)]
        if len(failed) < threshold:
            continue
        term = 1.0
        for i in range(n):
            p = exp_cdf(rates[i], time)
            term *= p if i in failed else (1.0 - p)
        probability += term
    return probability


def pand_two_unreliability(rate_a: float, rate_b: float, time: float) -> float:
    """P(A fails before B and B fails before ``time``) for independent exponentials.

    ``P = ∫_0^t rate_a e^{-rate_a a} (F_B(t) - F_B(a)) da`` evaluated in closed
    form.
    """
    lam_a, lam_b, t = rate_a, rate_b, time
    # Direct integral: ∫_0^t lam_a e^{-lam_a a} (e^{-lam_b a} - e^{-lam_b t}) da
    combined = lam_a + lam_b
    part1 = lam_a / combined * (1.0 - math.exp(-combined * t))
    part2 = math.exp(-lam_b * t) * (1.0 - math.exp(-lam_a * t))
    return part1 - part2


def cold_spare_unreliability(primary_rate: float, spare_rate: float, time: float) -> float:
    """Primary then cold spare: hypo-exponential CDF."""
    if math.isclose(primary_rate, spare_rate):
        lam = primary_rate
        return 1.0 - math.exp(-lam * time) * (1.0 + lam * time)
    a, b = primary_rate, spare_rate
    return 1.0 - (b * math.exp(-a * time) - a * math.exp(-b * time)) / (b - a)


def warm_spare_unreliability(
    primary_rate: float, spare_rate: float, dormancy: float, time: float
) -> float:
    """Warm spare gate via its exact 4-state CTMC."""
    dormant_rate = dormancy * spare_rate
    generator = np.array(
        [
            [-(primary_rate + dormant_rate), primary_rate, dormant_rate, 0.0],
            [0.0, -spare_rate, 0.0, spare_rate],
            [0.0, 0.0, -primary_rate, primary_rate],
            [0.0, 0.0, 0.0, 0.0],
        ]
    )
    return float(linalg.expm(generator * time)[0, 3])


def repairable_component_unavailability(failure_rate: float, repair_rate: float) -> float:
    """Steady-state unavailability of one repairable component."""
    return failure_rate / (failure_rate + repair_rate)


def ctmc_transient_probability(generator: np.ndarray, initial: int, goal: Sequence[int], time: float) -> float:
    """Reference transient probability via a dense matrix exponential."""
    matrix = linalg.expm(np.asarray(generator, dtype=float) * time)
    return float(sum(matrix[initial, g] for g in goal))
