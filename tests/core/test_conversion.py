"""Tests for the DFT -> I/O-IMC community conversion (wiring, auxiliaries)."""

import pytest

from repro.core import ConversionOptions, DftToIoimcConverter, convert, signals
from repro.dft import FaultTreeBuilder
from repro.errors import ConversionError
from repro.systems import cardiac_assist_system, cascaded_pand_system


def member_names(community):
    return {member.name for member in community.members}


def kinds(community):
    return {member.name: member.kind for member in community.members}


class TestCommunityShape:
    def test_and_tree_community(self, and_tree):
        community = convert(and_tree)
        names = member_names(community)
        assert names == {"BE(A)", "BE(B)", "Gate(Top)", "Monitor(Top)"}
        assert community.top_fire_action == signals.fire("Top")

    def test_monitor_can_be_skipped(self, and_tree):
        community = convert(and_tree, ConversionOptions(include_monitor=False))
        assert "Monitor(Top)" not in member_names(community)

    def test_every_input_has_a_producer(self, shared_spare_tree):
        # The converter itself validates this; here we re-check explicitly.
        community = convert(shared_spare_tree)
        produced = set()
        for member in community.members:
            produced |= member.model.signature.outputs
        for member in community.members:
            assert member.model.signature.inputs <= produced

    def test_outputs_are_unique(self, shared_spare_tree):
        community = convert(shared_spare_tree)
        seen = set()
        for member in community.members:
            overlap = member.model.signature.outputs & seen
            assert not overlap
            seen |= member.model.signature.outputs

    def test_pre_aggregation_reduces_or_preserves_sizes(self, fdep_tree):
        raw = convert(fdep_tree, ConversionOptions(pre_aggregate=False))
        aggregated = convert(fdep_tree, ConversionOptions(pre_aggregate=True))
        assert aggregated.total_states <= raw.total_states

    def test_member_lookup(self, and_tree):
        community = convert(and_tree)
        assert community.member("BE(A)").element == "A"
        assert community.member_for_element("Top").kind == "gate"
        with pytest.raises(ConversionError):
            community.member("nope")
        with pytest.raises(ConversionError):
            community.member_for_element("nope")

    def test_summary_mentions_counts(self, and_tree):
        community = convert(and_tree)
        assert "I/O-IMC" in community.summary()


class TestFdepWiring:
    def test_firing_auxiliary_created(self, fdep_tree):
        community = convert(fdep_tree)
        assert "FA(A)" in member_names(community)
        assert kinds(community)["FA(A)"] == "firing_auxiliary"

    def test_dependent_output_renamed(self, fdep_tree):
        community = convert(fdep_tree)
        be_a = community.member("BE(A)").model
        assert signals.fire_isolated("A") in be_a.signature.outputs
        fa = community.member("FA(A)").model
        assert signals.fire("A") in fa.signature.outputs
        assert signals.fire_isolated("A") in fa.signature.inputs
        assert signals.fire("T") in fa.signature.inputs

    def test_fdep_gate_itself_has_no_model(self, fdep_tree):
        community = convert(fdep_tree)
        assert not any(member.element == "F" and member.kind == "gate" for member in community.members)

    def test_multiple_triggers_merge_into_one_auxiliary(self):
        builder = FaultTreeBuilder("multi-trigger")
        builder.basic_events(["T1", "T2", "A", "B"], failure_rate=1.0)
        builder.and_gate("Top", ["A", "B"])
        builder.fdep("F1", trigger="T1", dependents=["A"])
        builder.fdep("F2", trigger="T2", dependents=["A"])
        tree = builder.build("Top")
        community = convert(tree)
        fa = community.member("FA(A)").model
        assert signals.fire("T1") in fa.signature.inputs
        assert signals.fire("T2") in fa.signature.inputs
        assert sum(1 for m in community.members if m.kind == "firing_auxiliary") == 1

    def test_gate_valued_trigger_supported(self):
        cas = cardiac_assist_system()
        community = convert(cas)
        fa_p = community.member("FA(P)").model
        assert signals.fire("Trigger") in fa_p.signature.inputs


class TestActivationWiring:
    def test_hot_tree_has_no_activation_signals(self, and_tree):
        community = convert(and_tree)
        for member in community.members:
            for action in member.model.signature.all_actions:
                assert not action.startswith("act_")
                assert not action.startswith("claim_")

    def test_single_spare_gets_claim_as_activation(self, cold_spare_tree):
        community = convert(cold_spare_tree)
        spare = community.member("BE(S)").model
        claim = signals.claim("S", "Top")
        assert claim in spare.signature.inputs
        gate = community.member("Spare(Top)").model
        assert claim in gate.signature.outputs
        # Only one spare gate: no activation auxiliary needed.
        assert not any(m.kind == "activation_auxiliary" for m in community.members)

    def test_shared_spare_gets_activation_auxiliary(self, shared_spare_tree):
        community = convert(shared_spare_tree)
        assert "AA(PS)" in member_names(community)
        aa = community.member("AA(PS)").model
        assert signals.claim("PS", "GateA") in aa.signature.inputs
        assert signals.claim("PS", "GateB") in aa.signature.inputs
        assert signals.activate("PS") in aa.signature.outputs
        spare = community.member("BE(PS)").model
        assert signals.activate("PS") in spare.signature.inputs

    def test_competing_gates_listen_to_each_other(self, shared_spare_tree):
        community = convert(shared_spare_tree)
        gate_a = community.member("Spare(GateA)").model
        assert signals.claim("PS", "GateB") in gate_a.signature.inputs
        gate_b = community.member("Spare(GateB)").model
        assert signals.claim("PS", "GateA") in gate_b.signature.inputs

    def test_complex_spare_module_children_inherit_activation(self):
        from repro.systems import and_spare_system

        community = convert(and_spare_system())
        # The spare module's AND gate children C and D listen to the claim of
        # the module (single source, so the claim signal is wired directly).
        claim = signals.claim("spare", "system")
        for name in ("BE(C)", "BE(D)"):
            assert claim in community.member(name).model.signature.inputs

    def test_nested_spare_gate_activation(self):
        from repro.systems import nested_spare_system

        community = convert(nested_spare_system())
        inner_gate = community.member("Spare(spare)").model
        claim_module = signals.claim("spare", "system")
        # The inner spare gate itself is activated by the outer claim...
        assert claim_module in inner_gate.signature.inputs
        # ...its primary C inherits the same activation signal...
        assert claim_module in community.member("BE(C)").model.signature.inputs
        # ...but its own spare D is only activated by the inner gate's claim.
        be_d = community.member("BE(D)").model
        assert signals.claim("D", "spare") in be_d.signature.inputs
        assert claim_module not in be_d.signature.inputs

    def test_seq_inputs_activated_by_predecessor(self):
        builder = FaultTreeBuilder("seq")
        builder.basic_events(["A", "B", "C"], failure_rate=1.0)
        builder.seq_gate("Top", ["A", "B", "C"])
        tree = builder.build("Top")
        community = convert(tree)
        be_b = community.member("BE(B)").model
        assert signals.fire("A") in be_b.signature.inputs
        be_c = community.member("BE(C)").model
        assert signals.fire("B") in be_c.signature.inputs


class TestUnsupportedCombinations:
    def test_repairable_dynamic_gate_rejected(self):
        builder = FaultTreeBuilder("bad")
        builder.basic_event("A", 1.0, repair_rate=1.0)
        builder.basic_event("B", 1.0)
        builder.pand_gate("Top", ["A", "B"])
        tree = builder.build("Top")
        with pytest.raises(ConversionError):
            convert(tree)

    def test_repairable_fdep_dependent_rejected(self):
        builder = FaultTreeBuilder("bad")
        builder.basic_event("T", 1.0)
        builder.basic_event("A", 1.0, repair_rate=1.0)
        builder.or_gate("Top", ["A"])
        builder.fdep("F", trigger="T", dependents=["A"])
        tree = builder.build("Top")
        with pytest.raises(ConversionError):
            convert(tree)

    def test_fdep_and_inhibition_on_same_element_rejected(self):
        builder = FaultTreeBuilder("bad")
        builder.basic_events(["T", "I", "A"], failure_rate=1.0)
        builder.or_gate("Top", ["A"])
        builder.fdep("F", trigger="T", dependents=["A"])
        builder.inhibition("IA", inhibitor="I", target="A")
        tree = builder.build("Top")
        with pytest.raises(ConversionError):
            convert(tree)

    def test_seq_with_gate_input_rejected(self):
        builder = FaultTreeBuilder("bad")
        builder.basic_events(["A", "B", "C"], failure_rate=1.0)
        builder.and_gate("G", ["B", "C"])
        builder.seq_gate("Top", ["A", "G"])
        tree = builder.build("Top")
        with pytest.raises(ConversionError):
            convert(tree)


class TestElementaryModelSizes:
    def test_cps_module_models_are_small(self):
        cps = cascaded_pand_system()
        converter = DftToIoimcConverter(cps)
        community = converter.convert()
        for member in community.members:
            assert member.num_states <= 32

    def test_cas_community_size(self):
        community = convert(cardiac_assist_system())
        # 10 BEs + 9 logic gates (the FDEP has no model) + 2 firing auxiliaries
        # (P and B) + 1 activation auxiliary (shared pump spare PS) + monitor.
        assert len(community.members) == 23
        by_kind = {}
        for member in community.members:
            by_kind[member.kind] = by_kind.get(member.kind, 0) + 1
        assert by_kind == {
            "basic_event": 10,
            "gate": 9,
            "firing_auxiliary": 2,
            "activation_auxiliary": 1,
            "monitor": 1,
        }
