"""Chunked scheduling + the streaming JSONL batch sink (schema repro.batch/2)."""

import io
import json

import pytest

from repro import BatchStudy, Unreliability
from repro.core.results import (
    BATCH_ROW_SCHEMA,
    read_batch_jsonl,
    write_batch_jsonl,
)
from repro.dft import FaultTreeBuilder, galileo
from repro.errors import AnalysisError


def small_tree(name: str, rate: float):
    builder = FaultTreeBuilder(name)
    builder.basic_event("A", rate)
    builder.basic_event("B", 1.0)
    builder.and_gate("top", ["A", "B"])
    return builder.build(top="top")


@pytest.fixture
def corpus(tmp_path):
    """Three good Galileo files plus one corrupt one (an error row)."""
    paths = []
    for index in range(1, 4):
        tree = small_tree(f"t{index}", 0.5 * index)
        path = tmp_path / f"t{index}.dft"
        galileo.write_file(tree, str(path))
        paths.append(str(path))
    bad = tmp_path / "bad.dft"
    bad.write_text("this is not galileo\n")
    paths.append(str(bad))
    return paths


class TestIterRows:
    def test_serial_iteration_matches_run(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        streamed = list(batch.iter_rows())
        collected = batch.run().rows
        assert [row.to_dict()["name"] for row in streamed] == [
            row.to_dict()["name"] for row in collected
        ]
        assert [row.ok for row in streamed] == [row.ok for row in collected]

    def test_chunked_parallel_matches_serial_order(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        serial = [row.name for row in batch.iter_rows()]
        chunked = [row.name for row in batch.iter_rows(processes=2, chunk_size=1)]
        assert chunked == serial

    def test_chunk_size_must_be_positive(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        with pytest.raises(AnalysisError, match="chunk_size"):
            list(batch.iter_rows(processes=2, chunk_size=0))

    def test_processes_must_be_positive(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        with pytest.raises(AnalysisError, match="processes"):
            list(batch.iter_rows(processes=-2))


class TestJsonlRoundTrip:
    def test_rows_round_trip_to_the_same_batch_result(self, corpus):
        """The satellite acceptance check: in-memory rows -> sink -> back."""
        batch = BatchStudy(corpus, Unreliability([1.0]))
        in_memory = batch.run()
        assert in_memory.num_failed == 1  # the corrupt file

        sink = io.StringIO()
        write_batch_jsonl(iter(in_memory.rows), sink)
        sink.seek(0)
        restored = read_batch_jsonl(sink)

        assert len(restored) == len(in_memory)
        assert restored.num_failed == in_memory.num_failed
        # Loss-free at the JSON level, error rows included.
        assert [row.to_dict() for row in restored.rows] == [
            row.to_dict() for row in in_memory.rows
        ]

    def test_error_rows_survive_the_sink(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        sink = io.StringIO()
        batch.run(sink=sink)
        sink.seek(0)
        restored = read_batch_jsonl(sink)
        failed = [row for row in restored.rows if not row.ok]
        assert len(failed) == 1
        assert failed[0].result is None
        assert failed[0].error

    def test_streamed_result_keeps_truthful_aggregates(self, corpus):
        """A sink run must not report a failing corpus as clean just because
        the rows live on disk."""
        batch = BatchStudy(corpus, Unreliability([1.0]))
        result = batch.run(sink=io.StringIO())
        assert result.rows == ()
        assert len(result) == 4
        assert result.num_failed == 1
        assert result.num_ok == 3
        assert result.tree_seconds > 0.0
        assert "4 trees analysed (1 failed)" in result.summary()

    def test_restored_results_survive_pickle_and_deepcopy(self, corpus):
        """RestoredStatistics must not recurse on dunder probes."""
        import copy
        import pickle

        batch = BatchStudy(corpus, Unreliability([1.0]))
        sink = io.StringIO()
        batch.run(sink=sink)
        sink.seek(0)
        restored = read_batch_jsonl(sink)
        for clone in (pickle.loads(pickle.dumps(restored)), copy.deepcopy(restored)):
            assert [row.to_dict() for row in clone.rows] == [
                row.to_dict() for row in restored.rows
            ]

    def test_sink_records_are_self_describing(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        sink = io.StringIO()
        result = batch.run(sink=sink, processes=2, chunk_size=2)
        # streaming mode returns the aggregate (rows live in the sink)
        assert result.rows == ()
        assert result.processes == 2
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert all(record["schema"] == BATCH_ROW_SCHEMA for record in lines)
        assert [record["kind"] for record in lines[:-1]] == ["row"] * (len(lines) - 1)
        assert lines[-1]["kind"] == "aggregate"
        assert lines[-1]["trees"] == 4
        assert lines[-1]["failed"] == 1

    def test_truncated_sink_reconstructs_from_rows(self, corpus):
        batch = BatchStudy(corpus, Unreliability([1.0]))
        sink = io.StringIO()
        batch.run(sink=sink)
        # drop the trailing aggregate record (an interrupted run)
        lines = sink.getvalue().splitlines()[:-1]
        restored = read_batch_jsonl(io.StringIO("\n".join(lines)))
        assert len(restored) == 4

    def test_reader_rejects_foreign_schemas(self):
        with pytest.raises(AnalysisError, match="schema"):
            read_batch_jsonl(io.StringIO('{"schema": "other/1", "kind": "row"}\n'))

    def test_reader_rejects_garbage(self):
        with pytest.raises(AnalysisError, match="not valid JSON"):
            read_batch_jsonl(io.StringIO("not json\n"))


class TestStreamingEquivalence:
    def test_streamed_rows_equal_in_memory_rows(self, corpus):
        """batch --output-jsonl produces the same rows as the in-memory path
        (modulo wall-clock timings, which belong to each run)."""
        query = Unreliability([1.0])
        in_memory = BatchStudy(corpus, query).run()
        sink = io.StringIO()
        BatchStudy(corpus, query).run(sink=sink)
        sink.seek(0)
        restored = read_batch_jsonl(sink)

        def normalise(row):
            payload = row.to_dict()
            payload.pop("wall_seconds", None)
            result = payload.get("result")
            if result:
                result.pop("timings", None)
            return payload

        assert [normalise(row) for row in restored.rows] == [
            normalise(row) for row in in_memory.rows
        ]
