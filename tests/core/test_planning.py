"""Tests for the aggregation planner and the shared-action index."""

import pytest

from repro.core import (
    CompositionalAggregator,
    CompositionalAggregationOptions,
    SharedActionIndex,
    build_plan,
    compositional_aggregate,
    convert,
)
from repro.ctmc import markov_model_from_ioimc
from repro.ioimc import IOIMC, signature
from repro.systems import cardiac_assist_system, cascaded_pand_system


def _small_model(name: str, inputs=(), outputs=()) -> IOIMC:
    model = IOIMC(name, signature(inputs=inputs, outputs=outputs))
    model.add_state(initial=True)
    return model


class TestSharedActionIndex:
    def test_communicating_pairs_only(self):
        index = SharedActionIndex()
        index.add(0, _small_model("a", outputs=["x"]))
        index.add(1, _small_model("b", inputs=["x"]))
        index.add(2, _small_model("c", outputs=["y"]))
        pairs = set(index.communicating_pairs())
        assert pairs == {(0, 1)}

    def test_remove_updates_index(self):
        index = SharedActionIndex()
        index.add(0, _small_model("a", outputs=["x"]))
        index.add(1, _small_model("b", inputs=["x"]))
        index.remove(0)
        assert set(index.communicating_pairs()) == set()
        assert len(index) == 1

    def test_restricted_enumeration(self):
        index = SharedActionIndex()
        index.add(0, _small_model("a", outputs=["x"]))
        index.add(1, _small_model("b", inputs=["x"]))
        index.add(2, _small_model("c", inputs=["x"]))
        assert set(index.communicating_pairs(frozenset({0, 2}))) == {(0, 2)}

    def test_shared_count(self):
        index = SharedActionIndex()
        index.add(0, _small_model("a", outputs=["x", "y"]))
        index.add(1, _small_model("b", inputs=["x", "y"]))
        assert index.shared_count(0, 1) == 2


class TestPlanStructure:
    def test_cps_plan_collapses_modules_innermost_first(self):
        community = convert(cascaded_pand_system())
        plan = build_plan(community)
        # The AND modules A, C, D and the inner PAND B are all independent
        # modules and must be collapsed before the top residue.
        order = plan.module_order
        assert set(order) >= {"A", "B", "C", "D"}
        assert order.index("C") < order.index("B")
        assert order.index("D") < order.index("B")
        # Every community member is assigned exactly once.
        assigned = [
            index for node in plan.root.walk() for index in node.member_indices
        ]
        assert sorted(assigned) == list(range(len(community.members)))

    def test_cps_module_groups_contain_their_events(self):
        community = convert(cascaded_pand_system())
        plan = build_plan(community)
        by_root = {node.root: node for node in plan.root.walk()}
        module_a = by_root["A"]
        elements = {community.members[i].element for i in module_a.member_indices}
        assert elements == {"A", "A1", "A2", "A3", "A4"}

    def test_describe_mentions_modules(self):
        community = convert(cascaded_pand_system())
        plan = build_plan(community)
        description = plan.describe()
        assert "A" in description and "member" in description


class TestModularOrdering:
    @pytest.mark.parametrize("system", [cascaded_pand_system, cardiac_assist_system])
    def test_modular_matches_linked_measure(self, system):
        community = convert(system())
        linked, _ = compositional_aggregate(community.models(), ordering="linked")
        modular, stats = compositional_aggregate(
            community.models(), ordering="modular", community=community
        )
        value_linked = markov_model_from_ioimc(linked).probability_of_label("failed", 1.0)
        value_modular = markov_model_from_ioimc(modular).probability_of_label("failed", 1.0)
        assert value_modular == pytest.approx(value_linked, abs=1e-9)
        assert stats.final_states == modular.num_states

    def test_modular_peak_not_worse_than_linked(self):
        community = convert(cardiac_assist_system())
        _, linked_stats = compositional_aggregate(community.models(), ordering="linked")
        _, modular_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community
        )
        assert modular_stats.peak_product_states <= linked_stats.peak_product_states

    def test_modular_without_community_degrades_to_linked(self):
        community = convert(cascaded_pand_system())
        modular, _ = compositional_aggregate(community.models(), ordering="modular")
        linked, _ = compositional_aggregate(community.models(), ordering="linked")
        assert modular.num_states == linked.num_states
        assert modular.num_transitions == linked.num_transitions

    def test_modular_is_a_known_strategy(self):
        options = CompositionalAggregationOptions(ordering="modular")
        assert options.ordering == "modular"

    def test_fuse_toggle_preserves_measures(self):
        community = convert(cascaded_pand_system())
        fused, fused_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community, fuse=True
        )
        unfused, unfused_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community, fuse=False
        )
        value_fused = markov_model_from_ioimc(fused).probability_of_label("failed", 1.0)
        value_unfused = markov_model_from_ioimc(unfused).probability_of_label("failed", 1.0)
        assert value_fused == pytest.approx(value_unfused, abs=1e-9)
        assert fused_stats.peak_product_transitions <= unfused_stats.peak_product_transitions


class TestEngineWithPlan:
    def test_aggregator_accepts_community(self):
        community = convert(cascaded_pand_system())
        aggregator = CompositionalAggregator(
            community.models(),
            CompositionalAggregationOptions(ordering="modular"),
            community=community,
        )
        final, stats = aggregator.run()
        assert final.num_states == stats.final_states
        assert len(stats.steps) == len(community.members) - 1
