"""Parallel modular aggregation: worker fan-out must be invisible in results.

Independent module groups of the ``modular`` plan collapse in separate worker
processes; the engine's contract is that the parallel run is *identical* to a
serial one — same composition steps in the same order, same hidden actions,
and a structurally identical final model.  Models cross the process boundary
by pickle, which must remap interned action ids by name (the interner is
process-local).
"""

import pickle

import pytest

from repro.core import compositional_aggregate, convert
from repro.core.aggregation import CompositionalAggregationOptions
from repro.errors import CompositionError
from repro.ioimc import IOIMC, signature
from repro.ioimc.actions import intern_action
from repro.systems import (
    cardiac_assist_system,
    cascaded_pand_system,
    mutually_exclusive_switch,
)


def _demo_model() -> IOIMC:
    model = IOIMC("demo", signature(inputs=("a",), outputs=("b",), internals=("t",)))
    for _ in range(3):
        model.add_state()
    model.set_initial(0)
    model.add_interactive(0, "a", 1)
    model.add_interactive(1, "b", 2)
    model.add_interactive(0, "t", 2)
    model.add_markovian(2, 0.5, 0)
    return model


class TestIoimcPickling:
    def test_round_trip_preserves_structure(self):
        model = _demo_model()
        clone = pickle.loads(pickle.dumps(model))
        clone.validate()
        assert clone.to_dot() == model.to_dot()
        assert clone.num_transitions == model.num_transitions
        assert clone.initial == model.initial

    def test_setstate_remaps_action_ids_by_name(self):
        # Simulate a receiving process whose interner assigned different ids:
        # shift every id in the pickled state; __setstate__ must recover the
        # structure by re-interning the names.
        model = _demo_model()
        state = model.__getstate__()
        shift = 100000
        state["actions"] = {
            aid + shift: name for aid, name in state["actions"].items()
        }
        state["itrans"] = [
            [(aid + shift, target) for aid, target in pairs]
            for pairs in state["itrans"]
        ]
        clone = IOIMC.__new__(IOIMC)
        clone.__setstate__(state)
        clone.validate()
        assert clone.to_dot() == model.to_dot()

    def test_signature_pickle_drops_cached_id_views(self):
        sig = signature(inputs=("px",), outputs=("py",))
        assert sig.input_ids  # populate the per-process cached view
        clone = pickle.loads(pickle.dumps(sig))
        assert "input_ids" not in clone.__dict__  # stale ids must not travel
        assert clone.inputs == sig.inputs
        assert clone.input_ids == {intern_action("px")}


class TestOptions:
    def test_processes_must_be_positive(self):
        with pytest.raises(CompositionError):
            CompositionalAggregationOptions(processes=0)

    def test_serial_default(self):
        assert CompositionalAggregationOptions().processes == 1


@pytest.mark.parametrize(
    "maker",
    [cascaded_pand_system, cardiac_assist_system],
    ids=lambda maker: maker.__name__,
)
class TestParallelModularAggregation:
    def test_identical_to_serial(self, maker):
        community = convert(maker())
        serial, serial_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community
        )
        parallel, parallel_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community, processes=2
        )
        # Step-for-step identity: same pairs, same hidden actions, same sizes.
        assert [step.to_dict() for step in serial_stats.steps] == [
            step.to_dict() for step in parallel_stats.steps
        ]
        # Structural identity of the final quotient, not just size equality.
        assert parallel.to_dot() == serial.to_dot()


class TestDegenerateFanOut:
    def test_single_module_plan_falls_back_to_serial(self):
        # Fewer than two parallelisable module groups: the engine must run
        # the plain serial recursion (and still produce the serial result).
        community = convert(mutually_exclusive_switch())
        serial, serial_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community
        )
        parallel, parallel_stats = compositional_aggregate(
            community.models(), ordering="modular", community=community, processes=4
        )
        assert parallel.to_dot() == serial.to_dot()
        assert len(parallel_stats.steps) == len(serial_stats.steps)

    def test_flat_orderings_ignore_processes(self):
        community = convert(cascaded_pand_system())
        serial, _ = compositional_aggregate(community.models(), ordering="linked")
        parallel, _ = compositional_aggregate(
            community.models(), ordering="linked", processes=3
        )
        assert parallel.to_dot() == serial.to_dot()
