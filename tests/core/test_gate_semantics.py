"""Tests for the elementary I/O-IMC of static gates, PAND, FDEP and auxiliaries."""

import pytest

from repro.core.semantics import (
    ActivationAuxiliaryBehavior,
    FiringAuxiliaryBehavior,
    InhibitionAuxiliaryBehavior,
    MonitorBehavior,
    PandGateBehavior,
    RepairableStaticGateBehavior,
    StaticGateBehavior,
)


def fire_path(model, actions):
    """Follow the given input actions from the initial state, interleaving the
    urgent output transitions, and return the set of output actions emitted."""
    state = model.initial
    emitted = []
    for action in actions:
        targets = model.interactive_on(state, action)
        state = targets[0] if targets else state
        # Take urgent outputs greedily.
        while True:
            outputs = [
                (a, t)
                for a, t in model.interactive_out(state)
                if a in model.signature.outputs
            ]
            if not outputs:
                break
            emitted.append(outputs[0][0])
            state = outputs[0][1]
    return emitted, state


class TestStaticGateBehavior:
    def test_and_gate_fires_after_all_inputs(self):
        model = StaticGateBehavior("G", ["fa", "fb"], threshold=2, fire_action="fg").to_ioimc()
        emitted, _ = fire_path(model, ["fa"])
        assert emitted == []
        emitted, _ = fire_path(model, ["fa", "fb"])
        assert emitted == ["fg"]

    def test_or_gate_fires_on_first_input(self):
        model = StaticGateBehavior("G", ["fa", "fb"], threshold=1, fire_action="fg").to_ioimc()
        emitted, _ = fire_path(model, ["fb"])
        assert emitted == ["fg"]

    def test_voting_gate_threshold(self):
        model = StaticGateBehavior(
            "G", ["f1", "f2", "f3"], threshold=2, fire_action="fg"
        ).to_ioimc()
        emitted, _ = fire_path(model, ["f1"])
        assert emitted == []
        emitted, _ = fire_path(model, ["f1", "f3"])
        assert emitted == ["fg"]

    def test_gate_fires_exactly_once(self):
        model = StaticGateBehavior("G", ["fa", "fb"], threshold=1, fire_action="fg").to_ioimc()
        emitted, _ = fire_path(model, ["fa", "fb"])
        assert emitted == ["fg"]

    def test_no_markovian_transitions(self):
        model = StaticGateBehavior("G", ["fa", "fb"], threshold=2, fire_action="fg").to_ioimc()
        assert all(model.exit_rate(s) == 0.0 for s in model.states())

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            StaticGateBehavior("G", ["fa"], threshold=2, fire_action="fg")

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError):
            StaticGateBehavior("G", ["fa", "fa"], threshold=1, fire_action="fg")


class TestRepairableStaticGateBehavior:
    def test_fail_and_repair_cycle(self):
        model = RepairableStaticGateBehavior(
            "G",
            input_fire_actions=["fa", "fb"],
            repair_to_fire={"ra": "fa", "rb": "fb"},
            threshold=2,
            fire_action="fg",
            repair_action="rg",
        ).to_ioimc()
        emitted, state = fire_path(model, ["fa", "fb"])
        assert emitted == ["fg"]
        emitted, _ = fire_path(model, ["fa", "fb", "ra"])
        assert emitted == ["fg", "rg"]

    def test_repair_below_threshold_noop(self):
        model = RepairableStaticGateBehavior(
            "G",
            input_fire_actions=["fa", "fb"],
            repair_to_fire={"ra": "fa", "rb": "fb"},
            threshold=2,
            fire_action="fg",
            repair_action="rg",
        ).to_ioimc()
        emitted, _ = fire_path(model, ["fa", "ra"])
        assert emitted == []

    def test_partial_repair_keeps_or_gate_failed(self):
        model = RepairableStaticGateBehavior(
            "G",
            input_fire_actions=["fa", "fb"],
            repair_to_fire={"ra": "fa", "rb": "fb"},
            threshold=1,
            fire_action="fg",
            repair_action="rg",
        ).to_ioimc()
        emitted, _ = fire_path(model, ["fa", "fb", "ra"])
        # Still one failed input: no repair announcement yet.
        assert emitted == ["fg"]
        emitted, _ = fire_path(model, ["fa", "fb", "ra", "rb"])
        assert emitted == ["fg", "rg"]

    def test_unknown_repair_reference_rejected(self):
        with pytest.raises(ValueError):
            RepairableStaticGateBehavior(
                "G",
                input_fire_actions=["fa"],
                repair_to_fire={"rb": "fb"},
                threshold=1,
                fire_action="fg",
                repair_action="rg",
            )


class TestPandGateBehavior:
    def test_in_order_failure_fires(self):
        model = PandGateBehavior("P", ["fa", "fb"], "fp").to_ioimc()
        emitted, _ = fire_path(model, ["fa", "fb"])
        assert emitted == ["fp"]

    def test_out_of_order_disables(self):
        model = PandGateBehavior("P", ["fa", "fb"], "fp").to_ioimc()
        emitted, state = fire_path(model, ["fb", "fa"])
        assert emitted == []
        # The disabled state is operational and absorbing.
        assert model.exit_rate(state) == 0.0
        assert not list(model.interactive_out(state))

    def test_three_input_order(self):
        model = PandGateBehavior("P", ["f1", "f2", "f3"], "fp").to_ioimc()
        emitted, _ = fire_path(model, ["f1", "f2", "f3"])
        assert emitted == ["fp"]
        emitted, _ = fire_path(model, ["f1", "f3"])
        assert emitted == []

    def test_structure_matches_figure4(self):
        # Two-input PAND: progress 0, progress 1, firing, fired, disabled.
        model = PandGateBehavior("P", ["fa", "fb"], "fp").to_ioimc()
        assert model.num_states == 5

    def test_single_input_rejected(self):
        with pytest.raises(ValueError):
            PandGateBehavior("P", ["fa"], "fp")


class TestFiringAuxiliary:
    def test_own_failure_forwarded(self):
        model = FiringAuxiliaryBehavior("A", "failstar_A", ["fail_T"], "fail_A").to_ioimc()
        emitted, _ = fire_path(model, ["failstar_A"])
        assert emitted == ["fail_A"]

    def test_trigger_fails_dependent(self):
        model = FiringAuxiliaryBehavior("A", "failstar_A", ["fail_T"], "fail_A").to_ioimc()
        emitted, _ = fire_path(model, ["fail_T"])
        assert emitted == ["fail_A"]

    def test_fires_only_once(self):
        model = FiringAuxiliaryBehavior("A", "failstar_A", ["fail_T"], "fail_A").to_ioimc()
        emitted, _ = fire_path(model, ["fail_T", "failstar_A"])
        assert emitted == ["fail_A"]

    def test_multiple_triggers(self):
        model = FiringAuxiliaryBehavior(
            "A", "failstar_A", ["fail_T1", "fail_T2"], "fail_A"
        ).to_ioimc()
        emitted, _ = fire_path(model, ["fail_T2"])
        assert emitted == ["fail_A"]

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError):
            FiringAuxiliaryBehavior("A", "failstar_A", [], "fail_A")


class TestInhibitionAuxiliary:
    def test_target_first_forwards(self):
        model = InhibitionAuxiliaryBehavior("B", "failstar_B", ["fail_A"], "fail_B").to_ioimc()
        emitted, _ = fire_path(model, ["failstar_B"])
        assert emitted == ["fail_B"]

    def test_inhibitor_first_blocks(self):
        model = InhibitionAuxiliaryBehavior("B", "failstar_B", ["fail_A"], "fail_B").to_ioimc()
        emitted, _ = fire_path(model, ["fail_A", "failstar_B"])
        assert emitted == []

    def test_needs_an_inhibitor(self):
        with pytest.raises(ValueError):
            InhibitionAuxiliaryBehavior("B", "failstar_B", [], "fail_B")


class TestActivationAuxiliary:
    def test_any_source_activates(self):
        model = ActivationAuxiliaryBehavior("S", ["claim_S_by_G1", "claim_S_by_G2"], "act_S").to_ioimc()
        emitted, _ = fire_path(model, ["claim_S_by_G2"])
        assert emitted == ["act_S"]

    def test_activates_only_once(self):
        model = ActivationAuxiliaryBehavior("S", ["c1", "c2"], "act_S").to_ioimc()
        emitted, _ = fire_path(model, ["c1", "c2"])
        assert emitted == ["act_S"]

    def test_needs_sources(self):
        with pytest.raises(ValueError):
            ActivationAuxiliaryBehavior("S", [], "act_S")


class TestMonitor:
    def test_failure_labelling(self):
        model = MonitorBehavior("Top", "fail_Top").to_ioimc()
        assert model.labels(model.initial) == frozenset()
        (failed,) = model.interactive_on(model.initial, "fail_Top")
        assert "failed" in model.labels(failed)

    def test_non_repairable_failed_state_absorbing(self):
        model = MonitorBehavior("Top", "fail_Top").to_ioimc()
        (failed,) = model.interactive_on(model.initial, "fail_Top")
        assert not list(model.interactive_out(failed))

    def test_repairable_monitor_toggles(self):
        model = MonitorBehavior("Top", "fail_Top", repair_action="rep_Top").to_ioimc()
        (failed,) = model.interactive_on(model.initial, "fail_Top")
        (repaired,) = model.interactive_on(failed, "rep_Top")
        assert repaired == model.initial
