"""Tests for non-determinism detection (paper Section 4.4, Figure 6)."""

import pytest

from repro.core import detect_nondeterminism
from repro.systems import pand_race_system, shared_spare_race_system
from tests import analytic


class TestPandRace:
    def test_detected(self):
        report = detect_nondeterminism(pand_race_system(), time=1.0)
        assert report.nondeterministic
        assert report.choice_states >= 1
        assert report.spread > 0.0
        assert "non-deterministic" in report.summary()

    def test_bounds_bracket_the_two_resolutions(self):
        """The lower bound corresponds to never counting the simultaneous
        failure as ordered, the upper bound to always counting it."""
        report = detect_nondeterminism(pand_race_system(), time=1.0)
        low, high = report.bounds
        # Without the trigger the PAND value would be the ordered-failure
        # probability of two exponentials with the trigger folded in; the
        # bounds must bracket both extremes strictly.
        assert 0.0 < low < high < 1.0
        # The pessimistic bound includes every trigger-first scenario, so it is
        # at least the probability that the trigger fires before time 1.
        assert high >= analytic.exp_cdf(1.0, 1.0) * 0.5

    def test_deterministic_system_reports_point_value(self, and_tree):
        report = detect_nondeterminism(and_tree, time=1.0)
        assert not report.nondeterministic
        assert report.choice_states == 0
        assert report.spread == pytest.approx(0.0)
        assert report.bounds[0] == pytest.approx(
            analytic.and_unreliability([1.0, 2.0], 1.0), abs=1e-9
        )
        assert "deterministic" in report.summary()


class TestSharedSpareRace:
    def test_race_is_measure_insensitive_with_symmetric_top(self):
        """Figure 6b: which gate grabs the spare is non-deterministic, but with
        a symmetric OR top the unreliability does not depend on it; the
        interval collapses (possibly after aggregation removed the choice)."""
        report = detect_nondeterminism(shared_spare_race_system(), time=1.0)
        low, high = report.bounds
        assert high - low == pytest.approx(0.0, abs=1e-6)

    def test_bounds_are_probabilities(self):
        report = detect_nondeterminism(shared_spare_race_system(), time=2.0)
        assert 0.0 <= report.bounds[0] <= report.bounds[1] <= 1.0
