"""Tests for the compositional aggregation engine."""

import pytest

from repro.core import (
    CompositionalAggregationOptions,
    CompositionalAggregator,
    compositional_aggregate,
    convert,
)
from repro.ctmc import markov_model_from_ioimc
from repro.errors import CompositionError
from repro.ioimc import AggregationOptions


class TestEngineBasics:
    def test_empty_community_rejected(self):
        with pytest.raises(CompositionError):
            CompositionalAggregator([])

    def test_unknown_ordering_rejected(self):
        with pytest.raises(CompositionError):
            CompositionalAggregationOptions(ordering="random")

    def test_single_model_community(self, and_tree):
        community = convert(and_tree)
        only = community.member("BE(A)").model
        final, stats = compositional_aggregate([only])
        assert final.num_states >= 1
        assert stats.steps == []
        assert stats.final_states == final.num_states

    def test_runs_to_single_model(self, and_tree):
        community = convert(and_tree)
        final, stats = compositional_aggregate(community.models())
        assert len(stats.steps) == len(community.members) - 1
        assert stats.final_states == final.num_states
        # Everything has been hidden: the final model is closed.
        assert final.signature.inputs == frozenset()
        assert final.signature.outputs == frozenset()

    def test_statistics_record_peaks(self, shared_spare_tree):
        community = convert(shared_spare_tree)
        _final, stats = compositional_aggregate(community.models())
        assert stats.peak_product_states >= stats.peak_reduced_states
        assert stats.peak_product_states >= stats.final_states
        assert stats.peak_product_transitions >= 1
        assert "peak" in stats.summary()

    def test_hidden_actions_recorded(self, and_tree):
        community = convert(and_tree)
        _final, stats = compositional_aggregate(community.models())
        hidden = {action for step in stats.steps for action in step.hidden_actions}
        assert "fail_A" in hidden
        assert "fail_Top" in hidden

    def test_keep_visible_respected(self, and_tree):
        community = convert(and_tree)
        final, _stats = compositional_aggregate(
            community.models(), keep_visible=["fail_Top"]
        )
        assert "fail_Top" in final.signature.outputs


class TestOrderings:
    @pytest.mark.parametrize("ordering", ["linked", "smallest", "sequential"])
    def test_all_orderings_produce_equivalent_measures(self, shared_spare_tree, ordering):
        community = convert(shared_spare_tree)
        final, _ = compositional_aggregate(community.models(), ordering=ordering)
        value = markov_model_from_ioimc(final).probability_of_label("failed", 1.0)
        reference_final, _ = compositional_aggregate(community.models(), ordering="linked")
        reference = markov_model_from_ioimc(reference_final).probability_of_label("failed", 1.0)
        assert value == pytest.approx(reference, abs=1e-9)

    def test_linked_ordering_prefers_communicating_pairs(self, fdep_tree):
        community = convert(fdep_tree)
        _final, stats = compositional_aggregate(community.models(), ordering="linked")
        first = stats.steps[0]
        left = community.member(first.left).model
        right = community.member(first.right).model
        assert left.signature.visible & right.signature.visible

    def test_weak_vs_strong_aggregation_equivalent_measure(self, shared_spare_tree):
        community = convert(shared_spare_tree)
        weak_final, weak_stats = compositional_aggregate(
            community.models(), aggregation=AggregationOptions(method="weak")
        )
        strong_final, strong_stats = compositional_aggregate(
            community.models(), aggregation=AggregationOptions(method="strong")
        )
        weak_value = markov_model_from_ioimc(weak_final).probability_of_label("failed", 1.0)
        strong_value = markov_model_from_ioimc(strong_final).probability_of_label("failed", 1.0)
        assert weak_value == pytest.approx(strong_value, abs=1e-9)
        assert weak_stats.peak_reduced_states <= strong_stats.peak_reduced_states
