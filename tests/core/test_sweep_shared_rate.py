"""Shared uniformisation across a sweep grid (one Poisson table per sweep).

``share_uniformisation=True`` scans the grid for the largest natural
uniformisation rate and loads every sample at that rate, so the transient
kernel keeps one Poisson term table for the whole grid.  The defence is a
differential: every row must agree with the per-sample-rate baseline to
1e-9 — uniformisation is exact in the rate as long as the rate dominates
every exit rate, so this is a pure performance knob.
"""

import pytest

from repro import RateSweep, Unreliability
from repro.core.sweep import SweepStudy, _SweepPlan, _scan_shared_rate
from repro.ctmc.kernel import CsrBuffer
from repro.dft import FaultTreeBuilder

TOLERANCE = 1e-9
MISSION_TIMES = [0.5, 1.0, 2.0]


def wide_range_tree():
    """Rates spanning two orders of magnitude make the rates genuinely differ."""
    builder = FaultTreeBuilder("shared-rate")
    builder.parameter("lam", 0.5)
    builder.parameter("mu", 2.0)
    builder.basic_event("A", param="lam")
    builder.basic_event("B", failure_rate=1.0)
    builder.basic_event("S", param="mu", dormancy=0.3)
    builder.spare_gate("G", primary="A", spares=["S"])
    builder.and_gate("top", ["G", "B"])
    return builder.build(top="top")


def _grid():
    return RateSweep.grid(
        Unreliability(MISSION_TIMES), lam=[0.05, 0.5, 5.0], mu=[0.2, 2.0]
    )


class TestSharedUniformisation:
    def test_rows_match_per_sample_rates(self):
        baseline = SweepStudy(wide_range_tree()).run(_grid())
        shared = SweepStudy(wide_range_tree()).run(_grid(), share_uniformisation=True)
        assert len(shared.rows) == len(baseline.rows)
        for ours, theirs in zip(shared.rows, baseline.rows):
            assert ours.sample == theirs.sample
            for mine, ref in zip(ours.measures, theirs.measures):
                for a, b in zip(mine.values, ref.values):
                    assert a == pytest.approx(b, abs=TOLERANCE)

    def test_parallel_rows_match_too(self):
        baseline = SweepStudy(wide_range_tree()).run(_grid())
        shared = SweepStudy(wide_range_tree()).run(
            _grid(), processes=2, share_uniformisation=True
        )
        for ours, theirs in zip(shared.rows, baseline.rows):
            for mine, ref in zip(ours.measures, theirs.measures):
                for a, b in zip(mine.values, ref.values):
                    assert a == pytest.approx(b, abs=TOLERANCE)

    def test_shared_rate_dominates_every_sample(self):
        study = SweepStudy(wide_range_tree())
        result = study.run(_grid(), share_uniformisation=True)
        shared_rate = result.options["shared_uniformisation_rate"]
        skeleton = study.skeleton
        buffer = CsrBuffer(skeleton)
        plan = _SweepPlan(
            skeleton=skeleton,
            declared=dict(study.tree.parameters),
            query=Unreliability(MISSION_TIMES),
            tolerance=1e-12,
        )
        for sample in _grid().samples:
            assert buffer.max_exit_rate(plan.assignment_of(sample)) <= (
                shared_rate + 1e-12
            )

    def test_option_absent_without_the_flag(self):
        result = SweepStudy(wide_range_tree()).run(_grid())
        assert "shared_uniformisation_rate" not in result.options

    def test_nondeterministic_sweep_shares_the_rate_too(self):
        # Since the CTMDP kernel landed, non-deterministic sweeps also share
        # one uniformisation rate across the grid (it is a rate *floor* for
        # the backward sweep); the rows must agree with the per-sample-rate
        # baseline on both bounds.
        builder = FaultTreeBuilder("nondet-shared")
        builder.parameter("lam", 1.0)
        builder.basic_event("T", param="lam")
        builder.basic_event("X", failure_rate=1.0)
        builder.basic_event("Y", failure_rate=1.0)
        builder.pand_gate("top", ["X", "Y"])
        builder.fdep("F", trigger="T", dependents=["X", "Y"])
        tree = builder.build(top="top")
        from repro import UnreliabilityBounds

        sweep_spec = RateSweep.grid(UnreliabilityBounds([1.0]), lam=[0.5, 1.5])
        shared = SweepStudy(tree).run(sweep_spec, share_uniformisation=True)
        baseline = SweepStudy(tree).run(sweep_spec)
        assert shared.options["shared_uniformisation_rate"] > 0.0
        assert all(row.error is None for row in shared.rows)
        for ours, theirs in zip(shared.rows, baseline.rows):
            assert ours.sample == theirs.sample
            bounds = ours["unreliability_bounds"]
            reference = theirs["unreliability_bounds"]
            assert bounds.lower == pytest.approx(reference.lower, abs=TOLERANCE)
            assert bounds.upper == pytest.approx(reference.upper, abs=TOLERANCE)

    def test_scan_helper_returns_the_maximum(self):
        study = SweepStudy(wide_range_tree())
        plan = _SweepPlan(
            skeleton=study.skeleton,
            declared=dict(study.tree.parameters),
            query=Unreliability(MISSION_TIMES),
            tolerance=1e-12,
        )
        rate = _scan_shared_rate(plan, _grid().samples)
        buffer = CsrBuffer(study.skeleton)
        expected = max(
            buffer.max_exit_rate(plan.assignment_of(sample))
            for sample in _grid().samples
        )
        assert rate == pytest.approx(expected)
