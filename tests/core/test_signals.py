"""Tests for the signal naming conventions."""

from repro.core import signals


class TestSignals:
    def test_names_are_distinct(self):
        assert signals.fire("A") != signals.fire_isolated("A")
        assert signals.fire("A") != signals.activate("A")
        assert signals.fire("A") != signals.repair("A")
        assert signals.repair("A") != signals.repair_isolated("A")

    def test_names_embed_element(self):
        for function in (
            signals.fire,
            signals.fire_isolated,
            signals.activate,
            signals.repair,
            signals.repair_isolated,
        ):
            assert "Pump" in function("Pump")

    def test_claim_embeds_both_parties(self):
        action = signals.claim("Spare", "Gate")
        assert "Spare" in action and "Gate" in action
        assert signals.claim("S", "G1") != signals.claim("S", "G2")

    def test_distinct_elements_get_distinct_signals(self):
        assert signals.fire("A") != signals.fire("B")

    def test_failed_label_constant(self):
        assert isinstance(signals.FAILED_LABEL, str) and signals.FAILED_LABEL
