"""Tests for the query engine (Study / evaluate / BatchStudy)."""

import json

import pytest

from repro import (
    MTTF,
    BatchStudy,
    CompositionalAnalyzer,
    Query,
    Study,
    StudyOptions,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
    evaluate,
)
from repro.dft import galileo
from repro.errors import AnalysisError
from repro.systems import (
    cardiac_assist_system,
    pand_race_system,
    random_corpus,
    repairable_and_system,
)


class TestStudyEvaluate:
    def test_matches_legacy_analyzer(self, cold_spare_tree):
        analyzer = CompositionalAnalyzer(cold_spare_tree)
        result = evaluate(cold_spare_tree, Unreliability([0.5, 1.0]) + MTTF())
        unrel = result["unreliability"]
        assert unrel.values[0] == pytest.approx(analyzer.unreliability(0.5), abs=1e-12)
        assert unrel.values[1] == pytest.approx(analyzer.unreliability(1.0), abs=1e-12)
        assert result["mttf"].value == pytest.approx(analyzer.mean_time_to_failure())

    def test_single_measure_without_query_wrapper(self, and_tree):
        result = evaluate(and_tree, Unreliability(1.0))
        assert 0.0 < result["unreliability"].value < 1.0

    def test_bounds_collapse_on_deterministic_model(self, and_tree):
        result = evaluate(and_tree, UnreliabilityBounds([1.0]))
        low, high = result["unreliability_bounds"].bounds
        assert low == pytest.approx(high)

    def test_bounds_on_nondeterministic_model(self):
        result = evaluate(pand_race_system(), UnreliabilityBounds([1.0]))
        low, high = result["unreliability_bounds"].bounds
        assert low < high
        assert result.model.nondeterministic

    def test_unreliability_on_nondeterministic_model_raises(self):
        with pytest.raises(AnalysisError):
            evaluate(pand_race_system(), Unreliability([1.0]))

    def test_on_error_record_keeps_the_other_measures(self):
        study = Study(pand_race_system())
        result = study.evaluate(
            UnreliabilityBounds([1.0]) + MTTF(), on_error="record"
        )
        bounds, mttf = result.measures
        assert bounds.ok and bounds.lower is not None
        assert not mttf.ok and "non-deterministic" in mttf.error
        assert result.to_dict()["measures"][1]["error"] == mttf.error
        with pytest.raises(AnalysisError):
            mttf.value

    def test_batch_records_per_measure_errors_without_failing_rows(self):
        result = BatchStudy(
            [pand_race_system()], UnreliabilityBounds([1.0]) + MTTF()
        ).run()
        row = result.rows[0]
        assert row.ok  # tree-level analysis succeeded
        assert row.result["unreliability_bounds"].ok
        assert not row.result["mttf"].ok

    def test_on_error_rejects_unknown_mode(self, and_tree):
        with pytest.raises(AnalysisError):
            Study(and_tree).evaluate(Unreliability([1.0]), on_error="ignore")

    def test_unavailability_steady_and_transient(self, repairable_and_tree):
        result = evaluate(
            repairable_and_tree, Query(Unavailability(), Unavailability(50.0))
        )
        steady, transient = result.measures
        assert steady.steady_state and not transient.steady_state
        assert transient.values[0] == pytest.approx(steady.value, abs=1e-6)

    def test_shared_pipeline_is_cached(self, and_tree):
        study = Study(and_tree)
        first = study.evaluate(Unreliability([1.0]))
        second = study.evaluate(MTTF())
        assert study.final_ioimc is study.final_ioimc
        assert first.statistics is second.statistics

    def test_timings_cover_every_stage(self, and_tree):
        result = evaluate(and_tree, Unreliability([1.0]))
        assert set(result.timings) == {
            "conversion",
            "aggregation",
            "markov",
            "evaluation",
            "total",
        }
        assert all(value >= 0.0 for value in result.timings.values())

    def test_measure_order_is_preserved(self, cold_spare_tree):
        result = evaluate(cold_spare_tree, MTTF() + Unreliability([1.0]))
        assert [m.kind for m in result.measures] == ["mttf", "unreliability"]

    def test_getitem_unknown_kind_raises(self, and_tree):
        result = evaluate(and_tree, Unreliability([1.0]))
        assert "unreliability" in result
        with pytest.raises(KeyError):
            result["mttf"]

    def test_options_are_recorded(self, and_tree):
        result = evaluate(and_tree, Unreliability([1.0]), StudyOptions(ordering="smallest"))
        assert result.options["ordering"] == "smallest"
        assert result.options["tolerance"] == 1e-12

    def test_result_is_json_serialisable(self, and_tree):
        result = evaluate(and_tree, Unreliability([0.5, 1.0]) + MTTF())
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro.study/1"
        assert payload["measures"][0]["values"] == list(result["unreliability"].values)
        # include_steps=False drops the per-step records but keeps the peaks.
        compact = result.to_dict(include_steps=False)
        assert "steps" not in compact["statistics"]
        assert compact["statistics"]["peak_product_states"] >= 1


class TestBatchStudy:
    @pytest.fixture
    def corpus_dir(self, tmp_path):
        for index, tree in enumerate(random_corpus(3, num_basic_events=4, seed=7)):
            galileo.write_file(tree, str(tmp_path / f"tree{index}.dft"))
        return tmp_path

    def test_runs_over_files(self, corpus_dir):
        paths = sorted(str(p) for p in corpus_dir.glob("*.dft"))
        result = BatchStudy(paths, UnreliabilityBounds([1.0])).run()
        assert len(result) == 3
        assert result.num_ok == 3 and result.num_failed == 0
        assert result.processes == 1
        assert all(row.source is not None for row in result)

    def test_in_memory_trees_match_single_tree_evaluation_exactly(self):
        """No Galileo round-trip: batch values equal evaluate() bit-for-bit."""
        tree = cardiac_assist_system()
        direct = evaluate(tree, UnreliabilityBounds([1.0]))
        row = BatchStudy([tree], UnreliabilityBounds([1.0])).run().rows[0]
        assert row.result["unreliability_bounds"].lower == direct["unreliability_bounds"].lower

    def test_runs_over_in_memory_trees(self):
        trees = [cardiac_assist_system(), repairable_and_system()]
        result = BatchStudy(trees, UnreliabilityBounds([1.0])).run()
        assert result.num_ok == 2
        cas = result.rows[0]
        assert cas.name == "cardiac-assist-system"
        low, high = cas.result["unreliability_bounds"].bounds
        assert low == pytest.approx(0.6579, abs=1e-4)
        assert high == pytest.approx(low)

    def test_parallel_matches_serial(self, corpus_dir):
        paths = sorted(str(p) for p in corpus_dir.glob("*.dft"))
        query = UnreliabilityBounds([0.5, 1.0])
        serial = BatchStudy(paths, query).run(processes=1)
        parallel = BatchStudy(paths, query).run(processes=2)
        assert parallel.processes == 2
        for left, right in zip(serial.rows, parallel.rows):
            assert left.result["unreliability_bounds"].lower == pytest.approx(
                right.result["unreliability_bounds"].lower, abs=1e-12
            )

    def test_non_utf8_file_becomes_an_error_row(self, corpus_dir):
        (corpus_dir / "binary.dft").write_bytes(b"\xff\xfe\x00garbage")
        paths = sorted(str(p) for p in corpus_dir.glob("*.dft"))
        result = BatchStudy(paths, UnreliabilityBounds([1.0])).run()
        assert result.num_failed == 1
        assert result.num_ok == 3

    def test_failures_become_rows_not_exceptions(self, corpus_dir):
        broken = corpus_dir / "broken.dft"
        broken.write_text('toplevel "X";\n"X" unknown_gate "A";\n')
        paths = sorted(str(p) for p in corpus_dir.glob("*.dft"))
        result = BatchStudy(paths, UnreliabilityBounds([1.0])).run()
        assert result.num_failed == 1
        failed = [row for row in result if not row.ok]
        assert len(failed) == 1 and failed[0].error

    def test_empty_corpus_rejected(self):
        with pytest.raises(AnalysisError):
            BatchStudy([], UnreliabilityBounds([1.0]))

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(AnalysisError):
            StudyOptions(tolerance=0.0)
        with pytest.raises(AnalysisError):
            StudyOptions(tolerance=1.5)

    def test_colliding_in_memory_names_get_index_suffixes(self):
        from repro.systems import random_dft

        trees = [random_dft(num_basic_events=4, seed=1) for _ in range(2)]
        result = BatchStudy(trees, UnreliabilityBounds([1.0])).run()
        names = [row.name for row in result]
        assert len(set(names)) == 2

    def test_identical_paths_get_index_suffixes(self, corpus_dir):
        path = str(sorted(corpus_dir.glob("*.dft"))[0])
        result = BatchStudy([path, path], UnreliabilityBounds([1.0])).run()
        names = [row.name for row in result]
        assert len(set(names)) == 2

    def test_colliding_stems_fall_back_to_full_paths(self, tmp_path):
        from repro.systems import random_dft

        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
            galileo.write_file(random_dft(num_basic_events=4, seed=1), str(tmp_path / sub / "x.dft"))
        paths = [str(tmp_path / "a" / "x.dft"), str(tmp_path / "b" / "x.dft")]
        result = BatchStudy(paths, UnreliabilityBounds([1.0])).run()
        names = [row.name for row in result]
        assert len(set(names)) == 2 and names == paths

    def test_batch_json_schema(self, corpus_dir):
        paths = sorted(str(p) for p in corpus_dir.glob("*.dft"))
        result = BatchStudy(paths, UnreliabilityBounds([1.0])).run()
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro.batch/1"
        assert payload["aggregate"]["trees"] == 3
        assert payload["aggregate"]["failed"] == 0
        assert {"name", "source", "ok", "wall_seconds", "result"} <= set(payload["rows"][0])
