"""Property tests: parallel sweep output is bit-identical to serial output.

`SweepStudy.run(..., processes=N)` fans samples out over a chunked process
pool; every worker runs the identical per-sample kernel code, so the rows —
sample dicts, measure values, error strings and their ordering — must be
**bit-identical** to a serial run for every worker count.  Only wall-clock
fields may differ, so the JSON comparison strips exactly those.
"""

import pytest

from repro import Query, RateSweep, SweepStudy, Unreliability, UnreliabilityBounds
from repro.core.measures import MTTF
from repro.core.sweep import _SweepPlan, iter_sweep_rows
from repro.ctmc.builders import CtmcSkeleton
from repro.dft import FaultTreeBuilder
from repro.errors import AnalysisError
from repro.ioimc.rates import ParametricRate

PROCESS_COUNTS = [1, 2, 4]


def parametric_tree():
    builder = FaultTreeBuilder("parallel-param")
    builder.parameter("lam", 0.5)
    builder.parameter("mu", 2.0)
    builder.basic_event("A", param="lam")
    builder.basic_event("B", failure_rate=1.5)
    builder.basic_event("S", param="mu", dormancy=0.3)
    builder.spare_gate("G", primary="A", spares=["S"])
    builder.and_gate("top", ["G", "B"])
    return builder.build(top="top")


def strip_timings(payload):
    """Drop wall-clock and worker metadata from a SweepResult payload.

    Everything else — samples, measure values, error rows, ordering — must
    be bit-identical between serial and parallel runs.
    """
    timing_keys = {
        "wall_seconds",
        "instantiate_seconds",
        "solve_seconds",
        "timings",
        "processes",
    }
    if isinstance(payload, dict):
        return {
            key: strip_timings(value)
            for key, value in payload.items()
            if key not in timing_keys
        }
    if isinstance(payload, list):
        return [strip_timings(entry) for entry in payload]
    return payload


def assert_rows_bit_identical(serial_rows, parallel_rows):
    assert len(serial_rows) == len(parallel_rows)
    for mine, theirs in zip(serial_rows, parallel_rows):
        assert mine.sample == theirs.sample
        # Tuple equality on MeasureResult dataclasses compares every float
        # exactly — bit-identical, not approximately equal.
        assert mine.measures == theirs.measures
        assert mine.gradients == theirs.gradients
        assert mine.error == theirs.error


class TestParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def serial_result(self):
        sweep = RateSweep.grid(
            Unreliability([0.5, 1.0]) + UnreliabilityBounds([1.0]) + MTTF(),
            lam=[0.1, 0.4, 0.9, 1.6, 2.5],
            mu=[0.5, 3.0],
        )
        return SweepStudy(parametric_tree()).run(sweep), sweep

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_rows_and_json_are_bit_identical(self, serial_result, processes):
        serial, sweep = serial_result
        parallel = SweepStudy(parametric_tree()).run(
            sweep, processes=processes, chunk_size=3
        )
        assert parallel.processes == processes
        assert_rows_bit_identical(serial.rows, parallel.rows)
        assert strip_timings(serial.to_dict()) == strip_timings(parallel.to_dict())

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 100])
    def test_chunking_never_reorders_rows(self, serial_result, chunk_size):
        serial, sweep = serial_result
        parallel = SweepStudy(parametric_tree()).run(
            sweep, processes=2, chunk_size=chunk_size
        )
        assert_rows_bit_identical(serial.rows, parallel.rows)

    def test_invalid_worker_and_chunk_counts_are_rejected(self, serial_result):
        _serial, sweep = serial_result
        study = SweepStudy(parametric_tree())
        for processes in (0, -1):
            with pytest.raises(AnalysisError, match="processes must be >= 1"):
                study.run(sweep, processes=processes)
        with pytest.raises(AnalysisError, match="chunk_size must be >= 1"):
            study.run(sweep, processes=2, chunk_size=0)


class TestParallelGradientsEqualSerial:
    """`run(gradients=True, processes=N)` rows match serial bit-for-bit.

    The gradient path ships the CTMDP gradient kernel into the workers along
    with the transient kernel; its per-sample derivative curves go through
    the same chunked scheduling, so `SweepRow.gradients` dictionaries —
    keys, ordering and every float — must be exactly the serial ones.
    """

    @pytest.fixture(scope="class")
    def serial_gradients(self):
        sweep = RateSweep.grid(
            Unreliability([0.5, 1.0]) + MTTF(),
            lam=[0.1, 0.4, 0.9, 1.6, 2.5],
            mu=[0.5, 3.0],
        )
        return SweepStudy(parametric_tree()).run(sweep, gradients=True), sweep

    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_gradient_rows_are_bit_identical(self, serial_gradients, processes):
        serial, sweep = serial_gradients
        parallel = SweepStudy(parametric_tree()).run(
            sweep, gradients=True, processes=processes, chunk_size=3
        )
        assert all(row.gradients is not None for row in serial.rows)
        assert_rows_bit_identical(serial.rows, parallel.rows)
        assert strip_timings(serial.to_dict()) == strip_timings(parallel.to_dict())

    def test_gradient_keys_cover_declared_parameters(self, serial_gradients):
        serial, _sweep = serial_gradients
        for row in serial.rows:
            assert set(row.gradients) == {"lam", "mu"}


class TestErrorRowOrdering:
    """Failing samples keep their position and error text across all paths.

    A linear rate form with a negative constant part turns non-positive for
    small parameter values, so instantiation genuinely fails *inside the
    worker process* for exactly those samples.
    """

    @staticmethod
    def failing_skeleton():
        dipping = ParametricRate(-0.5, {"lam": 1.0}, {"lam": 1.0})
        return CtmcSkeleton(
            num_states=3,
            initial=0,
            labels=(frozenset(), frozenset(), frozenset({"failed"})),
            state_names=(None, None, None),
            edges=((0, 1, dipping), (1, 2, 2.0)),
        )

    @pytest.mark.parametrize("use_kernel", [True, False])
    @pytest.mark.parametrize("processes", PROCESS_COUNTS)
    def test_error_rows_keep_sample_order(self, processes, use_kernel):
        plan = _SweepPlan(
            skeleton=self.failing_skeleton(),
            declared={"lam": 1.0},
            query=Query(Unreliability([1.0])),
            tolerance=1e-12,
            use_kernel=use_kernel,
        )
        # Samples 1 and 3 (lam <= 0.5) drive the edge rate non-positive.
        samples = [{"lam": 2.0}, {"lam": 0.2}, {"lam": 1.5}, {"lam": 0.5}, {"lam": 3.0}]
        rows = list(iter_sweep_rows(plan, samples, processes=processes, chunk_size=2))
        assert [row.sample for row in rows] == samples
        assert [row.ok for row in rows] == [True, False, True, False, True]
        for row in rows:
            if not row.ok:
                assert "non-positive" in row.error
                assert row.measures == ()

    def test_error_rows_identical_across_worker_counts(self):
        plan = _SweepPlan(
            skeleton=self.failing_skeleton(),
            declared={"lam": 1.0},
            query=Query(Unreliability([1.0])),
            tolerance=1e-12,
        )
        samples = [{"lam": 0.1 * step} for step in range(1, 26)]
        serial = list(iter_sweep_rows(plan, samples, processes=1))
        for processes in (2, 4):
            parallel = list(
                iter_sweep_rows(plan, samples, processes=processes, chunk_size=3)
            )
            assert_rows_bit_identical(serial, parallel)
            assert [row.error for row in serial] == [row.error for row in parallel]
