"""Tests for the top-level analysis API against closed-form results."""

import math

import pytest

from repro import (
    AnalysisOptions,
    CompositionalAnalyzer,
    mean_time_to_failure,
    unavailability,
    unreliability,
    unreliability_bounds,
)
from repro.ctmc import CTMC
from repro.dft import FaultTreeBuilder
from repro.errors import AnalysisError
from tests import analytic


class TestStaticGates:
    def test_and(self, and_tree):
        assert unreliability(and_tree, 1.0) == pytest.approx(
            analytic.and_unreliability([1.0, 2.0], 1.0), abs=1e-9
        )

    def test_or(self, or_tree):
        assert unreliability(or_tree, 1.0) == pytest.approx(
            analytic.or_unreliability([1.0, 2.0], 1.0), abs=1e-9
        )

    def test_voting(self):
        builder = FaultTreeBuilder("vote")
        builder.basic_events(["A", "B", "C"], failure_rate=1.5)
        builder.voting_gate("Top", ["A", "B", "C"], threshold=2)
        tree = builder.build("Top")
        assert unreliability(tree, 0.8) == pytest.approx(
            analytic.voting_unreliability([1.5, 1.5, 1.5], 2, 0.8), abs=1e-9
        )

    def test_nested_static_tree(self):
        builder = FaultTreeBuilder("nested")
        builder.basic_events(["A", "B", "C", "D"], failure_rate=1.0)
        builder.or_gate("Left", ["A", "B"])
        builder.or_gate("Right", ["C", "D"])
        builder.and_gate("Top", ["Left", "Right"])
        tree = builder.build("Top")
        expected = analytic.or_unreliability([1.0, 1.0], 1.0) ** 2
        assert unreliability(tree, 1.0) == pytest.approx(expected, abs=1e-9)

    def test_unreliability_at_time_zero(self, and_tree):
        assert unreliability(and_tree, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_unreliability_large_time_tends_to_one(self, or_tree):
        assert unreliability(or_tree, 50.0) == pytest.approx(1.0, abs=1e-6)


class TestDynamicGates:
    def test_pand(self, pand_tree):
        assert unreliability(pand_tree, 1.0) == pytest.approx(
            analytic.pand_two_unreliability(1.0, 2.0, 1.0), abs=1e-9
        )

    def test_cold_spare(self, cold_spare_tree):
        assert unreliability(cold_spare_tree, 1.0) == pytest.approx(
            analytic.cold_spare_unreliability(1.0, 2.0, 1.0), abs=1e-9
        )

    def test_warm_spare(self, warm_spare_tree):
        assert unreliability(warm_spare_tree, 1.0) == pytest.approx(
            analytic.warm_spare_unreliability(1.0, 2.0, 0.5, 1.0), abs=1e-9
        )

    def test_fdep(self, fdep_tree):
        # A fails at min(own, trigger) ~ exp(1.5); B independent exp(1).
        expected = analytic.exp_cdf(1.5, 1.0) * analytic.exp_cdf(1.0, 1.0)
        assert unreliability(fdep_tree, 1.0) == pytest.approx(expected, abs=1e-9)

    def test_shared_spare(self, shared_spare_tree):
        # Hypoexponential stages 2, 2, 1 until all three pumps are gone.
        generator = [
            [-2.0, 2.0, 0.0, 0.0],
            [0.0, -2.0, 2.0, 0.0],
            [0.0, 0.0, -1.0, 1.0],
            [0.0, 0.0, 0.0, 0.0],
        ]
        expected = analytic.ctmc_transient_probability(generator, 0, [3], 1.0)
        assert unreliability(shared_spare_tree, 1.0) == pytest.approx(expected, abs=1e-9)

    def test_seq_gate_equals_cold_spare_chain(self):
        builder = FaultTreeBuilder("seq")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 2.0)
        builder.seq_gate("Top", ["A", "B"])
        tree = builder.build("Top")
        assert unreliability(tree, 1.0) == pytest.approx(
            analytic.cold_spare_unreliability(1.0, 2.0, 1.0), abs=1e-9
        )


class TestOtherMeasures:
    def test_mttf_single_component(self):
        builder = FaultTreeBuilder("single")
        builder.basic_event("A", 4.0)
        builder.or_gate("Top", ["A"])
        tree = builder.build("Top")
        assert mean_time_to_failure(tree) == pytest.approx(0.25)

    def test_mttf_cold_spare(self, cold_spare_tree):
        # MTTF = 1/1 + 1/2
        assert mean_time_to_failure(cold_spare_tree) == pytest.approx(1.5)

    def test_unavailability_steady_state(self, repairable_and_tree):
        expected = analytic.repairable_component_unavailability(1.0, 2.0) ** 2
        assert unavailability(repairable_and_tree) == pytest.approx(expected, abs=1e-9)

    def test_unavailability_transient_approaches_steady_state(self, repairable_and_tree):
        limit = unavailability(repairable_and_tree)
        transient = unavailability(repairable_and_tree, time=50.0)
        assert transient == pytest.approx(limit, abs=1e-6)

    def test_unreliability_curve_monotone(self, cold_spare_tree):
        analyzer = CompositionalAnalyzer(cold_spare_tree)
        curve = analyzer.unreliability_curve([0.0, 0.5, 1.0, 2.0])
        assert list(curve) == sorted(curve)

    def test_bounds_collapse_for_deterministic_model(self, and_tree):
        low, high = unreliability_bounds(and_tree, 1.0)
        assert low == pytest.approx(high)

    def test_report_contains_key_facts(self, and_tree):
        analyzer = CompositionalAnalyzer(and_tree)
        report = analyzer.report(1.0)
        assert "Unreliability" in report
        assert "Community" in report

    def test_caching_returns_same_objects(self, and_tree):
        analyzer = CompositionalAnalyzer(and_tree)
        assert analyzer.final_ioimc is analyzer.final_ioimc
        assert analyzer.markov_model is analyzer.markov_model
        assert isinstance(analyzer.markov_model, CTMC)


class TestErrorHandling:
    def test_unreliability_on_nondeterministic_model_raises(self):
        from repro.systems import pand_race_system

        analyzer = CompositionalAnalyzer(pand_race_system())
        with pytest.raises(AnalysisError):
            analyzer.unreliability(1.0)
        low, high = analyzer.unreliability_bounds(1.0)
        assert low < high

    def test_mttf_raises_when_failure_not_certain(self, pand_tree):
        # The PAND may be disabled forever, so the MTTF diverges.
        with pytest.raises(AnalysisError):
            mean_time_to_failure(pand_tree)

    def test_options_can_switch_orderings(self, and_tree):
        value_linked = unreliability(and_tree, 1.0, AnalysisOptions(ordering="linked"))
        value_sequential = unreliability(and_tree, 1.0, AnalysisOptions(ordering="sequential"))
        assert value_linked == pytest.approx(value_sequential, abs=1e-12)
