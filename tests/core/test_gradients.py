"""Parametric gradients and Birnbaum-style importance rankings.

The CTMDP kernel differentiates the uniformised backward sweep exactly —
``ParametricRate`` stores linear forms, so the generator's derivative per
parameter is a constant sparse matrix.  These tests pin the analytic
gradients against central finite differences on the paper systems, and cover
the measure/result/sweep plumbing that surfaces them.
"""

import json
import math

import numpy as np
import pytest

from repro.core import (
    ImportanceRanking,
    RateSweep,
    Study,
    SweepStudy,
    Unreliability,
    UnreliabilityBounds,
    signals,
)
from repro.core.results import MeasureResult, SweepRow
from repro.core.study import evaluate_skeleton_query
from repro.core.sweep import with_rate_parameters
from repro.ctmc.builders import ctmdp_skeleton_from_ioimc
from repro.dft.builder import FaultTreeBuilder
from repro.errors import AnalysisError
from repro.systems import (
    mutually_exclusive_switch,
    pand_race_system,
    random_dft,
    shared_spare_race_system,
)

TIMES = (0.5, 1.0, 2.0)


def envelope_kernel(tree):
    kernel = ctmdp_skeleton_from_ioimc(Study(tree).final_ioimc).ctmdp_kernel()
    kernel.load()
    return kernel


def central_fd(kernel, tree, times, maximize, tolerance=1e-12):
    """Central finite differences of the bound curve w.r.t. every parameter."""
    nominal = dict(tree.parameters)
    columns = []
    for name in kernel.parameters:
        h = 1e-4 * max(nominal[name], 1.0)
        up = dict(nominal)
        up[name] = nominal[name] + h
        down = dict(nominal)
        down[name] = nominal[name] - h
        kernel.load(up)
        plus = kernel.time_bounded_reachability_curve(
            signals.FAILED_LABEL, times, maximize=maximize, tolerance=tolerance
        )
        kernel.load(down)
        minus = kernel.time_bounded_reachability_curve(
            signals.FAILED_LABEL, times, maximize=maximize, tolerance=tolerance
        )
        columns.append((plus - minus) / (2.0 * h))
    kernel.load()
    return np.column_stack(columns) if columns else np.zeros((len(times), 0))


class TestImportanceRankingMeasure:
    def test_direction_validated(self):
        assert ImportanceRanking((1.0,), direction="min").direction == "min"
        with pytest.raises(AnalysisError):
            ImportanceRanking((1.0,), direction="best")

    def test_to_dict_carries_direction(self):
        payload = ImportanceRanking((1.0, 2.0)).to_dict()
        assert payload == {
            "kind": "importance_ranking",
            "times": [1.0, 2.0],
            "direction": "max",
        }


class TestAnalyticVsFiniteDifferences:
    @pytest.mark.parametrize(
        "tree",
        [
            with_rate_parameters(pand_race_system()),
            with_rate_parameters(mutually_exclusive_switch()),
            with_rate_parameters(shared_spare_race_system()),
            with_rate_parameters(
                random_dft(num_basic_events=7, seed=4, fdep=True, shared_spares=True)
            ),
        ],
        ids=["pand-race", "mutex", "shared-spare", "rand7"],
    )
    @pytest.mark.parametrize("maximize", [True, False], ids=["max", "min"])
    def test_gradient_matches_central_fd(self, tree, maximize):
        kernel = envelope_kernel(tree)
        _curve, grads = kernel.gradient_curve(
            signals.FAILED_LABEL, TIMES, maximize=maximize, tolerance=1e-12
        )
        fd = central_fd(kernel, tree, TIMES, maximize)
        assert grads.shape == fd.shape
        assert np.max(np.abs(grads - fd)) <= 1e-6

    def test_known_closed_form(self):
        # Independent AND of two exponentials: U(t) = (1-e^{-at})(1-e^{-bt}),
        # dU/da = t e^{-at} (1-e^{-bt}).
        builder = FaultTreeBuilder("and-pair")
        builder.basic_event("A", 0.5)
        builder.basic_event("B", 1.2)
        builder.and_gate("system", ["A", "B"])
        tree = with_rate_parameters(builder.build(top="system"))
        kernel = envelope_kernel(tree)
        curve, grads = kernel.gradient_curve(
            signals.FAILED_LABEL, TIMES, maximize=True, tolerance=1e-12
        )
        a_index = kernel.parameters.index("A")
        for i, t in enumerate(TIMES):
            expected_value = (1 - math.exp(-0.5 * t)) * (1 - math.exp(-1.2 * t))
            expected_grad = t * math.exp(-0.5 * t) * (1 - math.exp(-1.2 * t))
            assert curve[i] == pytest.approx(expected_value, abs=1e-9)
            assert grads[i, a_index] == pytest.approx(expected_grad, abs=1e-9)

    def test_gradient_curve_value_matches_plain_curve(self):
        kernel = envelope_kernel(with_rate_parameters(pand_race_system()))
        for maximize in (True, False):
            plain = kernel.time_bounded_reachability_curve(
                signals.FAILED_LABEL, TIMES, maximize=maximize, tolerance=1e-12
            )
            curve, _grads = kernel.gradient_curve(
                signals.FAILED_LABEL, TIMES, maximize=maximize, tolerance=1e-12
            )
            assert np.array_equal(curve, plain)


class TestStudyIntegration:
    def test_nondeterministic_ranking(self):
        tree = with_rate_parameters(pand_race_system())
        result = Study(tree).evaluate(
            UnreliabilityBounds(TIMES) + ImportanceRanking(TIMES)
        )
        measure = result["importance_ranking"]
        assert set(measure.gradients) == set(tree.parameters)
        # The max-direction ranking differentiates the upper bound.
        assert measure.values == result["unreliability_bounds"].upper
        # Ranking is ordered by |gradient| at the last mission time.
        magnitudes = [abs(measure.gradients[name][-1]) for name in measure.ranking]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_deterministic_ranking_via_envelope(self):
        tree = with_rate_parameters(mutually_exclusive_switch())
        result = Study(tree).evaluate(Unreliability(TIMES) + ImportanceRanking(TIMES))
        measure = result["importance_ranking"]
        unreliability = result["unreliability"]
        for value, expected in zip(measure.values, unreliability.values):
            assert value == pytest.approx(expected, abs=1e-9)

    def test_min_direction(self):
        tree = with_rate_parameters(pand_race_system())
        result = Study(tree).evaluate(
            UnreliabilityBounds(TIMES) + ImportanceRanking(TIMES, direction="min")
        )
        assert result["importance_ranking"].values == result["unreliability_bounds"].lower

    def test_unparametrised_tree_is_a_recorded_error(self):
        result = Study(mutually_exclusive_switch()).evaluate(
            ImportanceRanking(TIMES), on_error="record"
        )
        measure = result["importance_ranking"]
        assert not measure.ok
        assert "with_rate_parameters" in measure.error

    def test_skeleton_query_ctmdp_path(self):
        tree = with_rate_parameters(pand_race_system())
        skeleton = ctmdp_skeleton_from_ioimc(Study(tree).final_ioimc)
        measures = evaluate_skeleton_query(
            skeleton, UnreliabilityBounds(TIMES) + ImportanceRanking(TIMES)
        )
        by_kind = {measure.kind: measure for measure in measures}
        assert by_kind["importance_ranking"].ranking is not None
        reference = Study(tree).evaluate(UnreliabilityBounds(TIMES))
        assert by_kind["unreliability_bounds"].upper == pytest.approx(
            reference["unreliability_bounds"].upper, abs=1e-9
        )


class TestSweepGradients:
    def test_rows_carry_gradients(self):
        tree = with_rate_parameters(pand_race_system())
        sweep = RateSweep(UnreliabilityBounds(TIMES), samples=[{"T": 0.5}, {"T": 1.5}])
        result = SweepStudy(tree).run(sweep, gradients=True)
        assert result.options.get("gradients") is True
        for row in result.rows:
            assert row.ok
            assert set(row.gradients) == set(tree.parameters)
            assert all(len(curve) == len(TIMES) for curve in row.gradients.values())

    def test_row_gradients_match_fd_across_samples(self):
        tree = with_rate_parameters(pand_race_system())
        kernel = envelope_kernel(tree)
        sample = {"T": 0.7}
        sweep = RateSweep(UnreliabilityBounds(TIMES), samples=[sample])
        row = SweepStudy(tree).run(sweep, gradients=True).rows[0]
        assignment = dict(tree.parameters)
        assignment.update(sample)
        for name, curve in row.gradients.items():
            h = 1e-4 * max(assignment[name], 1.0)
            up = dict(assignment)
            up[name] = assignment[name] + h
            down = dict(assignment)
            down[name] = assignment[name] - h
            kernel.load(up)
            plus = kernel.time_bounded_reachability_curve(
                signals.FAILED_LABEL, TIMES, maximize=True, tolerance=1e-12
            )
            kernel.load(down)
            minus = kernel.time_bounded_reachability_curve(
                signals.FAILED_LABEL, TIMES, maximize=True, tolerance=1e-12
            )
            fd = (plus - minus) / (2.0 * h)
            assert np.max(np.abs(np.asarray(curve) - fd)) <= 1e-6

    def test_importance_measure_inside_sweep(self):
        tree = with_rate_parameters(mutually_exclusive_switch())
        sweep = RateSweep(
            Unreliability(TIMES) + ImportanceRanking(TIMES), samples=[{"SO": 0.4}]
        )
        row = SweepStudy(tree).run(sweep).rows[0]
        assert row.ok
        assert row["importance_ranking"].ranking is not None

    def test_serialisation_round_trip(self):
        tree = with_rate_parameters(pand_race_system())
        sweep = RateSweep(
            UnreliabilityBounds(TIMES) + ImportanceRanking(TIMES),
            samples=[{"T": 0.5}],
        )
        result = SweepStudy(tree).run(sweep, gradients=True)
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro.sweep/3"
        row = SweepRow.from_dict(payload["rows"][0])
        assert row.gradients == result.rows[0].gradients
        measure = MeasureResult.from_dict(
            next(
                entry
                for entry in payload["rows"][0]["measures"]
                if entry["kind"] == "importance_ranking"
            )
        )
        original = result.rows[0]["importance_ranking"]
        assert measure.ranking == original.ranking
        assert measure.gradients == original.gradients
