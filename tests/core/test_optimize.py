"""Tests for the Russian-doll design-space optimiser (`repro.core.optimize`)."""

from __future__ import annotations

import json

import pytest

from repro.core.measures import UnreliabilityBounds
from repro.core.optimize import (
    DesignProblem,
    RepairChoice,
    SpareCountChoice,
    apply_design,
    monotonicity_warnings,
    optimize,
)
from repro.core.results import OPTIMIZE_SCHEMA, OptimizeResult
from repro.core.study import Study
from repro.dft.builder import FaultTreeBuilder
from repro.dft.hashing import structural_hash
from repro.errors import AnalysisError
from repro.service.store import SkeletonStore
from repro.systems import cas_spares_scenario, cps_spares_scenario

TOLERANCE = 1e-12


def small_tree():
    """OR of a spare unit (2 candidate spares) and a repairable AND unit."""
    builder = FaultTreeBuilder("small-design")
    builder.basic_event("P1", 1.0)
    builder.basic_event("S1", 1.0, dormancy=0.0)
    builder.basic_event("S2", 1.0, dormancy=0.0)
    builder.basic_event("E1", 0.5)
    builder.basic_event("E2", 0.5)
    builder.spare_gate("U1", primary="P1", spares=["S1", "S2"])
    builder.and_gate("U2", ["E1", "E2"])
    builder.or_gate("sys", ["U1", "U2"])
    return builder.build(top="sys")


def small_problem(budget=1.0):
    return DesignProblem(
        tree=small_tree(),
        choices=(
            SpareCountChoice("U1", counts=(1, 2), costs=(0.0, 1.0)),
            RepairChoice("E1", rates=(None, 2.0), costs=(0.0, 1.0)),
        ),
        mission_time=1.0,
        budget=budget,
    )


def brute_force(problem):
    """(best_upper, best_assignment) by direct evaluation of every design."""
    best_value, best_assignment = None, None
    counts = [choice.num_options for choice in problem.choices]
    assignment = [0] * len(counts)
    while True:
        cost = problem.assignment_cost(assignment)
        if problem.budget is None or cost <= problem.budget + 1e-9:
            tree = apply_design(problem, assignment)
            result = Study(tree).evaluate(
                UnreliabilityBounds([problem.mission_time])
            )
            upper = result.measures[0].upper[0]
            if best_value is None or upper < best_value:
                best_value = upper
                best_assignment = tuple(assignment)
        for slot in range(len(counts) - 1, -1, -1):
            assignment[slot] += 1
            if assignment[slot] < counts[slot]:
                break
            assignment[slot] = 0
        else:
            return best_value, best_assignment


class TestChoiceModel:
    def test_spare_choice_names_and_costs(self):
        pool = SpareCountChoice(("G1", "G2"), counts=(1, 3), costs=(0, 2))
        assert pool.name == "spares:G1+G2"
        assert pool.gates == ("G1", "G2")
        assert pool.num_options == 2
        assert pool.cost(1) == 2.0
        assert pool.describe(0) == "1 spare"
        assert pool.describe(1) == "3 spares"

    def test_repair_choice_names_and_costs(self):
        repair = RepairChoice("E", rates=(None, 1.5), costs=(0, 1))
        assert repair.name == "repair:E"
        assert repair.describe(0) == "no repair"
        assert repair.describe(1) == "repair rate 1.5"
        assert repair.rates == (None, 1.5)

    def test_choice_validation(self):
        with pytest.raises(AnalysisError, match="at least one gate"):
            SpareCountChoice((), counts=(1,), costs=(0,))
        with pytest.raises(AnalysisError, match="parallel tuples"):
            SpareCountChoice("G", counts=(1, 2), costs=(0,))
        with pytest.raises(AnalysisError, match=">= 1 spare"):
            SpareCountChoice("G", counts=(0, 1), costs=(0, 1))
        with pytest.raises(AnalysisError, match="parallel tuples"):
            RepairChoice("E", rates=(), costs=())


class TestDesignProblem:
    def test_space_size_and_cost(self):
        problem = small_problem()
        assert problem.space_size == 4
        assert problem.assignment_cost((1, 1)) == 2.0
        assert problem.assignment_cost((0, 0)) == 0.0

    def test_validation(self):
        tree = small_tree()
        choice = SpareCountChoice("U1", counts=(1, 2), costs=(0, 1))
        with pytest.raises(AnalysisError, match="at least one choice"):
            DesignProblem(tree=tree, choices=())
        with pytest.raises(AnalysisError, match="unknown spare gate"):
            DesignProblem(
                tree=tree,
                choices=(SpareCountChoice("nope", counts=(1,), costs=(0,)),),
            )
        with pytest.raises(AnalysisError, match="is not a spare gate"):
            DesignProblem(
                tree=tree,
                choices=(SpareCountChoice("U2", counts=(1,), costs=(0,)),),
            )
        with pytest.raises(AnalysisError, match="candidate spares"):
            DesignProblem(
                tree=tree,
                choices=(SpareCountChoice("U1", counts=(1, 3), costs=(0, 1)),),
            )
        with pytest.raises(AnalysisError, match="unknown basic event"):
            DesignProblem(
                tree=tree,
                choices=(RepairChoice("nope", rates=(None,), costs=(0,)),),
            )
        with pytest.raises(AnalysisError, match="duplicate design choice"):
            DesignProblem(tree=tree, choices=(choice, choice))
        with pytest.raises(AnalysisError, match="mission time"):
            DesignProblem(tree=tree, choices=(choice,), mission_time=0.0)


class TestApplyDesign:
    def test_truncation_garbage_collects_orphans(self):
        problem = small_problem()
        tree = apply_design(problem, (0, 0))
        assert "S2" not in tree  # orphaned by counts[0] == 1
        assert "S1" in tree
        full = apply_design(problem, (1, 0))
        assert "S2" in full

    def test_repair_option_sets_rate(self):
        problem = small_problem()
        tree = apply_design(problem, (0, 1))
        assert tree.element("E1").repair_rate == 2.0
        assert apply_design(problem, (0, 0)).element("E1").repair_rate is None

    def test_shared_pool_truncates_every_gate(self):
        problem = cas_spares_scenario()
        tree = apply_design(problem, (0, 0, 0, 0, 0))
        assert tree.element("Pump_A").spares == ("PS",)
        assert tree.element("Pump_B").spares == ("PS",)
        assert "PS2" not in tree and "PS3" not in tree

    def test_identical_designs_share_a_structural_class(self):
        problem = small_problem()
        assert structural_hash(apply_design(problem, (0, 0))) == structural_hash(
            apply_design(problem, (0, 0))
        )
        assert structural_hash(apply_design(problem, (0, 0))) != structural_hash(
            apply_design(problem, (1, 0))
        )

    def test_bad_assignments_rejected(self):
        problem = small_problem()
        with pytest.raises(AnalysisError, match="2 choices"):
            apply_design(problem, (0,))
        with pytest.raises(AnalysisError, match="no option"):
            apply_design(problem, (5, 0))


class TestMonotonicityWarnings:
    def test_seeded_scenarios_are_clean(self):
        assert monotonicity_warnings(cas_spares_scenario()) == ()
        assert monotonicity_warnings(cps_spares_scenario()) == ()

    def test_second_pand_input_choice_warns(self):
        builder = FaultTreeBuilder("pand-trap")
        builder.basic_event("X", 1.0)
        builder.basic_event("P", 1.0)
        builder.basic_event("S", 1.0, dormancy=0.0)
        builder.spare_gate("U", primary="P", spares=["S"])
        builder.pand_gate("sys", ["X", "U"])
        problem = DesignProblem(
            tree=builder.build(top="sys"),
            choices=(SpareCountChoice("U", counts=(1,), costs=(0,)),),
        )
        warnings = monotonicity_warnings(problem)
        assert len(warnings) == 1
        assert "input 2 of PandGate 'sys'" in warnings[0]

    def test_first_pand_input_choice_is_safe(self):
        builder = FaultTreeBuilder("pand-safe")
        builder.basic_event("X", 1.0)
        builder.basic_event("P", 1.0)
        builder.basic_event("S", 1.0, dormancy=0.0)
        builder.spare_gate("U", primary="P", spares=["S"])
        builder.pand_gate("sys", ["U", "X"])
        problem = DesignProblem(
            tree=builder.build(top="sys"),
            choices=(SpareCountChoice("U", counts=(1,), costs=(0,)),),
        )
        assert monotonicity_warnings(problem) == ()


class TestOptimizeSmall:
    def test_matches_brute_force(self):
        problem = small_problem()
        expected_value, expected_assignment = brute_force(problem)
        result = optimize(problem)
        chosen = tuple(c.option_index for c in result.best_design)
        assert chosen == expected_assignment
        assert result.best_value == pytest.approx(expected_value, abs=TOLERANCE)
        assert result.best_cost <= problem.budget + 1e-9
        assert not result.nondeterministic

    def test_exhaustive_equals_pruned(self):
        problem = small_problem()
        pruned = optimize(problem)
        exhaustive = optimize(problem, exhaustive=True)
        assert exhaustive.exhaustive and not pruned.exhaustive
        assert [c.option_index for c in pruned.best_design] == [
            c.option_index for c in exhaustive.best_design
        ]
        assert abs(pruned.best_value - exhaustive.best_value) <= TOLERANCE
        assert exhaustive.leaves_evaluated == exhaustive.leaves_feasible == 3
        assert pruned.leaves_evaluated <= exhaustive.leaves_evaluated
        assert exhaustive.module_tables == ()  # tables are a pruning device

    def test_module_tables_cover_choice_bearing_modules(self):
        result = optimize(small_problem())
        tables = {info.module: info for info in result.module_tables}
        assert set(tables) == {"U1", "U2"}
        assert tables["U1"].choices == ("spares:U1",)
        assert tables["U1"].records == 2
        assert tables["U2"].choices == ("repair:E1",)
        assert tables["U1"].best_lower <= tables["U1"].best_upper

    def test_unconstrained_budget_picks_every_upgrade(self):
        result = optimize(small_problem(budget=None))
        assert [c.option_index for c in result.best_design] == [1, 1]
        assert result.leaves_feasible == 4
        assert result.pruned_by_cost == 0

    def test_infeasible_budget_raises(self):
        tree = small_tree()
        problem = DesignProblem(
            tree=tree,
            choices=(SpareCountChoice("U1", counts=(1, 2), costs=(5.0, 9.0)),),
            budget=1.0,
        )
        with pytest.raises(AnalysisError, match="no design fits the budget"):
            optimize(problem)

    def test_structural_dedup_reuses_entries(self):
        # 3 feasible leaves + bound evaluations, but only a handful of
        # structural classes: the evaluator must reuse entries rather than
        # rebuild the pipeline per visit.
        result = optimize(small_problem())
        assert result.cache["builds"] <= 6
        assert result.timings["total"] >= result.timings["search"]

    def test_skeleton_store_round_trip(self, tmp_path):
        store = SkeletonStore(tmp_path / "cache")
        problem = small_problem()
        first = optimize(problem, skeleton_cache=store)
        second = optimize(problem, skeleton_cache=store)
        assert second.best_value == first.best_value
        assert second.cache["builds"] == 0  # everything served from the store
        assert [c.option_index for c in second.best_design] == [
            c.option_index for c in first.best_design
        ]


class TestNondeterministicObjective:
    def test_bounds_objective_and_scheduler(self):
        # A fixed FDEP/PAND race ORed with the spare unit under choice: the
        # aggregated model is a CTMDP, the objective is the upper envelope
        # and the winner carries a worst-case scheduler for the contested
        # vanishing states.
        builder = FaultTreeBuilder("race-plus-spares")
        builder.basic_event("T", 1.0)
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        builder.pand_gate("race", ["A", "B"])
        builder.fdep("F", trigger="T", dependents=["A", "B"])
        builder.basic_event("P", 1.0)
        builder.basic_event("S1", 1.0, dormancy=0.0)
        builder.basic_event("S2", 1.0, dormancy=0.0)
        builder.spare_gate("U", primary="P", spares=["S1", "S2"])
        builder.or_gate("sys", ["race", "U"])
        problem = DesignProblem(
            tree=builder.build(top="sys"),
            choices=(SpareCountChoice("U", counts=(1, 2), costs=(0.0, 1.0)),),
            budget=1.0,
        )
        result = optimize(problem)
        assert result.nondeterministic
        assert result.best_lower <= result.best_value == result.best_upper
        assert result.best_lower < result.best_upper  # a genuine race
        assert [c.option_index for c in result.best_design] == [1]
        assert result.scheduler  # contested states were pinned
        for choice in result.scheduler:
            assert 0.0 < choice.agreement <= 1.0
        exhaustive = optimize(problem, exhaustive=True)
        assert exhaustive.best_value == pytest.approx(
            result.best_value, abs=TOLERANCE
        )


class TestResultSchema:
    def test_round_trip_and_summary(self):
        result = optimize(small_problem())
        payload = json.loads(result.to_json())
        assert payload["schema"] == OPTIMIZE_SCHEMA
        restored = OptimizeResult.from_dict(payload)
        assert restored.best_value == result.best_value
        assert restored.best_design == result.best_design
        assert restored.module_tables == result.module_tables
        assert restored.to_dict() == result.to_dict()
        summary = result.summary()
        assert "best design" in summary
        assert "unreliability(t=1)" in summary

    def test_wrong_schema_rejected(self):
        result = optimize(small_problem())
        payload = result.to_dict()
        payload["schema"] = "repro.other/1"
        with pytest.raises(AnalysisError, match="schema"):
            OptimizeResult.from_dict(payload)

    def test_pruning_ratio(self):
        result = optimize(small_problem())
        assert result.pruning_ratio == result.leaves_evaluated / 3


class TestSeededScenarios:
    def test_cas_scenario_shape(self):
        problem = cas_spares_scenario()
        assert problem.space_size == 72
        assert problem.budget == 3.0
        names = [choice.name for choice in problem.choices]
        assert names == [
            "spares:CPU_unit",
            "spares:Motors",
            "spares:Pump_A+Pump_B",
            "repair:M1",
            "repair:M2",
        ]
        problem.tree.validate()

    def test_cps_scenario_shape(self):
        problem = cps_spares_scenario()
        assert problem.space_size == 4
        assert [choice.name for choice in problem.choices] == [
            "spares:Spare_A1",
            "spares:Spare_A4",
        ]
        problem.tree.validate()
