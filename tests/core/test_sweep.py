"""Unit tests of the rate-sweep engine (`repro.core.sweep`)."""

import pytest

from repro import (
    MTTF,
    Query,
    RateSweep,
    SweepStudy,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
    evaluate,
    sweep,
)
from repro.core.sweep import substitute_parameters, with_rate_parameters
from repro.ctmc.builders import CtmcSkeleton, CtmdpSkeleton
from repro.dft import FaultTreeBuilder
from repro.errors import AnalysisError, FaultTreeError

MISSION_TIMES = [0.5, 1.0, 2.0]


def parametric_spare_tree():
    builder = FaultTreeBuilder("spare-param")
    builder.parameter("lam", 0.5)
    builder.parameter("mu", 2.0)
    builder.basic_event("A", param="lam")
    builder.basic_event("B", failure_rate=2.0)
    builder.basic_event("S", param="mu", dormancy=0.3)
    builder.spare_gate("G", primary="A", spares=["S"])
    builder.and_gate("top", ["G", "B"])
    return builder.build(top="top")


def nondeterministic_tree():
    """FDEP trigger failing both PAND inputs at once (Section 4.4)."""
    builder = FaultTreeBuilder("nondet-param")
    builder.parameter("lam", 1.0)
    builder.basic_event("T", param="lam")
    builder.basic_event("X", failure_rate=1.0)
    builder.basic_event("Y", failure_rate=1.0)
    builder.pand_gate("top", ["X", "Y"])
    builder.fdep("F", trigger="T", dependents=["X", "Y"])
    return builder.build(top="top")


class TestRateSweepSpec:
    def test_explicit_samples_are_normalised(self):
        rs = RateSweep(Unreliability([1.0]), [{"lam": 1}, {"lam": 0.5, "mu": 2}])
        assert rs.parameters == ("lam", "mu")
        assert len(rs) == 2
        assert rs.samples[0] == {"lam": 1.0}

    def test_grid_is_the_cartesian_product(self):
        rs = RateSweep.grid(Unreliability([1.0]), lam=[0.1, 0.2], mu=[1.0, 2.0, 3.0])
        assert len(rs) == 6
        assert {tuple(sorted(s.items())) for s in rs.samples} == {
            (("lam", a), ("mu", b)) for a in (0.1, 0.2) for b in (1.0, 2.0, 3.0)
        }

    def test_scalar_axis_is_accepted(self):
        rs = RateSweep.grid(Unreliability([1.0]), lam=0.5)
        assert rs.samples == ({"lam": 0.5},)

    def test_empty_sweep_is_rejected(self):
        with pytest.raises(AnalysisError, match="at least one sample"):
            RateSweep(Unreliability([1.0]), [])

    def test_empty_sample_is_rejected(self):
        with pytest.raises(AnalysisError, match="at least one parameter"):
            RateSweep(Unreliability([1.0]), [{}])

    @pytest.mark.parametrize("value", [0.0, -1.0, float("inf"), float("nan")])
    def test_non_positive_samples_are_rejected(self, value):
        with pytest.raises(AnalysisError, match="positive finite"):
            RateSweep(Unreliability([1.0]), [{"lam": value}])

    def test_non_numeric_sample_is_rejected(self):
        with pytest.raises(AnalysisError, match="not a number"):
            RateSweep(Unreliability([1.0]), [{"lam": "fast"}])


class TestSweepEngine:
    def test_rows_match_full_pipeline_reruns(self):
        tree = parametric_spare_tree()
        samples = [
            {"lam": 0.1, "mu": 0.5},
            {"lam": 0.5, "mu": 2.0},
            {"lam": 2.0, "mu": 0.1},
        ]
        query = Unreliability(MISSION_TIMES) + MTTF()
        result = sweep(tree, RateSweep(query, samples))
        assert result.num_failed == 0
        for row, sample in zip(result.rows, samples):
            reference = evaluate(substitute_parameters(tree, sample), query)
            for mine, theirs in zip(row.measures, reference.measures):
                assert mine.kind == theirs.kind
                assert mine.values == pytest.approx(theirs.values, abs=1e-9)

    def test_shared_pipeline_runs_once(self):
        tree = parametric_spare_tree()
        study = SweepStudy(tree)
        result = study.run(RateSweep.grid(Unreliability([1.0]), lam=[0.1, 0.2, 0.3]))
        # one conversion + aggregation, recorded once in the shared timings
        assert result.timings["shared"] >= result.timings["aggregation"]
        assert len(result.rows) == 3
        assert isinstance(study.skeleton, CtmcSkeleton)
        assert study.skeleton.parameters == ("lam", "mu")

    def test_unswept_parameters_keep_their_nominal_value(self):
        tree = parametric_spare_tree()
        result = sweep(tree, RateSweep(Unreliability([1.0]), [{"lam": 0.5}]))
        nominal = evaluate(tree, Unreliability([1.0]))
        assert result.rows[0]["unreliability"].values == pytest.approx(
            nominal["unreliability"].values, abs=1e-12
        )

    def test_undeclared_parameter_is_rejected(self):
        tree = parametric_spare_tree()
        with pytest.raises(AnalysisError, match="does not declare"):
            sweep(tree, RateSweep(Unreliability([1.0]), [{"nu": 1.0}]))

    def test_unsupported_measures_become_row_level_measure_errors(self):
        # A PAND system may never fail => MTTF diverges; the sweep must keep
        # the unreliability values and record the MTTF failure per measure.
        builder = FaultTreeBuilder("pand-param")
        builder.parameter("lam", 1.0)
        builder.basic_event("X", param="lam")
        builder.basic_event("Y", failure_rate=1.0)
        builder.pand_gate("top", ["Y", "X"])
        tree = builder.build(top="top")
        result = sweep(tree, RateSweep(Unreliability([1.0]) + MTTF(), [{"lam": 2.0}]))
        row = result.rows[0]
        assert row.ok
        assert row["unreliability"].ok
        assert not row["mttf"].ok

    def test_nondeterministic_model_sweeps_bounds(self):
        tree = nondeterministic_tree()
        study = SweepStudy(tree)
        assert isinstance(study.skeleton, CtmdpSkeleton)
        samples = [{"lam": 0.5}, {"lam": 2.0}]
        result = study.run(RateSweep(UnreliabilityBounds([1.0]), samples))
        assert result.model.nondeterministic
        for row, sample in zip(result.rows, samples):
            reference = evaluate(
                substitute_parameters(tree, sample), UnreliabilityBounds([1.0])
            )
            low, high = row["unreliability_bounds"].bounds
            ref_low, ref_high = reference["unreliability_bounds"].bounds
            assert low == pytest.approx(ref_low, abs=1e-9)
            assert high == pytest.approx(ref_high, abs=1e-9)

    def test_repair_parameter_sweeps_unavailability(self):
        builder = FaultTreeBuilder("repairable-param")
        builder.parameter("mu", 2.0)
        builder.basic_event("A", failure_rate=1.0, repair_param="mu")
        builder.basic_event("B", failure_rate=1.0, repair_rate=1.0)
        builder.or_gate("top", ["A", "B"])
        tree = builder.build(top="top")
        query = Query(Unavailability())
        samples = [{"mu": 0.5}, {"mu": 4.0}]
        result = sweep(tree, RateSweep(query, samples))
        for row, sample in zip(result.rows, samples):
            reference = evaluate(substitute_parameters(tree, sample), query)
            assert row["unavailability"].value == pytest.approx(
                reference["unavailability"].value, abs=1e-9
            )
        # faster repair => lower unavailability
        assert result.rows[1]["unavailability"].value < result.rows[0]["unavailability"].value

    def test_json_payload_schema(self):
        tree = parametric_spare_tree()
        result = sweep(tree, RateSweep(Unreliability([1.0]), [{"lam": 1.0}]))
        payload = result.to_dict()
        assert payload["schema"] == "repro.sweep/3"
        assert payload["parameters"] == ["lam"]
        assert payload["aggregate"] == {"samples": 1, "failed": 0, "processes": 1}
        assert payload["rows"][0]["sample"] == {"lam": 1.0}
        # The kernel's per-row split is part of the /2 schema.
        assert payload["rows"][0]["instantiate_seconds"] >= 0.0
        assert payload["rows"][0]["solve_seconds"] >= 0.0
        assert payload["timings"]["instantiate"] >= 0.0
        assert payload["timings"]["solve"] >= 0.0


class TestTreeHelpers:
    def test_with_rate_parameters_attaches_all_events_by_default(self):
        builder = FaultTreeBuilder("plain")
        builder.basic_event("A", 0.5)
        builder.basic_event("B", 1.5)
        builder.and_gate("top", ["A", "B"])
        tree = with_rate_parameters(builder.build(top="top"))
        assert tree.parameters == {"A": 0.5, "B": 1.5}
        assert tree.element("A").failure_rate_param == "A"

    def test_shared_parameter_requires_equal_nominals(self):
        builder = FaultTreeBuilder("plain")
        builder.basic_event("A", 0.5)
        builder.basic_event("B", 1.5)
        builder.and_gate("top", ["A", "B"])
        tree = builder.build(top="top")
        with pytest.raises(FaultTreeError, match="disagree on the"):
            with_rate_parameters(tree, {"A": "lam", "B": "lam"})

    def test_with_rate_parameters_rejects_gates(self):
        builder = FaultTreeBuilder("plain")
        builder.basic_event("A", 0.5)
        builder.basic_event("B", 1.5)
        builder.and_gate("top", ["A", "B"])
        tree = builder.build(top="top")
        with pytest.raises(FaultTreeError, match="not a basic event"):
            with_rate_parameters(tree, ["top"])

    def test_substitute_parameters_drops_bindings(self):
        tree = parametric_spare_tree()
        plain = substitute_parameters(tree, {"lam": 0.25})
        assert plain.parameters == {}
        assert plain.element("A").failure_rate == 0.25
        assert plain.element("A").failure_rate_param is None
        # unswept parameter keeps its nominal
        assert plain.element("S").failure_rate == 2.0

    def test_substitute_rejects_undeclared_parameters(self):
        tree = parametric_spare_tree()
        with pytest.raises(FaultTreeError, match="undeclared"):
            substitute_parameters(tree, {"nu": 1.0})
