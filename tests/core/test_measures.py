"""Tests for the declarative measure specs and queries."""

import pytest

from repro.core.measures import (
    MTTF,
    Measure,
    Query,
    Unavailability,
    Unreliability,
    UnreliabilityBounds,
)
from repro.errors import AnalysisError


class TestMeasureSpecs:
    def test_scalar_time_is_normalised_to_tuple(self):
        measure = Unreliability(1.0)
        assert measure.times == (1.0,)

    def test_sequence_times_are_normalised(self):
        measure = Unreliability([1, 0.5])
        assert measure.times == (1.0, 0.5)
        assert all(isinstance(t, float) for t in measure.times)

    def test_default_time(self):
        assert Unreliability().times == (1.0,)
        assert UnreliabilityBounds().times == (1.0,)

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            Unreliability([-1.0])
        with pytest.raises(AnalysisError):
            Unavailability(-0.5)

    def test_non_finite_time_rejected(self):
        with pytest.raises(AnalysisError):
            Unreliability([float("inf")])
        with pytest.raises(AnalysisError):
            Unreliability([float("nan")])
        with pytest.raises(AnalysisError):
            Unavailability(float("inf"))

    def test_empty_times_rejected(self):
        with pytest.raises(AnalysisError):
            Unreliability([])

    def test_measures_compare_by_content(self):
        assert Unreliability([1.0]) == Unreliability(1.0)
        assert Unreliability([1.0]) != UnreliabilityBounds([1.0])
        assert MTTF() == MTTF()

    def test_unavailability_steady_state(self):
        assert Unavailability().steady_state
        assert not Unavailability(2.0).steady_state
        assert Unavailability(2.0).transient_times() == (2.0,)
        assert Unavailability().transient_times() == ()

    def test_to_dict_roundtrips_kinds(self):
        assert Unreliability([0.5]).to_dict() == {"kind": "unreliability", "times": [0.5]}
        assert UnreliabilityBounds([2.0]).to_dict() == {
            "kind": "unreliability_bounds",
            "times": [2.0],
        }
        assert Unavailability().to_dict() == {"kind": "unavailability", "steady_state": True}
        assert Unavailability(1.5).to_dict() == {
            "kind": "unavailability",
            "steady_state": False,
            "time": 1.5,
        }
        assert MTTF().to_dict() == {"kind": "mttf"}


class TestQuery:
    def test_positional_and_iterable_construction_agree(self):
        a, b = Unreliability([1.0]), MTTF()
        assert Query(a, b) == Query([a, b])
        assert Query(a, b) == Query(m for m in (a, b))

    def test_nested_queries_are_flattened(self):
        query = Query(Query(Unreliability([1.0])), MTTF())
        assert [m.kind for m in query] == ["unreliability", "mttf"]

    def test_addition_composes(self):
        query = Unreliability([1.0]) + MTTF() + Unavailability()
        assert isinstance(query, Query)
        assert len(query) == 3

    def test_empty_query_rejected(self):
        with pytest.raises(AnalysisError):
            Query()

    def test_non_measure_rejected(self):
        with pytest.raises(AnalysisError):
            Query("unreliability")

    def test_transient_times_union_is_sorted_and_deduplicated(self):
        query = Query(
            Unreliability([2.0, 0.5]),
            UnreliabilityBounds([0.5, 1.0]),
            Unavailability(3.0),
            MTTF(),
        )
        assert query.transient_times() == (0.5, 1.0, 2.0, 3.0)

    def test_to_dict_lists_measures_in_order(self):
        query = Unreliability([1.0]) + MTTF()
        assert query.to_dict() == {
            "measures": [{"kind": "unreliability", "times": [1.0]}, {"kind": "mttf"}]
        }

    def test_measure_is_base_class(self):
        assert isinstance(Unreliability([1.0]), Measure)
