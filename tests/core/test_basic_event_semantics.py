"""Tests for the elementary I/O-IMC of basic events (paper Figures 3 and 13)."""

import pytest

from repro.core.semantics import BasicEventBehavior
from repro.dft import BasicEvent
from repro.ioimc import ActionType


def build(event, **kwargs):
    return BasicEventBehavior(event, **kwargs).to_ioimc()


class TestHotBasicEvent:
    def test_structure(self):
        model = build(BasicEvent("A", 2.0), fire_action="fail_A")
        # operational -> firing -> fired
        assert model.num_states == 3
        assert model.signature.outputs == frozenset({"fail_A"})
        assert model.signature.inputs == frozenset()

    def test_single_markovian_rate(self):
        model = build(BasicEvent("A", 2.0), fire_action="fail_A")
        rates = [rate for s in model.states() for rate, _ in model.markovian_out(s)]
        assert rates == [2.0]

    def test_firing_state_is_urgent(self):
        model = build(BasicEvent("A", 2.0), fire_action="fail_A")
        firing = [
            s
            for s in model.states()
            if "fail_A" in model.actions_enabled(s)
        ]
        assert len(firing) == 1
        assert model.is_urgent(firing[0])


class TestColdBasicEvent:
    def test_dormant_state_has_no_rate(self):
        event = BasicEvent("C", 3.0, dormancy=0.0)
        model = build(event, fire_action="fail_C", activation_action="act_C")
        assert model.exit_rate(model.initial) == 0.0

    def test_activation_enables_failure(self):
        event = BasicEvent("C", 3.0, dormancy=0.0)
        model = build(event, fire_action="fail_C", activation_action="act_C")
        (active_state,) = model.interactive_on(model.initial, "act_C")
        assert model.exit_rate(active_state) == pytest.approx(3.0)

    def test_cold_event_has_four_states(self):
        event = BasicEvent("C", 3.0, dormancy=0.0)
        model = build(event, fire_action="fail_C", activation_action="act_C")
        # dormant, active, firing, fired (firing/fired reached only when active)
        assert model.num_states == 4


class TestWarmBasicEvent:
    def test_dormant_rate_scaled_by_dormancy(self):
        event = BasicEvent("W", 2.0, dormancy=0.25)
        model = build(event, fire_action="fail_W", activation_action="act_W")
        assert model.exit_rate(model.initial) == pytest.approx(0.5)

    def test_active_rate_full(self):
        event = BasicEvent("W", 2.0, dormancy=0.25)
        model = build(event, fire_action="fail_W", activation_action="act_W")
        (active_state,) = model.interactive_on(model.initial, "act_W")
        assert model.exit_rate(active_state) == pytest.approx(2.0)

    def test_warm_event_can_fire_from_dormant_mode(self):
        event = BasicEvent("W", 2.0, dormancy=0.25)
        model = build(event, fire_action="fail_W", activation_action="act_W")
        # From the initial (dormant) state the Markovian transition leads to a
        # state that urgently outputs the firing signal.
        ((rate, firing_state),) = list(model.markovian_out(model.initial))
        assert "fail_W" in model.actions_enabled(firing_state)


class TestAlwaysActiveEvent:
    def test_no_activation_input_when_always_active(self):
        model = build(BasicEvent("A", 1.0, dormancy=0.0), fire_action="fail_A")
        assert model.signature.inputs == frozenset()
        # An always-active cold event behaves like a hot one.
        assert model.exit_rate(model.initial) == pytest.approx(1.0)


class TestRepairableBasicEvent:
    def test_requires_repair_action(self):
        with pytest.raises(ValueError):
            BasicEventBehavior(BasicEvent("R", 1.0, repair_rate=2.0), fire_action="fail_R")

    def test_fired_state_not_absorbing(self):
        event = BasicEvent("R", 1.0, repair_rate=2.0)
        model = build(event, fire_action="fail_R", repair_action="rep_R")
        # After firing, a Markovian repair transition exists.
        fired_states = [
            s
            for s in model.states()
            if model.exit_rate(s) == pytest.approx(2.0)
        ]
        assert fired_states, "the fired state must carry the repair rate"

    def test_repair_announced_then_operational(self):
        event = BasicEvent("R", 1.0, repair_rate=2.0)
        model = build(event, fire_action="fail_R", repair_action="rep_R")
        announcing = [
            s for s in model.states() if "rep_R" in model.actions_enabled(s)
        ]
        assert len(announcing) == 1
        (target,) = model.interactive_on(announcing[0], "rep_R")
        # Back to an operational state with the failure rate enabled.
        assert model.exit_rate(target) == pytest.approx(1.0)

    def test_repairable_cycle_is_closed(self):
        event = BasicEvent("R", 1.0, repair_rate=2.0)
        model = build(event, fire_action="fail_R", repair_action="rep_R")
        # 4 states: operational, firing, fired, announcing-repair.
        assert model.num_states == 4

    def test_non_repairable_ignores_repair_action_argument(self):
        model = BasicEventBehavior(
            BasicEvent("A", 1.0), fire_action="fail_A", repair_action="rep_A"
        ).to_ioimc()
        assert "rep_A" not in model.signature.outputs
