"""Tests for the spare-gate elementary behaviour (paper Figure 11, Section 6.1)."""

import pytest

from repro.core.semantics import SpareGateBehavior


def make_gate(activation=None, competitors=None):
    return SpareGateBehavior(
        "G",
        primary_fire_action="fail_P",
        spare_fire_actions=["fail_S"],
        claim_actions=["claim_S_by_G"],
        competitor_claim_actions=competitors or {},
        fire_action="fail_G",
        activation_action=activation,
    )


def make_two_spare_gate():
    return SpareGateBehavior(
        "G",
        primary_fire_action="fail_P",
        spare_fire_actions=["fail_S1", "fail_S2"],
        claim_actions=["claim_S1_by_G", "claim_S2_by_G"],
        competitor_claim_actions={},
        fire_action="fail_G",
        activation_action=None,
    )


def outputs_of(behavior, state):
    return [action for action, _ in behavior.urgent(state)]


class TestActiveGate:
    def test_initially_silent(self):
        gate = make_gate()
        assert outputs_of(gate, gate.initial_state()) == []

    def test_primary_failure_triggers_claim(self):
        gate = make_gate()
        state = gate.on_input(gate.initial_state(), "fail_P")
        assert outputs_of(gate, state) == ["claim_S_by_G"]

    def test_claim_then_spare_failure_fires(self):
        gate = make_gate()
        state = gate.on_input(gate.initial_state(), "fail_P")
        action, state = next(iter(gate.urgent(state)))
        assert action == "claim_S_by_G"
        state = gate.on_input(state, "fail_S")
        assert outputs_of(gate, state) == ["fail_G"]

    def test_spare_failure_before_primary_is_recorded(self):
        gate = make_gate()
        state = gate.on_input(gate.initial_state(), "fail_S")
        assert outputs_of(gate, state) == []
        state = gate.on_input(state, "fail_P")
        # No spare left: the gate fails without claiming.
        assert outputs_of(gate, state) == ["fail_G"]

    def test_spares_claimed_in_declared_order(self):
        gate = make_two_spare_gate()
        state = gate.on_input(gate.initial_state(), "fail_P")
        assert outputs_of(gate, state) == ["claim_S1_by_G"]

    def test_second_spare_claimed_after_first_fails(self):
        gate = make_two_spare_gate()
        state = gate.on_input(gate.initial_state(), "fail_P")
        _action, state = next(iter(gate.urgent(state)))
        state = gate.on_input(state, "fail_S1")
        assert outputs_of(gate, state) == ["claim_S2_by_G"]

    def test_fired_state_absorbing(self):
        gate = make_gate()
        state = gate.on_input(gate.initial_state(), "fail_S")
        state = gate.on_input(state, "fail_P")
        _action, state = next(iter(gate.urgent(state)))
        assert state.fired
        # Further inputs are ignored.
        assert gate.on_input(state, "fail_P") == state
        assert outputs_of(gate, state) == []


class TestSharedSpare:
    def test_competitor_claim_marks_spare_taken(self):
        gate = make_gate(competitors={0: ["claim_S_by_H"]})
        state = gate.on_input(gate.initial_state(), "claim_S_by_H")
        assert state.spare_status == ("taken",)
        state = gate.on_input(state, "fail_P")
        # Nothing left to claim: fail immediately.
        assert outputs_of(gate, state) == ["fail_G"]

    def test_own_claim_not_overridden_by_competitor(self):
        gate = make_gate(competitors={0: ["claim_S_by_H"]})
        state = gate.on_input(gate.initial_state(), "fail_P")
        _action, state = next(iter(gate.urgent(state)))
        assert state.spare_status == ("mine",)
        after = gate.on_input(state, "claim_S_by_H")
        assert after.spare_status == ("mine",)

    def test_signature_contains_competitor_inputs(self):
        gate = make_gate(competitors={0: ["claim_S_by_H"]})
        signature = gate.signature()
        assert "claim_S_by_H" in signature.inputs
        assert "claim_S_by_G" in signature.outputs


class TestDormantGate:
    def test_dormant_gate_does_not_claim(self):
        gate = make_gate(activation="act_G")
        state = gate.on_input(gate.initial_state(), "fail_P")
        assert outputs_of(gate, state) == []

    def test_activation_triggers_pending_claim(self):
        gate = make_gate(activation="act_G")
        state = gate.on_input(gate.initial_state(), "fail_P")
        state = gate.on_input(state, "act_G")
        assert outputs_of(gate, state) == ["claim_S_by_G"]

    def test_dormant_gate_still_fails_when_exhausted(self):
        gate = make_gate(activation="act_G")
        state = gate.on_input(gate.initial_state(), "fail_S")
        state = gate.on_input(state, "fail_P")
        assert outputs_of(gate, state) == ["fail_G"]

    def test_dormant_gate_fails_when_spare_taken(self):
        gate = make_gate(activation="act_G", competitors={0: ["claim_S_by_H"]})
        state = gate.on_input(gate.initial_state(), "claim_S_by_H")
        state = gate.on_input(state, "fail_P")
        assert outputs_of(gate, state) == ["fail_G"]


class TestValidation:
    def test_needs_spares(self):
        with pytest.raises(ValueError):
            SpareGateBehavior(
                "G",
                primary_fire_action="fail_P",
                spare_fire_actions=[],
                claim_actions=[],
                competitor_claim_actions={},
                fire_action="fail_G",
            )

    def test_claims_match_spares(self):
        with pytest.raises(ValueError):
            SpareGateBehavior(
                "G",
                primary_fire_action="fail_P",
                spare_fire_actions=["fail_S"],
                claim_actions=[],
                competitor_claim_actions={},
                fire_action="fail_G",
            )

    def test_explored_model_is_finite_and_small(self):
        model = make_gate(activation="act_G", competitors={0: ["claim_S_by_H"]}).to_ioimc()
        assert model.num_states <= 40
        model.validate()
