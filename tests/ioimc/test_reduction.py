"""Tests for the aggregation pipeline (reduction module)."""

import pytest

from repro.errors import ModelError
from repro.ioimc import (
    AggregationOptions,
    IOIMC,
    aggregate,
    compress_deterministic_tau,
    remove_internal_self_loops,
    signature,
)


def chain_with_taus() -> IOIMC:
    model = IOIMC("chain", signature(outputs=["done"], internals=["tau"]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state()
    s3 = model.add_state(labels=["failed"])
    model.add_markovian(s0, 2.0, s1)
    model.add_interactive(s1, "tau", s2)
    model.add_interactive(s2, "done", s3)
    model.add_interactive(s3, "tau", s3)  # internal self loop
    return model


class TestHelpers:
    def test_remove_internal_self_loops(self):
        cleaned = remove_internal_self_loops(chain_with_taus())
        assert all(
            target != state
            for state in cleaned.states()
            for action, target in cleaned.interactive_out(state)
        )

    def test_compress_deterministic_tau(self):
        compressed = compress_deterministic_tau(chain_with_taus())
        # s1 (single tau to s2) disappears.
        assert compressed.num_states == 3

    def test_compression_redirects_markovian_sources(self):
        compressed = compress_deterministic_tau(chain_with_taus())
        # The Markovian transition from the initial state now goes straight to
        # the state offering "done".
        (rate, target), = list(compressed.markovian_out(compressed.initial))
        assert rate == pytest.approx(2.0)
        assert "done" in compressed.actions_enabled(target)

    def test_compression_moves_initial_state(self):
        model = IOIMC("init", signature(internals=["tau"], outputs=["x"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        model.add_interactive(s0, "tau", s1)
        model.add_interactive(s1, "x", s1)
        compressed = compress_deterministic_tau(model)
        assert compressed.num_states == 1
        assert "x" in compressed.actions_enabled(compressed.initial)

    def test_compression_keeps_branching_taus(self):
        model = IOIMC("branch", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        model.add_interactive(s0, "tau", s1)
        model.add_interactive(s0, "tau", s2)
        compressed = compress_deterministic_tau(model)
        assert compressed.num_states == 3  # non-deterministic choice preserved


class TestAggregate:
    def test_weak_pipeline_reduces(self):
        reduced, stats = aggregate(chain_with_taus())
        assert reduced.num_states <= 3
        assert stats.states_before == 4
        assert stats.states_after == reduced.num_states
        assert 0.0 <= stats.state_reduction <= 1.0

    def test_strong_pipeline(self):
        reduced, _ = aggregate(chain_with_taus(), AggregationOptions(method="strong"))
        assert reduced.num_states <= 3

    def test_tau_only_pipeline(self):
        reduced, _ = aggregate(chain_with_taus(), AggregationOptions(method="tau"))
        assert reduced.num_states <= 4

    def test_none_pipeline_only_restricts_reachability(self):
        model = chain_with_taus()
        model.add_state(name="orphan")
        reduced, stats = aggregate(model, AggregationOptions(method="none"))
        assert reduced.num_states == 4
        assert stats.states_before == 5

    def test_unknown_method_rejected(self):
        with pytest.raises(ModelError):
            AggregationOptions(method="magic")

    def test_aggregation_keeps_name(self):
        model = chain_with_taus()
        reduced, _ = aggregate(model)
        assert reduced.name == model.name

    def test_statistics_reduction_zero_for_empty_model(self):
        stats_model = IOIMC("one", signature())
        stats_model.add_state(initial=True)
        reduced, stats = aggregate(stats_model)
        assert reduced.num_states == 1
        assert stats.state_reduction == 0.0
