"""Memory regression: the memoised tau-closure cache stays linear on tau-chains.

On a tau-chain of ``n`` SCCs the backward closure of a seed near the sink is
``O(n)``; querying every singleton seed therefore creates ``O(n^2)`` closure
*work*.  The LRU bound on :meth:`TauCondensation.backward_closure_cached`
guarantees the *retained* memory stays ``O(CLOSURE_CACHE_LIMIT * n)`` — i.e.
linear in the chain length, not quadratic.  Pinned with tracemalloc on two
chain sizes: doubling the chain must scale retained bytes roughly linearly.
"""

import tracemalloc

from repro.ioimc import IOIMC, signature
from repro.ioimc.partition import CLOSURE_CACHE_LIMIT, TauCondensation


def _tau_chain(length: int) -> IOIMC:
    model = IOIMC("tau-chain", signature(internals=("t",)))
    for _ in range(length):
        model.add_state()
    model.set_initial(0)
    for state in range(length - 1):
        model.add_interactive(state, "t", state + 1)
    return model


def _retained_cache_bytes(length: int) -> int:
    """Bytes still allocated after querying every singleton closure once."""
    condensation = TauCondensation(_tau_chain(length))
    tracemalloc.start()
    try:
        for scc in range(condensation.num_sccs):
            condensation.backward_closure_cached(frozenset((scc,)))
        current, _peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(condensation._closure_cache) <= CLOSURE_CACHE_LIMIT
    return current


class TestClosureCacheMemory:
    def test_cache_is_bounded(self):
        condensation = TauCondensation(_tau_chain(CLOSURE_CACHE_LIMIT * 3))
        for scc in range(condensation.num_sccs):
            condensation.backward_closure_cached(frozenset((scc,)))
        assert len(condensation._closure_cache) <= CLOSURE_CACHE_LIMIT

    def test_repeated_queries_share_one_frozenset(self):
        condensation = TauCondensation(_tau_chain(16))
        seeds = frozenset((condensation.num_sccs - 1,))
        first = condensation.backward_closure_cached(seeds)
        second = condensation.backward_closure_cached(seeds)
        assert first is second

    def test_retained_memory_linear_on_tau_chains(self):
        small = _retained_cache_bytes(600)
        large = _retained_cache_bytes(1200)
        # Linear retention doubles (ratio ~2); an unbounded cache would
        # retain the full closure history and quadruple (ratio ~4).  The
        # 3.0 threshold leaves head-room for allocator noise on either side.
        assert large <= 3.0 * small, (small, large)
