"""Tests for parallel composition of I/O-IMC."""

import pytest

from repro.errors import CompositionError
from repro.ioimc import (
    IOIMC,
    ActionType,
    closed_actions,
    hide_closed,
    parallel,
    parallel_many,
    signature,
)


def producer(action: str = "a", rate: float = 2.0) -> IOIMC:
    model = IOIMC("producer", signature(outputs=[action]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state()
    model.add_markovian(s0, rate, s1)
    model.add_interactive(s1, action, s2)
    return model


def consumer(action: str = "a") -> IOIMC:
    model = IOIMC("consumer", signature(inputs=[action]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state(labels=["received"])
    model.add_interactive(s0, action, s1)
    return model


class TestSynchronisation:
    def test_output_drives_input(self):
        composite = parallel(producer(), consumer())
        # a stays an output of the composite
        assert "a" in composite.signature.outputs
        assert "a" not in composite.signature.inputs
        # the synchronised transition moves both components at once
        labelled = [s for s in composite.states() if "received" in composite.labels(s)]
        assert labelled, "the consumer must be able to receive the output"

    def test_input_enabledness_implicit_self_loop(self):
        # A consumer without an explicit transition in some state still lets
        # the producer output happen (it just stays put).
        lazy = IOIMC("lazy", signature(inputs=["a"]))
        lazy.add_state(initial=True)
        composite = parallel(producer(), lazy)
        # Producer can still perform its output: 3 states reachable.
        assert composite.num_states == 3

    def test_shared_outputs_rejected(self):
        with pytest.raises(CompositionError):
            parallel(producer("x"), producer("x"))

    def test_markovian_interleaving(self):
        left = producer("a", rate=1.0)
        right = producer("b", rate=2.0)
        composite = parallel(left, right)
        # From the initial state both delays race: two Markovian transitions.
        initial = composite.initial
        rates = sorted(rate for rate, _ in composite.markovian_out(initial))
        assert rates == [1.0, 2.0]

    def test_internal_actions_never_synchronise(self):
        left = IOIMC("l", signature(internals=["step"]))
        l0 = left.add_state(initial=True)
        l1 = left.add_state()
        left.add_interactive(l0, "step", l1)
        right = IOIMC("r", signature(internals=["step"]))
        r0 = right.add_state(initial=True)
        r1 = right.add_state()
        right.add_interactive(r0, "step", r1)
        composite = parallel(left, right)
        # Interleaving: 4 reachable states, not 2.
        assert composite.num_states == 4

    def test_shared_input_synchronises_listeners(self):
        left = consumer("a")
        right = consumer("a")
        composite = parallel(left, right)
        assert "a" in composite.signature.inputs
        targets = composite.interactive_on(composite.initial, "a")
        assert len(targets) == 1
        target = targets[0]
        assert "received" in composite.labels(target)

    def test_labels_are_unioned(self):
        composite = parallel(producer(), consumer())
        final = [
            s
            for s in composite.states()
            if "received" in composite.labels(s)
        ]
        assert final

    def test_three_way_composition(self):
        # producer -> relay -> consumer
        relay = IOIMC("relay", signature(inputs=["a"], outputs=["b"]))
        r0 = relay.add_state(initial=True)
        r1 = relay.add_state()
        r2 = relay.add_state()
        relay.add_interactive(r0, "a", r1)
        relay.add_interactive(r1, "b", r2)
        composite = parallel_many([producer(), relay, consumer("b")])
        assert "received" in {
            label for s in composite.states() for label in composite.labels(s)
        }

    def test_parallel_many_single_model(self):
        single = parallel_many([producer()], name="alone")
        assert single.name == "alone"
        assert single.num_states == 3

    def test_parallel_many_empty_rejected(self):
        with pytest.raises(CompositionError):
            parallel_many([])


class TestHidingHelpers:
    def test_closed_actions(self):
        models = [producer("a"), consumer("a")]
        assert closed_actions(models) == frozenset({"a"})
        assert closed_actions(models, keep=["a"]) == frozenset()

    def test_hide_closed_respects_external_listeners(self):
        composite = parallel(producer("a"), consumer("a"))
        # Another (not yet composed) model still listens to "a".
        still_open = hide_closed(composite, external_inputs=["a"])
        assert "a" in still_open.signature.outputs
        closed = hide_closed(composite, external_inputs=[])
        assert "a" in closed.signature.internals

    def test_hide_closed_keep(self):
        composite = parallel(producer("a"), consumer("a"))
        kept = hide_closed(composite, external_inputs=[], keep=["a"])
        assert "a" in kept.signature.outputs
