"""Tests for the declarative behaviour framework."""

import pytest

from repro.errors import ModelError
from repro.ioimc import ActionType, ElementBehavior, ExplicitBehavior, build_ioimc, signature


class CounterBehavior(ElementBehavior):
    """Counts ``tick`` inputs up to a bound, then outputs ``full``."""

    name = "counter"

    def __init__(self, bound: int = 2):
        self.bound = bound

    def signature(self):
        return signature(inputs=["tick"], outputs=["full"])

    def initial_state(self):
        return 0

    def on_input(self, state, action):
        if isinstance(state, int) and state < self.bound:
            return state + 1
        return state

    def urgent(self, state):
        if state == self.bound:
            return (("full", "done"),)
        return ()

    def markovian(self, state):
        return ()


class TimerBehavior(ElementBehavior):
    """A Markovian delay followed by an output."""

    name = "timer"

    def __init__(self, rate: float):
        self.rate = rate

    def signature(self):
        return signature(outputs=["elapsed"])

    def initial_state(self):
        return "waiting"

    def on_input(self, state, action):
        return state

    def urgent(self, state):
        if state == "firing":
            return (("elapsed", "done"),)
        return ()

    def markovian(self, state):
        if state == "waiting":
            return ((self.rate, "firing"),)
        return ()

    def labels(self, state):
        return ("done",) if state == "done" else ()


class TestBuildIoimc:
    def test_counter_structure(self):
        model = build_ioimc(CounterBehavior(bound=2))
        # states: 0, 1, 2, "done"
        assert model.num_states == 4
        assert model.signature.inputs == frozenset({"tick"})
        assert model.signature.outputs == frozenset({"full"})

    def test_input_self_loops_left_implicit(self):
        model = build_ioimc(CounterBehavior(bound=1))
        # The "done" state reacts to tick by staying put: no explicit transition.
        done_states = [s for s in model.states() if not list(model.interactive_out(s))]
        assert done_states  # absorbing state exists with no explicit transitions

    def test_timer_markovian_and_labels(self):
        model = build_ioimc(TimerBehavior(4.0))
        assert model.num_states == 3
        rates = [rate for s in model.states() for rate, _ in model.markovian_out(s)]
        assert rates == [4.0]
        labelled = [s for s in model.states() if "done" in model.labels(s)]
        assert len(labelled) == 1

    def test_exploration_bound(self):
        class Unbounded(ElementBehavior):
            name = "unbounded"

            def signature(self):
                return signature(internals=["step"])

            def initial_state(self):
                return 0

            def on_input(self, state, action):
                return state

            def urgent(self, state):
                return (("step", state + 1),)

            def markovian(self, state):
                return ()

        with pytest.raises(ModelError):
            build_ioimc(Unbounded(), max_states=50)

    def test_to_ioimc_convenience(self):
        model = CounterBehavior(bound=3).to_ioimc()
        assert model.num_states == 5


class TestExplicitBehavior:
    def test_round_trip_tables(self):
        behavior = ExplicitBehavior(
            name="explicit",
            signature=signature(inputs=["a"], outputs=["b"]),
            initial="s0",
            inputs={("s0", "a"): "s1"},
            urgent={"s1": [("b", "s2")]},
            markovian={"s0": [(1.5, "s3")]},
            labels={"s2": ("failed",)},
        )
        model = build_ioimc(behavior)
        assert model.num_states == 4
        assert model.signature.classify("b") is ActionType.OUTPUT
        failed = [s for s in model.states() if "failed" in model.labels(s)]
        assert len(failed) == 1

    def test_unspecified_input_is_self_loop(self):
        behavior = ExplicitBehavior(
            name="loop",
            signature=signature(inputs=["a"]),
            initial="only",
            inputs={},
            urgent={},
            markovian={},
        )
        model = build_ioimc(behavior)
        assert model.num_states == 1
        assert list(model.interactive_out(0)) == []
