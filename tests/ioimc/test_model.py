"""Tests for the explicit I/O-IMC model class."""

import pytest

from repro.errors import ModelError, SignatureError
from repro.ioimc import IOIMC, ActionType, signature


def build_small_model() -> IOIMC:
    model = IOIMC("m", signature(inputs=["go"], outputs=["done"], internals=["step"]))
    s0 = model.add_state(initial=True, name="start")
    s1 = model.add_state(name="working")
    s2 = model.add_state(labels=["failed"], name="finished")
    model.add_interactive(s0, "go", s1)
    model.add_markovian(s1, 3.0, s2)
    model.add_interactive(s2, "done", s2)
    return model


class TestConstruction:
    def test_states_and_transitions_counted(self):
        model = build_small_model()
        assert model.num_states == 3
        assert model.num_transitions == 3

    def test_initial_state_required(self):
        model = IOIMC("empty", signature())
        model.add_state()
        with pytest.raises(ModelError):
            _ = model.initial

    def test_unknown_action_rejected(self):
        model = build_small_model()
        with pytest.raises(SignatureError):
            model.add_interactive(0, "unknown", 1)

    def test_non_positive_rate_rejected(self):
        model = build_small_model()
        with pytest.raises(ModelError):
            model.add_markovian(0, 0.0, 1)
        with pytest.raises(ModelError):
            model.add_markovian(0, -1.0, 1)

    def test_missing_state_rejected(self):
        model = build_small_model()
        with pytest.raises(ModelError):
            model.add_interactive(0, "go", 99)

    def test_parallel_markovian_rates_accumulate(self):
        model = IOIMC("acc", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 2.5, s1)
        assert model.exit_rate(s0) == pytest.approx(3.5)
        assert model.num_transitions == 1

    def test_duplicate_interactive_transition_stored_once(self):
        model = build_small_model()
        model.add_interactive(0, "go", 1)
        assert len(list(model.interactive_out(0))) == 1

    def test_labels_and_names(self):
        model = build_small_model()
        assert model.labels(2) == frozenset({"failed"})
        assert model.state_name(0) == "start"
        model.set_labels(0, ["x"])
        assert model.labels(0) == frozenset({"x"})


class TestQueries:
    def test_stability_and_urgency(self):
        model = build_small_model()
        assert model.is_stable(0)
        assert not model.is_urgent(0)  # only an input enabled
        assert model.is_urgent(2)      # output enabled
        assert model.is_stable(2)      # but no internal transition

    def test_internal_makes_state_unstable(self):
        model = IOIMC("tau", signature(internals=["step"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        model.add_interactive(s0, "step", s1)
        assert not model.is_stable(s0)
        assert model.is_urgent(s0)

    def test_exit_rate(self):
        model = build_small_model()
        assert model.exit_rate(1) == pytest.approx(3.0)
        assert model.exit_rate(0) == 0.0

    def test_actions_enabled(self):
        model = build_small_model()
        assert model.actions_enabled(0) == frozenset({"go"})

    def test_transitions_iterator(self):
        model = build_small_model()
        records = list(model.transitions())
        assert len(records) == 3


class TestTransformations:
    def test_copy_is_deep(self):
        model = build_small_model()
        clone = model.copy("clone")
        clone.add_state()
        assert clone.num_states == model.num_states + 1
        assert clone.name == "clone"

    def test_hide_turns_outputs_internal(self):
        model = build_small_model()
        hidden = model.hide(["done"])
        assert "done" in hidden.signature.internals
        assert hidden.num_transitions == model.num_transitions

    def test_rename_actions(self):
        model = build_small_model()
        renamed = model.rename_actions({"go": "start_signal"})
        assert "start_signal" in renamed.signature.inputs
        assert renamed.interactive_on(0, "start_signal") == (1,)

    def test_restrict_to_reachable(self):
        model = build_small_model()
        orphan = model.add_state(name="orphan")
        assert orphan in model.states()
        restricted = model.restrict_to_reachable()
        assert restricted.num_states == 3

    def test_reachable_states(self):
        model = build_small_model()
        assert model.reachable_states() == frozenset({0, 1, 2})

    def test_relabel_states(self):
        model = build_small_model()
        relabelled = model.relabel_states({0: ["fresh"]})
        assert relabelled.labels(0) == frozenset({"fresh"})
        assert model.labels(0) == frozenset()

    def test_validate_passes_on_well_formed_model(self):
        model = build_small_model()
        model.validate()

    def test_to_dot_mentions_all_states(self):
        model = build_small_model()
        dot = model.to_dot()
        assert dot.count("shape=") >= 3
        assert "digraph" in dot

    def test_summary_contains_counts(self):
        model = build_small_model()
        assert "3 states" in model.summary()
