"""Intra-minimisation multi-core: per-component refinement vs the serial run.

``minimize_weak(..., processes=N)`` refines the (undirected) connected
components of the transition graph in worker processes, disjoint-unions the
component quotients and coarsens the union with one serial merge pass before
the reachability restriction.  These tests pin the contract:

* a single-component model always takes the serial path (byte-identical
  output — the parallel branch returns ``None``);
* on multi-component models the strong quotient matches the serial one
  exactly, and the weak quotient matches at the minimisation *fixpoint*
  up to state renumbering (on divergent vanishing states the merge pass
  performs one normalisation step the serial run only reaches on its next
  iteration — the aggregation pipeline iterates to that fixpoint anyway);
* transient measures are preserved bit-for-bit either way.

State renumbering: ``restrict_to_reachable`` keeps ascending block ids, and
block order depends on the component order inside the union, so isomorphic
results may number states differently — comparisons below canonicalise by a
deterministic BFS relabelling instead of comparing raw dots.
"""

import pytest

from repro.ctmc.builders import ctmc_skeleton_from_ioimc
from repro.errors import ModelError
from repro.ioimc import (
    AggregationOptions,
    IOIMC,
    minimize_strong,
    minimize_weak,
    signature,
)
from repro.ioimc.actions import action_name

MISSION_TIMES = (0.5, 1.0, 2.0)


def _add_chain(model, rates, label):
    """One Markovian chain component; returns its entry state."""
    first = model.add_state()
    current = first
    for rate in rates:
        nxt = model.add_state()
        model.add_markovian(current, rate, nxt)
        current = nxt
    model.set_labels(current, {label})
    return first


def two_chain_model():
    """Two disconnected Markovian chains with different rates and labels."""
    model = IOIMC("two-chains", signature())
    entry = _add_chain(model, [1.0, 2.0, 3.0], "failed")
    _add_chain(model, [5.0, 5.0], "other")
    model.set_initial(entry)
    return model


def twin_model():
    """Two identical components: cross-component blocks must merge."""
    model = IOIMC("twins", signature())
    entry = _add_chain(model, [2.0, 2.0], "failed")
    _add_chain(model, [2.0, 2.0], "failed")
    model.set_initial(entry)
    return model


def divergent_union_model():
    """A component with a tau self-loop next to a plain chain."""
    model = IOIMC("divergent-union", signature(internals=("tau",)))
    entry = _add_chain(model, [1.0, 1.0], "failed")
    spinner = model.add_state()
    model.add_interactive(spinner, "tau", spinner)
    stop = model.add_state()
    model.add_markovian(spinner, 4.0, stop)
    model.set_labels(stop, {"done"})
    model.set_initial(entry)
    return model


def connected_model():
    """A single weakly-connected component (the common, post-product case)."""
    model = IOIMC("connected", signature(internals=("tau",)))
    states = [model.add_state() for _ in range(5)]
    model.add_interactive(states[0], "tau", states[1])
    model.add_markovian(states[1], 1.5, states[2])
    model.add_markovian(states[0], 1.5, states[3])
    model.add_interactive(states[3], "tau", states[2])
    model.add_markovian(states[2], 2.5, states[4])
    model.set_labels(states[4], {"failed"})
    model.set_initial(states[0])
    return model


def canonical_form(model):
    """A renumbering-invariant rendering: BFS order over sorted edge keys."""
    order = {model.initial: 0}
    queue = [model.initial]
    while queue:
        state = queue.pop(0)
        moves = sorted(
            [("i", action_name(aid), target) for aid, target in model._itrans[state]]
            + [("m", rate, target) for target, rate in model._mtrans[state].items()]
        )
        for _kind, _key, target in moves:
            if target not in order:
                order[target] = len(order)
                queue.append(target)
    assert len(order) == model.num_states  # restricted models are reachable
    lines = []
    for state in sorted(order, key=order.get):
        moves = sorted(
            [("i", action_name(aid), order[target]) for aid, target in model._itrans[state]]
            + [("m", rate, order[target]) for target, rate in model._mtrans[state].items()]
        )
        lines.append((order[state], sorted(model.labels(state)), moves))
    return lines


def weak_fixpoint(model, processes=1):
    current = minimize_weak(model, processes=processes)
    while True:
        nxt = minimize_weak(current)
        if (
            nxt.num_states == current.num_states
            and nxt.num_transitions == current.num_transitions
        ):
            return nxt
        current = nxt


def failure_curve(model, label="failed"):
    skeleton = ctmc_skeleton_from_ioimc(model)
    return skeleton.instantiate().probability_of_label_curve(label, MISSION_TIMES)


class TestParallelMatchesSerial:
    def test_single_component_takes_serial_path(self):
        model = connected_model()
        serial = minimize_weak(model)
        fanned = minimize_weak(model, processes=4)
        assert fanned.to_dot() == serial.to_dot()  # byte-identical fallback

    @pytest.mark.parametrize("factory", [two_chain_model, twin_model])
    def test_strong_components_match(self, factory):
        model = factory()
        serial = minimize_strong(model)
        fanned = minimize_strong(model, processes=2)
        assert canonical_form(fanned) == canonical_form(serial)

    @pytest.mark.parametrize(
        "factory", [two_chain_model, twin_model, divergent_union_model]
    )
    def test_weak_components_match_at_fixpoint(self, factory):
        model = factory()
        serial = weak_fixpoint(model)
        fanned = weak_fixpoint(model, processes=2)
        assert canonical_form(fanned) == canonical_form(serial)

    def test_twin_components_coarsen_across_the_boundary(self):
        # Per-component refinement cannot merge the twins; the serial merge
        # pass over the union must.
        model = twin_model()
        serial = minimize_weak(model)
        fanned = minimize_weak(model, processes=2)
        assert fanned.num_states == serial.num_states

    def test_measures_preserved(self):
        model = two_chain_model()
        serial = failure_curve(minimize_weak(model))
        fanned = failure_curve(minimize_weak(model, processes=2))
        assert fanned == pytest.approx(serial, abs=1e-12)


class TestOptionsSurface:
    def test_minimisation_processes_validated(self):
        with pytest.raises(ModelError):
            AggregationOptions(minimisation_processes=0)
        with pytest.raises(ModelError):
            AggregationOptions(minimisation_processes=-2)

    def test_minimisation_processes_default_serial(self):
        assert AggregationOptions().minimisation_processes == 1
