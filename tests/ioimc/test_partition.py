"""Tests for the refinable partition and the tau-SCC condensation."""

import tracemalloc

import pytest

from repro.ioimc import IOIMC, RefinablePartition, TauCondensation, signature
from repro.ioimc.bisimulation import weak_bisimulation_partition
from repro.ioimc.partition import canonical_rate, refine


class TestRefinablePartition:
    def test_initially_one_block(self):
        part = RefinablePartition(5)
        assert part.num_blocks == 1
        assert part.num_elements == 5
        assert sorted(part.members(0)) == [0, 1, 2, 3, 4]
        assert all(part.block_of(element) == 0 for element in range(5))

    def test_empty_partition(self):
        part = RefinablePartition(0)
        assert part.num_blocks == 0
        assert part.as_sets() == []

    def test_mark_and_split(self):
        part = RefinablePartition(6)
        for element in (1, 3, 5):
            part.mark(element)
        pairs = part.split_marked()
        assert len(pairs) == 1
        marked, rest = pairs[0]
        assert rest == 0  # the original id keeps the unmarked remainder
        assert sorted(part.members(marked)) == [1, 3, 5]
        assert sorted(part.members(rest)) == [0, 2, 4]
        assert part.num_blocks == 2

    def test_mark_is_idempotent(self):
        part = RefinablePartition(4)
        part.mark(2)
        part.mark(2)
        (marked, _rest), = part.split_marked()
        assert sorted(part.members(marked)) == [2]

    def test_fully_marked_block_not_split(self):
        part = RefinablePartition(3)
        for element in range(3):
            part.mark(element)
        assert part.split_marked() == [(0, -1)]
        assert part.num_blocks == 1

    def test_split_marked_touches_multiple_blocks(self):
        part = RefinablePartition(6)
        part.split_by_key(0, lambda element: element % 2)
        part.mark(0)
        part.mark(1)
        pairs = part.split_marked()
        assert len(pairs) == 2
        assert part.num_blocks == 4

    def test_split_by_key_multiway(self):
        part = RefinablePartition(6)
        created = part.split_by_key(0, lambda element: element % 3)
        assert len(created) == 2
        assert part.num_blocks == 3
        groups = {frozenset(part.members(block)) for block in part.blocks()}
        assert groups == {frozenset({0, 3}), frozenset({1, 4}), frozenset({2, 5})}

    def test_split_by_key_no_change(self):
        part = RefinablePartition(4)
        assert part.split_by_key(0, lambda _element: "same") == []
        assert part.num_blocks == 1

    def test_block_of_tracks_splits(self):
        part = RefinablePartition(4)
        part.mark(0)
        part.mark(1)
        (marked, rest), = part.split_marked()
        assert {part.block_of(0), part.block_of(1)} == {marked}
        assert {part.block_of(2), part.block_of(3)} == {rest}

    def test_as_sets_ordered_by_min_member(self):
        part = RefinablePartition(4)
        part.mark(3)
        part.split_marked()
        assert part.as_sets() == [frozenset({0, 1, 2}), frozenset({3})]


class TestRefineLoop:
    def test_worklist_deduplicates_and_terminates(self):
        processed = []

        def process(item, push):
            processed.append(item)
            if item == "a":
                push("b")
                push("b")  # pending duplicate must be dropped

        refine(["a", "a"], process)
        assert processed == ["a", "b"]


def tau_chain(length: int, label_last: bool = True) -> IOIMC:
    model = IOIMC("chain", signature(internals=["tau"]))
    for index in range(length):
        labels = ["failed"] if label_last and index == length - 1 else []
        model.add_state(labels=labels, initial=index == 0)
    for index in range(length - 1):
        model.add_interactive(index, "tau", index + 1)
    return model


class TestTauCondensation:
    def test_chain_has_singleton_sccs(self):
        cond = TauCondensation(tau_chain(4))
        assert cond.num_sccs == 4
        assert all(len(members) == 1 for members in cond.members)

    def test_cycle_collapses_to_one_scc(self):
        model = IOIMC("cycle", signature(internals=["tau"]))
        for index in range(3):
            model.add_state(initial=index == 0)
        model.add_interactive(0, "tau", 1)
        model.add_interactive(1, "tau", 2)
        model.add_interactive(2, "tau", 0)
        cond = TauCondensation(model)
        assert cond.num_sccs == 1
        assert sorted(cond.members[0]) == [0, 1, 2]

    def test_visible_transitions_ignored(self):
        model = IOIMC("mixed", signature(outputs=["go"], internals=["tau"]))
        model.add_state(initial=True)
        model.add_state()
        model.add_interactive(0, "go", 1)
        cond = TauCondensation(model)
        assert cond.num_sccs == 2
        assert cond.tau_succ == [[], []]

    def test_successors_have_smaller_ids(self):
        """Tarjan emits SCCs in reverse topological order — the invariant the
        weak quotient's id-ordered closure sweep depends on."""
        model = IOIMC("dag", signature(internals=["tau"]))
        for index in range(6):
            model.add_state(initial=index == 0)
        # two cycles connected by tau edges plus a chain
        model.add_interactive(0, "tau", 1)
        model.add_interactive(1, "tau", 0)
        model.add_interactive(1, "tau", 2)
        model.add_interactive(2, "tau", 3)
        model.add_interactive(3, "tau", 2)
        model.add_interactive(3, "tau", 4)
        model.add_interactive(4, "tau", 5)
        cond = TauCondensation(model)
        for scc, successors in enumerate(cond.tau_succ):
            assert all(successor < scc for successor in successors)

    def test_self_loop_is_singleton_scc(self):
        model = IOIMC("loop", signature(internals=["tau"]))
        model.add_state(initial=True)
        model.add_interactive(0, "tau", 0)
        cond = TauCondensation(model)
        assert cond.num_sccs == 1
        assert cond.tau_succ == [[]]  # condensed self edges are dropped

    def test_backward_closure(self):
        cond = TauCondensation(tau_chain(5))
        last_scc = cond.scc_of[4]
        closure = cond.backward_closure({last_scc})
        assert closure == set(range(cond.num_sccs))
        first_scc = cond.scc_of[0]
        assert cond.backward_closure({first_scc}) == {first_scc}


class TestCanonicalRate:
    def test_zero_stays_zero(self):
        assert canonical_rate(0.0) == 0.0

    def test_significant_digits(self):
        assert canonical_rate(1.0 + 1e-13) == 1.0
        assert canonical_rate(1.0 + 1e-3) != 1.0
        assert canonical_rate(1.0 + 1e-3, digits=2) == 1.0

    def test_scale_invariant(self):
        assert canonical_rate(1e6 + 1e-7) == 1e6
        assert canonical_rate(1.23456e-8, digits=3) == pytest.approx(1.235e-8)


class TestCondensationMemory:
    def test_tau_chain_memory_linear(self):
        """Acceptance regression: weak minimisation of a 2k-state tau-chain
        must not materialise per-state closure frozensets (O(n^2) memory).

        The splitter engine shares closures per tau-SCC over the
        condensation; its peak allocation on the 2000-state chain stays in
        the single-digit MB range, while the per-state frozensets of the
        signature reference need hundreds of MB equivalents.
        """
        model = tau_chain(2000)
        tracemalloc.start()
        partition = weak_bisimulation_partition(model, algorithm="splitter")
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # The chain collapses to (unlabelled states, labelled sink).
        assert len(partition) == 2
        # Per-state closures alone would exceed 100 MB on this model
        # (sum of suffix closures ~ 2e6 entries); the condensation-backed
        # engine stays linear in states + transitions.
        assert peak < 16 * 1024 * 1024

    def test_chain_collapses_like_signature_engine(self):
        model = tau_chain(60)
        splitter = weak_bisimulation_partition(model, algorithm="splitter")
        reference = weak_bisimulation_partition(model, algorithm="signature")
        assert splitter == reference
