"""Tests for the fused compose+maximal-progress path of ``parallel``."""

import pytest

from repro.ioimc import (
    IOIMC,
    apply_maximal_progress,
    parallel,
    parallel_many,
    remove_internal_self_loops,
    signature,
)
from repro.systems import figure2_models


def _compose_then_reduce(left: IOIMC, right: IOIMC) -> IOIMC:
    composite = parallel(left, right)
    composite = apply_maximal_progress(composite)
    composite = remove_internal_self_loops(composite)
    return composite.restrict_to_reachable()


def _canonical(model: IOIMC):
    """Order-insensitive fingerprint: per-state sorted transition sets."""
    return (
        model.initial,
        tuple(
            (
                tuple(sorted(model.interactive_pairs(state))),
                tuple(sorted(model.markovian_dict(state).items())),
                model.labels(state),
            )
            for state in model.states()
        ),
    )


class TestFusedEqualsComposeThenReduce:
    def test_figure2(self):
        model_a, model_b = figure2_models(rate=1.0)
        fused = parallel(model_a, model_b, fuse=True)
        reduced = _compose_then_reduce(model_a, model_b)
        assert _canonical(fused) == _canonical(reduced)

    def test_markovian_race_with_urgent_output(self):
        # Left: urgent output enabled immediately -> its initial state is
        # urgent, so the right component's Markovian delay must be pruned
        # from the fused initial product state.
        left = IOIMC("l", signature(outputs=["go"]))
        l0 = left.add_state(initial=True)
        l1 = left.add_state()
        left.add_interactive(l0, "go", l1)
        right = IOIMC("r", signature(inputs=["go"]))
        r0 = right.add_state(initial=True)
        r1 = right.add_state()
        right.add_markovian(r0, 3.0, r1)
        fused = parallel(left, right, fuse=True)
        reduced = _compose_then_reduce(left, right)
        assert _canonical(fused) == _canonical(reduced)
        assert not list(fused.markovian_out(fused.initial))

    def test_internal_self_loops_never_materialised(self):
        left = IOIMC("l", signature(internals=["tau"]))
        l0 = left.add_state(initial=True)
        left.add_interactive(l0, "tau", l0)
        right = IOIMC("r", signature(outputs=["b"]))
        r0 = right.add_state(initial=True)
        r1 = right.add_state()
        right.add_interactive(r0, "b", r1)
        fused = parallel(left, right, fuse=True)
        for state in fused.states():
            for _aid, target in fused.interactive_pairs(state):
                assert target != state
        # The self-loop still made the state urgent before being dropped.
        reduced = _compose_then_reduce(left, right)
        assert _canonical(fused) == _canonical(reduced)

    def test_fused_prunes_states_reachable_only_via_urgent_markovian(self):
        # Urgent state with a Markovian transition to an otherwise
        # unreachable state: fused exploration must not materialise it.
        left = IOIMC("l", signature(outputs=["go"]))
        l0 = left.add_state(initial=True)
        l1 = left.add_state()
        l2 = left.add_state()
        left.add_interactive(l0, "go", l1)
        left.add_markovian(l0, 1.0, l2)  # pre-empted by the urgent output
        right = IOIMC("r", signature(inputs=["go"]))
        right.add_state(initial=True)
        fused = parallel(left, right, fuse=True)
        plain = parallel(left, right)
        assert fused.num_states < plain.num_states

    def test_open_imc_urgency_rule(self):
        # urgent_outputs=False: outputs do not pre-empt Markovian delays.
        left = IOIMC("l", signature(outputs=["go"]))
        l0 = left.add_state(initial=True)
        l1 = left.add_state()
        left.add_interactive(l0, "go", l1)
        left.add_markovian(l0, 1.0, l1)
        right = IOIMC("r", signature(inputs=["go"]))
        right.add_state(initial=True)
        fused = parallel(left, right, fuse=True, urgent_outputs=False)
        assert list(fused.markovian_out(fused.initial))


class TestParallelManyHiding:
    @staticmethod
    def _chain():
        producer = IOIMC("producer", signature(outputs=["a"]))
        p0 = producer.add_state(initial=True)
        p1 = producer.add_state()
        producer.add_interactive(p0, "a", p1)
        relay = IOIMC("relay", signature(inputs=["a"], outputs=["b"]))
        r0 = relay.add_state(initial=True)
        r1 = relay.add_state()
        r2 = relay.add_state()
        relay.add_interactive(r0, "a", r1)
        relay.add_interactive(r1, "b", r2)
        consumer = IOIMC("consumer", signature(inputs=["b"]))
        c0 = consumer.add_state(initial=True)
        c1 = consumer.add_state(labels=["received"])
        consumer.add_interactive(c0, "b", c1)
        return producer, relay, consumer

    def test_intermediate_outputs_hidden_between_folds(self):
        producer, relay, consumer = self._chain()
        composite = parallel_many([producer, relay, consumer])
        # "a" is not listened to after the relay has been absorbed, so the
        # interleaved hiding turned it internal; "b" stays an output.
        assert "a" in composite.signature.internals
        assert "b" in composite.signature.outputs
        assert "received" in {
            label for s in composite.states() for label in composite.labels(s)
        }

    def test_hide_false_escape_hatch(self):
        producer, relay, consumer = self._chain()
        composite = parallel_many([producer, relay, consumer], hide=False)
        assert "a" in composite.signature.outputs
        assert "b" in composite.signature.outputs

    def test_keep_protects_actions(self):
        producer, relay, consumer = self._chain()
        composite = parallel_many([producer, relay, consumer], keep=["a"])
        assert "a" in composite.signature.outputs

    def test_hidden_fold_equivalent_behaviour(self):
        producer, relay, consumer = self._chain()
        hidden = parallel_many([producer, relay, consumer])
        naive = parallel_many([producer, relay, consumer], hide=False)
        assert hidden.num_states == naive.num_states
        received = lambda model: sum(
            1 for s in model.states() if "received" in model.labels(s)
        )
        assert received(hidden) == received(naive)
