"""Unit tests of the symbolic rate forms (`repro.ioimc.rates`)."""

import pickle

import pytest

from repro.errors import ModelError
from repro.ioimc import ParametricRate, canonical_rate, evaluate_rate, rate_parameters


@pytest.fixture
def mixed():
    """0.25 + lam + 2*mu with nominals lam=0.5, mu=2.0."""
    return (
        ParametricRate.for_parameter("lam", 0.5)
        + ParametricRate.for_parameter("mu", 2.0, coefficient=2.0)
        + 0.25
    )


class TestArithmetic:
    def test_nominal_is_maintained_through_arithmetic(self, mixed):
        assert mixed.nominal == pytest.approx(0.25 + 0.5 + 4.0)
        assert float(mixed) == pytest.approx(4.75)

    def test_sum_merges_coefficients_per_parameter(self):
        total = sum(ParametricRate.for_parameter("lam", 0.5) for _ in range(3))
        assert total.coeffs == {"lam": 3.0}
        assert total.nominal == pytest.approx(1.5)

    def test_scaling_keeps_parameter_nominals(self, mixed):
        scaled = 0.5 * mixed
        assert scaled.nominal == pytest.approx(mixed.nominal / 2)
        assert scaled.evaluate({"mu": 1.0}) == pytest.approx(0.5 * (0.25 + 0.5 + 2.0))

    def test_comparisons_use_the_nominal(self, mixed):
        assert mixed > 0.0
        assert mixed > ParametricRate.for_parameter("lam", 0.5)

    def test_non_positive_coefficients_are_rejected(self):
        with pytest.raises(ModelError, match="positive"):
            ParametricRate.for_parameter("lam", 0.5, coefficient=0.0)


class TestEvaluation:
    def test_partial_assignment_keeps_nominals_for_absent_params(self, mixed):
        assert mixed.evaluate({"lam": 0.7}) == pytest.approx(0.25 + 0.7 + 4.0)
        assert mixed.evaluate({}) == pytest.approx(mixed.nominal)
        assert mixed.evaluate({"lam": 1.0, "mu": 1.0}) == pytest.approx(0.25 + 1.0 + 2.0)

    def test_evaluate_rate_passes_floats_through(self):
        assert evaluate_rate(1.5, {"lam": 9.0}) == 1.5
        assert rate_parameters(1.5) == ()

    def test_rate_parameters(self, mixed):
        assert mixed.parameters == ("lam", "mu")


class TestIdentity:
    def test_equality_and_hash_are_structural(self):
        a = ParametricRate.for_parameter("lam", 0.5)
        b = ParametricRate.for_parameter("lam", 0.5)
        c = ParametricRate.for_parameter("mu", 0.5)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_canonical_keys_keep_distinct_forms_apart(self):
        # equal nominal values, different parameter dependencies
        a = ParametricRate.for_parameter("lam", 1.0)
        c = ParametricRate.for_parameter("mu", 1.0)
        assert canonical_rate(a) != canonical_rate(c)
        assert canonical_rate(a) != canonical_rate(1.0)

    def test_canonical_keys_absorb_float_noise(self):
        a = ParametricRate.for_parameter("lam", 1.0, coefficient=0.1) * 3.0
        b = ParametricRate.for_parameter("lam", 1.0, coefficient=0.30000000000000004)
        assert canonical_rate(a) == canonical_rate(b)

    def test_pickle_round_trip(self, mixed):
        clone = pickle.loads(pickle.dumps(mixed))
        assert clone == mixed
        assert clone.nominal == mixed.nominal
        assert clone.evaluate({"lam": 1.0}) == mixed.evaluate({"lam": 1.0})
