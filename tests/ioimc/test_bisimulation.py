"""Tests for strong and weak bisimulation minimisation."""

import pytest

from repro.errors import ModelError
from repro.ioimc import (
    IOIMC,
    AggregationOptions,
    aggregate,
    minimize_strong,
    minimize_weak,
    parallel,
    quotient_weak,
    signature,
    strong_bisimulation_partition,
    weak_bisimulation_partition,
)
from repro.systems import figure2_models


def erlang_like_chain() -> IOIMC:
    """Two parallel branches with identical rates that should lump together."""
    model = IOIMC("erlang", signature(outputs=["done"]))
    s0 = model.add_state(initial=True)
    a1 = model.add_state()
    a2 = model.add_state()
    goal = model.add_state(labels=["failed"])
    model.add_markovian(s0, 1.0, a1)
    model.add_markovian(s0, 1.0, a2)
    model.add_markovian(a1, 2.0, goal)
    model.add_markovian(a2, 2.0, goal)
    model.add_interactive(goal, "done", goal)
    return model


class TestStrongBisimulation:
    def test_symmetric_branches_lump(self):
        partition = strong_bisimulation_partition(erlang_like_chain())
        # a1 and a2 are equivalent: 3 blocks in total.
        assert len(partition) == 3

    def test_minimize_strong_counts(self):
        minimized = minimize_strong(erlang_like_chain())
        assert minimized.num_states == 3
        # Aggregate rate from the initial block into the middle block is 2.
        rates = dict()
        for rate, target in minimized.markovian_out(minimized.initial):
            rates[target] = rate
        assert list(rates.values()) == [pytest.approx(2.0)]

    def test_labels_respected(self):
        model = IOIMC("labels", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        s2 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        partition = strong_bisimulation_partition(model)
        assert len(partition) == 3  # labelled and unlabelled targets stay apart

    def test_labels_can_be_ignored(self):
        # Without labels nothing distinguishes the three states observably:
        # ordinary lumpability collapses the whole (unlabelled) chain.
        model = IOIMC("labels", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        s2 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        partition = strong_bisimulation_partition(model, respect_labels=False)
        assert len(partition) == 1
        assert len(strong_bisimulation_partition(model, respect_labels=True)) == 3

    def test_absorbing_failed_region_lumps(self):
        """States that only keep failing internally collapse into one block."""
        model = IOIMC("absorbing", signature())
        s0 = model.add_state(initial=True)
        f1 = model.add_state(labels=["failed"])
        f2 = model.add_state(labels=["failed"])
        f3 = model.add_state(labels=["failed"])
        model.add_markovian(s0, 1.0, f1)
        model.add_markovian(f1, 5.0, f2)   # movement inside the failed region
        model.add_markovian(f2, 7.0, f3)
        minimized = minimize_strong(model)
        assert minimized.num_states == 2

    def test_different_rates_not_lumped(self):
        model = IOIMC("rates", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        goal = model.add_state(labels=["failed"])
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        model.add_markovian(s1, 2.0, goal)
        model.add_markovian(s2, 3.0, goal)
        partition = strong_bisimulation_partition(model)
        assert len(partition) == 4


class TestWeakBisimulation:
    def test_figure2_aggregation(self):
        """The composition of Figure 2 aggregates: the four interleaving states
        that all move with rate lambda to the same successor collapse."""
        model_a, model_b = figure2_models(rate=1.5)
        composed = parallel(model_a, model_b).hide(["a"])
        weak = minimize_weak(composed)
        strong = minimize_strong(composed)
        assert weak.num_states <= strong.num_states
        assert weak.num_states <= 4

    def test_internal_chain_collapses(self):
        model = IOIMC("chain", signature(outputs=["done"], internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        s3 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_interactive(s1, "tau", s2)
        model.add_interactive(s2, "tau", s3)
        model.add_interactive(s3, "done", s3)
        weak = minimize_weak(model)
        # s1, s2, s3 are weakly bisimilar (they can all do "done" weakly and
        # never let time pass before that).
        assert weak.num_states == 2

    def test_weak_respects_visible_actions(self):
        model = IOIMC("visible", signature(outputs=["x", "y"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        model.add_interactive(s1, "x", s1)
        model.add_interactive(s2, "y", s2)
        partition = weak_bisimulation_partition(model)
        assert len(partition) == 3

    def test_weak_partition_refines_initial_labels(self):
        model = IOIMC("labels", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        model.add_interactive(s0, "tau", s1)
        partition = weak_bisimulation_partition(model)
        assert len(partition) == 2

    def test_tau_divergence_handled(self):
        model = IOIMC("divergent", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        model.add_interactive(s0, "tau", s1)
        model.add_interactive(s1, "tau", s0)
        weak = minimize_weak(model)
        assert weak.num_states >= 1  # must not crash or lose the initial state


def tau_cycle_with_escape() -> IOIMC:
    """Two tau-cycles, one of which can escape to a labelled state."""
    model = IOIMC("cycles", signature(outputs=["out"], internals=["tau"]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state()
    s3 = model.add_state()
    goal = model.add_state(labels=["failed"])
    model.add_interactive(s0, "tau", s1)
    model.add_interactive(s1, "tau", s0)
    model.add_interactive(s2, "tau", s3)
    model.add_interactive(s3, "tau", s2)
    model.add_interactive(s3, "out", goal)
    model.add_markovian(s0, 1.0, s2)
    return model


def input_enabled_model() -> IOIMC:
    """Inputs with and without explicit transitions (implicit self-loops)."""
    model = IOIMC("inputs", signature(inputs=["go", "stop"], internals=["tau"]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state(labels=["failed"])
    model.add_interactive(s0, "go", s1)
    model.add_interactive(s1, "tau", s2)
    model.add_markovian(s0, 3.0, s2)
    return model


def nondeterministic_tau_model() -> IOIMC:
    """A tau choice between branches with different stable rate vectors."""
    model = IOIMC("nondet", signature(internals=["tau"]))
    s0 = model.add_state(initial=True)
    left = model.add_state()
    right = model.add_state()
    slow = model.add_state(labels=["failed"])
    fast = model.add_state(labels=["failed"])
    model.add_interactive(s0, "tau", left)
    model.add_interactive(s0, "tau", right)
    model.add_markovian(left, 1.0, slow)
    model.add_markovian(right, 5.0, fast)
    return model


DIFFERENTIAL_MODELS = [
    ("erlang", erlang_like_chain),
    ("figure2", lambda: parallel(*figure2_models(rate=1.5)).hide(["a"])),
    ("tau-cycles", tau_cycle_with_escape),
    ("inputs", input_enabled_model),
    ("nondet", nondeterministic_tau_model),
]


class TestSplitterVsSignature:
    """The splitter engine must reproduce the signature partitions exactly."""

    @pytest.mark.parametrize("name,factory", DIFFERENTIAL_MODELS)
    def test_strong_partitions_identical(self, name, factory):
        model = factory()
        splitter = strong_bisimulation_partition(model, algorithm="splitter")
        reference = strong_bisimulation_partition(model, algorithm="signature")
        assert splitter == reference

    @pytest.mark.parametrize("name,factory", DIFFERENTIAL_MODELS)
    def test_weak_partitions_identical(self, name, factory):
        model = factory()
        splitter = weak_bisimulation_partition(model, algorithm="splitter")
        reference = weak_bisimulation_partition(model, algorithm="signature")
        assert splitter == reference

    @pytest.mark.parametrize("name,factory", DIFFERENTIAL_MODELS)
    def test_weak_quotients_identical(self, name, factory):
        model = factory()
        splitter = minimize_weak(model, algorithm="splitter")
        reference = minimize_weak(model, algorithm="signature")
        assert splitter.num_states == reference.num_states
        assert splitter.num_transitions == reference.num_transitions

    @pytest.mark.parametrize("respect_labels", [True, False])
    def test_label_handling_matches(self, respect_labels):
        model = tau_cycle_with_escape()
        assert weak_bisimulation_partition(
            model, respect_labels=respect_labels, algorithm="splitter"
        ) == weak_bisimulation_partition(
            model, respect_labels=respect_labels, algorithm="signature"
        )

    def test_unknown_algorithm_rejected(self):
        model = erlang_like_chain()
        with pytest.raises(ModelError):
            strong_bisimulation_partition(model, algorithm="magic")
        with pytest.raises(ModelError):
            weak_bisimulation_partition(model, algorithm="magic")
        with pytest.raises(ModelError):
            minimize_weak(model, algorithm="magic")

    def test_quotient_weak_standalone_matches_engine(self):
        """quotient_weak(partition) equals the fused engine quotient."""
        model = tau_cycle_with_escape()
        partition = weak_bisimulation_partition(model, algorithm="signature")
        standalone = quotient_weak(model, partition).restrict_to_reachable()
        fused = minimize_weak(model, algorithm="splitter")
        assert standalone.num_states == fused.num_states
        assert standalone.num_transitions == fused.num_transitions


def close_rate_model(delta: float) -> IOIMC:
    """Two branches whose rates differ by ``delta`` — split or merge?"""
    model = IOIMC("close", signature())
    s0 = model.add_state(initial=True)
    a = model.add_state()
    b = model.add_state()
    goal = model.add_state(labels=["failed"])
    model.add_markovian(s0, 1.0, a)
    model.add_markovian(s0, 1.0, b)
    model.add_markovian(a, 2.0, goal)
    model.add_markovian(b, 2.0 + delta, goal)
    return model


class TestRatePrecision:
    """``rate_digits`` is honoured identically by both engines."""

    @pytest.mark.parametrize("algorithm", ["splitter", "signature"])
    def test_rates_below_precision_merge(self, algorithm):
        model = close_rate_model(1e-12)
        partition = strong_bisimulation_partition(model, algorithm=algorithm)
        assert len(partition) == 3  # a and b lump: the difference is noise

    @pytest.mark.parametrize("algorithm", ["splitter", "signature"])
    def test_rates_above_precision_split(self, algorithm):
        model = close_rate_model(1e-3)
        partition = strong_bisimulation_partition(model, algorithm=algorithm)
        assert len(partition) == 4

    @pytest.mark.parametrize("algorithm", ["splitter", "signature"])
    def test_custom_precision_consistent(self, algorithm):
        model = close_rate_model(1e-3)
        coarse = strong_bisimulation_partition(
            model, algorithm=algorithm, rate_digits=2
        )
        assert len(coarse) == 3  # 2.0 vs 2.001 agree to 2 significant digits

    @pytest.mark.parametrize("algorithm", ["splitter", "signature"])
    def test_weak_engine_honours_precision(self, algorithm):
        model = close_rate_model(1e-3)
        fine = weak_bisimulation_partition(model, algorithm=algorithm)
        coarse = weak_bisimulation_partition(model, algorithm=algorithm, rate_digits=2)
        assert len(fine) == 4
        assert len(coarse) == 3

    def test_aggregation_options_surface(self):
        model = close_rate_model(1e-3)
        fine, _ = aggregate(model, AggregationOptions(method="strong"))
        coarse, _ = aggregate(
            model, AggregationOptions(method="strong", rate_digits=2)
        )
        assert coarse.num_states < fine.num_states

    def test_invalid_rate_digits_rejected(self):
        with pytest.raises(ModelError):
            AggregationOptions(rate_digits=0)

    def test_invalid_minimiser_rejected(self):
        with pytest.raises(ModelError):
            AggregationOptions(minimiser="magic")


class TestMeasurePreservation:
    def test_weak_and_strong_agree_on_transient_measure(self, simple_ioimc_pair):
        from repro.ctmc import markov_model_from_ioimc

        producer, consumer = simple_ioimc_pair
        composed = parallel(producer, consumer).hide(["a", "b"])
        weak = minimize_weak(composed)
        strong = minimize_strong(composed)
        p_weak = markov_model_from_ioimc(weak).probability_of_label("failed", 1.0)
        p_strong = markov_model_from_ioimc(strong).probability_of_label("failed", 1.0)
        p_raw = markov_model_from_ioimc(composed).probability_of_label("failed", 1.0)
        assert p_weak == pytest.approx(p_strong, abs=1e-12)
        assert p_weak == pytest.approx(p_raw, abs=1e-12)
