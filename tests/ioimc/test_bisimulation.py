"""Tests for strong and weak bisimulation minimisation."""

import pytest

from repro.ioimc import (
    IOIMC,
    minimize_strong,
    minimize_weak,
    parallel,
    signature,
    strong_bisimulation_partition,
    weak_bisimulation_partition,
)
from repro.systems import figure2_models


def erlang_like_chain() -> IOIMC:
    """Two parallel branches with identical rates that should lump together."""
    model = IOIMC("erlang", signature(outputs=["done"]))
    s0 = model.add_state(initial=True)
    a1 = model.add_state()
    a2 = model.add_state()
    goal = model.add_state(labels=["failed"])
    model.add_markovian(s0, 1.0, a1)
    model.add_markovian(s0, 1.0, a2)
    model.add_markovian(a1, 2.0, goal)
    model.add_markovian(a2, 2.0, goal)
    model.add_interactive(goal, "done", goal)
    return model


class TestStrongBisimulation:
    def test_symmetric_branches_lump(self):
        partition = strong_bisimulation_partition(erlang_like_chain())
        # a1 and a2 are equivalent: 3 blocks in total.
        assert len(partition) == 3

    def test_minimize_strong_counts(self):
        minimized = minimize_strong(erlang_like_chain())
        assert minimized.num_states == 3
        # Aggregate rate from the initial block into the middle block is 2.
        rates = dict()
        for rate, target in minimized.markovian_out(minimized.initial):
            rates[target] = rate
        assert list(rates.values()) == [pytest.approx(2.0)]

    def test_labels_respected(self):
        model = IOIMC("labels", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        s2 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        partition = strong_bisimulation_partition(model)
        assert len(partition) == 3  # labelled and unlabelled targets stay apart

    def test_labels_can_be_ignored(self):
        # Without labels nothing distinguishes the three states observably:
        # ordinary lumpability collapses the whole (unlabelled) chain.
        model = IOIMC("labels", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        s2 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        partition = strong_bisimulation_partition(model, respect_labels=False)
        assert len(partition) == 1
        assert len(strong_bisimulation_partition(model, respect_labels=True)) == 3

    def test_absorbing_failed_region_lumps(self):
        """States that only keep failing internally collapse into one block."""
        model = IOIMC("absorbing", signature())
        s0 = model.add_state(initial=True)
        f1 = model.add_state(labels=["failed"])
        f2 = model.add_state(labels=["failed"])
        f3 = model.add_state(labels=["failed"])
        model.add_markovian(s0, 1.0, f1)
        model.add_markovian(f1, 5.0, f2)   # movement inside the failed region
        model.add_markovian(f2, 7.0, f3)
        minimized = minimize_strong(model)
        assert minimized.num_states == 2

    def test_different_rates_not_lumped(self):
        model = IOIMC("rates", signature())
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        goal = model.add_state(labels=["failed"])
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        model.add_markovian(s1, 2.0, goal)
        model.add_markovian(s2, 3.0, goal)
        partition = strong_bisimulation_partition(model)
        assert len(partition) == 4


class TestWeakBisimulation:
    def test_figure2_aggregation(self):
        """The composition of Figure 2 aggregates: the four interleaving states
        that all move with rate lambda to the same successor collapse."""
        model_a, model_b = figure2_models(rate=1.5)
        composed = parallel(model_a, model_b).hide(["a"])
        weak = minimize_weak(composed)
        strong = minimize_strong(composed)
        assert weak.num_states <= strong.num_states
        assert weak.num_states <= 4

    def test_internal_chain_collapses(self):
        model = IOIMC("chain", signature(outputs=["done"], internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        s3 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_interactive(s1, "tau", s2)
        model.add_interactive(s2, "tau", s3)
        model.add_interactive(s3, "done", s3)
        weak = minimize_weak(model)
        # s1, s2, s3 are weakly bisimilar (they can all do "done" weakly and
        # never let time pass before that).
        assert weak.num_states == 2

    def test_weak_respects_visible_actions(self):
        model = IOIMC("visible", signature(outputs=["x", "y"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        s2 = model.add_state()
        model.add_markovian(s0, 1.0, s1)
        model.add_markovian(s0, 1.0, s2)
        model.add_interactive(s1, "x", s1)
        model.add_interactive(s2, "y", s2)
        partition = weak_bisimulation_partition(model)
        assert len(partition) == 3

    def test_weak_partition_refines_initial_labels(self):
        model = IOIMC("labels", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state(labels=["failed"])
        model.add_interactive(s0, "tau", s1)
        partition = weak_bisimulation_partition(model)
        assert len(partition) == 2

    def test_tau_divergence_handled(self):
        model = IOIMC("divergent", signature(internals=["tau"]))
        s0 = model.add_state(initial=True)
        s1 = model.add_state()
        model.add_interactive(s0, "tau", s1)
        model.add_interactive(s1, "tau", s0)
        weak = minimize_weak(model)
        assert weak.num_states >= 1  # must not crash or lose the initial state


class TestMeasurePreservation:
    def test_weak_and_strong_agree_on_transient_measure(self, simple_ioimc_pair):
        from repro.ctmc import markov_model_from_ioimc

        producer, consumer = simple_ioimc_pair
        composed = parallel(producer, consumer).hide(["a", "b"])
        weak = minimize_weak(composed)
        strong = minimize_strong(composed)
        p_weak = markov_model_from_ioimc(weak).probability_of_label("failed", 1.0)
        p_strong = markov_model_from_ioimc(strong).probability_of_label("failed", 1.0)
        p_raw = markov_model_from_ioimc(composed).probability_of_label("failed", 1.0)
        assert p_weak == pytest.approx(p_strong, abs=1e-12)
        assert p_weak == pytest.approx(p_raw, abs=1e-12)
