"""Tests for maximal-progress (urgency) pruning."""

from repro.ioimc import (
    IOIMC,
    apply_maximal_progress,
    count_pruned_transitions,
    signature,
)


def model_with_urgent_race() -> IOIMC:
    """A state that has both an internal move and a Markovian transition."""
    model = IOIMC("race", signature(outputs=["out"], internals=["tau"]))
    s0 = model.add_state(initial=True)
    s1 = model.add_state()
    s2 = model.add_state()
    s3 = model.add_state()
    model.add_interactive(s0, "tau", s1)
    model.add_markovian(s0, 5.0, s2)     # pre-empted by the internal move
    model.add_markovian(s1, 1.0, s3)
    model.add_interactive(s2, "out", s3)
    model.add_markovian(s2, 2.0, s3)     # pre-empted by the output (I/O-IMC rule)
    return model


class TestMaximalProgress:
    def test_internal_preempts_markovian(self):
        pruned = apply_maximal_progress(model_with_urgent_race())
        assert list(pruned.markovian_out(0)) == []

    def test_output_preempts_markovian_by_default(self):
        pruned = apply_maximal_progress(model_with_urgent_race())
        assert list(pruned.markovian_out(2)) == []

    def test_output_urgency_can_be_disabled(self):
        pruned = apply_maximal_progress(model_with_urgent_race(), urgent_outputs=False)
        assert list(pruned.markovian_out(0)) == []          # internal still urgent
        assert list(pruned.markovian_out(2)) == [(2.0, 3)]  # output no longer urgent

    def test_stable_states_untouched(self):
        pruned = apply_maximal_progress(model_with_urgent_race())
        assert list(pruned.markovian_out(1)) == [(1.0, 3)]

    def test_interactive_transitions_preserved(self):
        original = model_with_urgent_race()
        pruned = apply_maximal_progress(original)
        original_interactive = sum(1 for s in original.states() for _ in original.interactive_out(s))
        pruned_interactive = sum(1 for s in pruned.states() for _ in pruned.interactive_out(s))
        assert original_interactive == pruned_interactive

    def test_count_pruned_transitions(self):
        assert count_pruned_transitions(model_with_urgent_race()) == 2
        assert count_pruned_transitions(model_with_urgent_race(), urgent_outputs=False) == 1

    def test_idempotent(self):
        once = apply_maximal_progress(model_with_urgent_race())
        twice = apply_maximal_progress(once)
        assert once.num_transitions == twice.num_transitions
