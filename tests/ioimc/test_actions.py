"""Tests for action signatures."""

import pytest

from repro.errors import SignatureError
from repro.ioimc import ActionSignature, ActionType, format_action, signature


class TestActionSignature:
    def test_disjointness_enforced(self):
        with pytest.raises(SignatureError):
            ActionSignature(inputs=frozenset({"a"}), outputs=frozenset({"a"}))

    def test_internal_overlap_rejected(self):
        with pytest.raises(SignatureError):
            ActionSignature(inputs=frozenset({"a"}), internals=frozenset({"a"}))

    def test_classify(self):
        sig = signature(inputs=["in1"], outputs=["out1"], internals=["tau1"])
        assert sig.classify("in1") is ActionType.INPUT
        assert sig.classify("out1") is ActionType.OUTPUT
        assert sig.classify("tau1") is ActionType.INTERNAL

    def test_classify_unknown_raises(self):
        sig = signature(inputs=["a"])
        with pytest.raises(SignatureError):
            sig.classify("missing")

    def test_contains(self):
        sig = signature(inputs=["a"], outputs=["b"])
        assert "a" in sig
        assert "b" in sig
        assert "c" not in sig

    def test_visible_and_locally_controlled(self):
        sig = signature(inputs=["a"], outputs=["b"], internals=["c"])
        assert sig.visible == frozenset({"a", "b"})
        assert sig.locally_controlled == frozenset({"b", "c"})
        assert sig.all_actions == frozenset({"a", "b", "c"})

    def test_str_uses_paper_decorations(self):
        sig = signature(inputs=["a"], outputs=["b"], internals=["c"])
        rendered = str(sig)
        assert "a?" in rendered
        assert "b!" in rendered
        assert "c;" in rendered


class TestHiding:
    def test_hide_moves_outputs_to_internal(self):
        sig = signature(outputs=["a", "b"])
        hidden = sig.hide(["a"])
        assert hidden.outputs == frozenset({"b"})
        assert hidden.internals == frozenset({"a"})

    def test_hide_rejects_inputs(self):
        sig = signature(inputs=["a"], outputs=["b"])
        with pytest.raises(SignatureError):
            sig.hide(["a"])

    def test_hide_rejects_unknown(self):
        sig = signature(outputs=["b"])
        with pytest.raises(SignatureError):
            sig.hide(["nope"])


class TestRenaming:
    def test_rename_keeps_kinds(self):
        sig = signature(inputs=["a"], outputs=["b"])
        renamed = sig.rename({"a": "x", "b": "y"})
        assert renamed.inputs == frozenset({"x"})
        assert renamed.outputs == frozenset({"y"})

    def test_rename_must_not_merge(self):
        sig = signature(inputs=["a", "b"])
        with pytest.raises(SignatureError):
            sig.rename({"a": "b"})


class TestMerging:
    def test_connected_action_becomes_output(self):
        left = signature(outputs=["a"])
        right = signature(inputs=["a"], outputs=["b"])
        merged = left.merge(right)
        assert merged.outputs == frozenset({"a", "b"})
        assert merged.inputs == frozenset()

    def test_shared_inputs_stay_inputs(self):
        left = signature(inputs=["a"])
        right = signature(inputs=["a"])
        merged = left.merge(right)
        assert merged.inputs == frozenset({"a"})

    def test_shared_outputs_rejected(self):
        left = signature(outputs=["a"])
        right = signature(outputs=["a"])
        with pytest.raises(SignatureError):
            left.merge(right)

    def test_internal_clash_rejected(self):
        left = signature(internals=["x"])
        right = signature(inputs=["x"])
        with pytest.raises(SignatureError):
            left.merge(right)

    def test_format_action(self):
        assert format_action("fail_A", ActionType.OUTPUT) == "fail_A!"
        assert format_action("fail_A", ActionType.INPUT) == "fail_A?"
        assert format_action("fail_A", ActionType.INTERNAL) == "fail_A;"
