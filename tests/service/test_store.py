"""Robustness and correctness of the content-addressed skeleton store.

The store must never crash on (or serve) a damaged entry: truncated,
bit-flipped and version-mismatched files are logged, evicted and rebuilt.
Cached evaluation must agree with the plain pipeline for every tree of the
same structural class — including trees that only share the class because the
hash quotients out names and rates.
"""

from __future__ import annotations

import logging
import os
import pickle

import pytest

from repro.core.measures import MTTF, Unreliability
from repro.core.study import Study, StudyOptions
from repro.dft.builder import FaultTreeBuilder
from repro.dft.hashing import structural_hash
from repro.service.store import (
    FORMAT_VERSION,
    MAGIC,
    SkeletonEntry,
    SkeletonStore,
    build_entry,
    cache_key,
)

TOLERANCE = 1e-9


def _tree(lam=0.5, mu=0.7, name="store-tree"):
    builder = FaultTreeBuilder(name)
    builder.basic_event("a", lam)
    builder.basic_event("b", mu)
    builder.and_gate("top", ["a", "b"])
    return builder.build("top")


def _pand_tree(first, second):
    builder = FaultTreeBuilder("pand-order")
    builder.basic_event("x", 1.0)
    builder.basic_event("y", 2.0)
    builder.pand_gate("top", [first, second])
    return builder.build("top")


@pytest.fixture
def store(tmp_path):
    return SkeletonStore(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_builds_and_persists(self, store):
        tree = _tree()
        entry, hit = store.get_or_build(tree, StudyOptions())
        assert not hit
        assert store.path_of(entry.key).exists()
        again, hit = store.get_or_build(tree, StudyOptions())
        assert hit
        assert again.key == entry.key
        assert store.stats()["hits"] == 1

    def test_key_depends_on_structure_and_options(self, store):
        tree = _tree()
        base = cache_key(tree, StudyOptions())
        assert cache_key(_tree(lam=9.9), StudyOptions()) == base  # rates excluded
        assert cache_key(tree, StudyOptions(ordering="sequential")) != base
        # Tolerance is an evaluation-time knob, not a pipeline input.
        assert cache_key(tree, StudyOptions(tolerance=1e-6)) == base

    def test_unpickled_buffer_keeps_skeleton_identity(self, store):
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        loaded = store.load(entry.key)
        assert loaded is not None
        assert loaded.buffer is not None
        assert loaded.buffer.skeleton is loaded.skeleton

    def test_cached_values_match_plain_pipeline(self, store):
        query = Unreliability([0.5, 1.0, 2.0]) + MTTF()
        for tree in (_tree(), _tree(lam=1.5, mu=0.2, name="other")):
            cached = Study(tree, skeleton_cache=store).evaluate(query)
            plain = Study(tree).evaluate(query)
            for ours, theirs in zip(cached.measures, plain.measures):
                for a, b in zip(ours.values, theirs.values):
                    assert a == pytest.approx(b, abs=TOLERANCE)

    def test_pand_child_order_served_correctly_from_one_entry(self, store):
        # Both orders share a structural class (children identical up to
        # rates); the canonical assignment must keep the orders apart.
        query = Unreliability([1.0])
        forward = _pand_tree("x", "y")
        backward = _pand_tree("y", "x")
        assert structural_hash(forward) == structural_hash(backward)
        served = {}
        for tree in (forward, backward):
            cached = Study(tree, skeleton_cache=store).evaluate(query)
            plain = Study(tree).evaluate(query)
            served[tree.top] = cached
            assert cached.measures[0].values[0] == pytest.approx(
                plain.measures[0].values[0], abs=TOLERANCE
            )
        assert store.stats()["entries"] == 1  # one shared structural entry


class TestCorruptionRobustness:
    def _entry_path(self, store):
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        return entry.key, store.path_of(entry.key)

    def _assert_recovers(self, store, key, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            assert store.load(key) is None
        assert any("evict" in record.message for record in caplog.records)
        assert not store.path_of(key).exists()  # evicted, not left to rot
        assert store.stats()["corrupt_evictions"] >= 1
        # The next request recomputes and re-persists a good entry.
        entry, hit = store.get_or_build(_tree(), StudyOptions())
        assert not hit
        assert store.load(entry.key) is not None

    def test_bit_flip_in_payload(self, store, caplog):
        key, path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        self._assert_recovers(store, key, caplog)

    def test_bit_flip_in_header(self, store, caplog):
        key, path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        blob[1] ^= 0xFF  # inside the magic
        path.write_bytes(bytes(blob))
        self._assert_recovers(store, key, caplog)

    def test_truncated_entry(self, store, caplog):
        key, path = self._entry_path(store)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        self._assert_recovers(store, key, caplog)

    def test_empty_entry(self, store, caplog):
        key, path = self._entry_path(store)
        path.write_bytes(b"")
        self._assert_recovers(store, key, caplog)

    def test_version_mismatch(self, store, caplog):
        key, path = self._entry_path(store)
        blob = path.read_bytes()
        bumped = (
            MAGIC
            + (FORMAT_VERSION + 1).to_bytes(4, "big")
            + blob[len(MAGIC) + 4 :]
        )
        path.write_bytes(bumped)
        self._assert_recovers(store, key, caplog)

    def test_checksum_valid_but_wrong_object(self, store, caplog):
        import hashlib

        key, path = self._entry_path(store)
        payload = pickle.dumps({"not": "an entry"}, protocol=pickle.HIGHEST_PROTOCOL)
        path.write_bytes(
            MAGIC
            + FORMAT_VERSION.to_bytes(4, "big")
            + hashlib.sha256(payload).digest()
            + payload
        )
        self._assert_recovers(store, key, caplog)


class TestEvictionAndCap:
    def test_lru_cap_evicts_oldest(self, tmp_path):
        probe_store = SkeletonStore(tmp_path / "probe")
        probe, _ = probe_store.get_or_build(_tree(), StudyOptions())
        entry_bytes = probe_store.path_of(probe.key).stat().st_size

        store = SkeletonStore(tmp_path / "capped", max_bytes=int(entry_bytes * 2.5))
        trees = [
            _tree(),  # 2 events
            _bigger_tree(3),
            _bigger_tree(4),
            _bigger_tree(5),
        ]
        for tree in trees:
            store.get_or_build(tree, StudyOptions())
        stats = store.stats()
        assert stats["evictions"] >= 1
        assert stats["total_bytes"] <= int(entry_bytes * 2.5) or stats["entries"] == 1

    def test_clear_removes_everything(self, store):
        store.get_or_build(_tree(), StudyOptions())
        store.get_or_build(_bigger_tree(3), StudyOptions())
        assert store.clear() == 2
        assert store.stats()["entries"] == 0

    def test_no_temp_files_left_behind(self, store):
        store.get_or_build(_tree(), StudyOptions())
        leftovers = [
            name for name in os.listdir(store.root) if name.startswith(".tmp-")
        ]
        assert leftovers == []


def _bigger_tree(events):
    builder = FaultTreeBuilder(f"big{events}")
    names = [builder.basic_event(f"e{i}", 0.5 + 0.1 * i) for i in range(events)]
    builder.or_gate("top", names)
    return builder.build("top")


class TestWarm:
    def test_warm_counts_and_is_idempotent(self, store, tmp_path):
        from repro.dft import galileo

        paths = []
        for index, tree in enumerate((_tree(), _bigger_tree(3))):
            path = tmp_path / f"warm{index}.dft"
            galileo.write_file(tree, str(path))
            paths.append(str(path))
        first = store.warm(paths, StudyOptions())
        assert first == {"built": 2, "hits": 0, "failed": 0}
        second = store.warm(paths, StudyOptions())
        assert second == {"built": 0, "hits": 2, "failed": 0}

    def test_warm_records_failures(self, store, tmp_path):
        bad = tmp_path / "broken.dft"
        bad.write_text("this is not galileo")
        outcome = store.warm([str(bad)], StudyOptions())
        assert outcome["failed"] == 1

    def test_entry_rejected_under_wrong_key(self, store, caplog):
        # An entry renamed on disk (key no longer matches content) must be
        # treated as corrupt, not served for the wrong structural class.
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        other_key = "0" * len(entry.key)
        os.rename(store.path_of(entry.key), store.path_of(other_key))
        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            assert store.load(other_key) is None
        assert store.stats()["corrupt_evictions"] >= 1


class TestFormatVersions:
    """Format v2 (compressed, canonical params) must keep reading v1 files."""

    def _as_v1_file(self, store, entry):
        """Rewrite ``entry`` on disk in the version-1 layout: uncompressed
        payload pickled without the ``canonical_params`` field."""
        import copy
        import hashlib

        old = copy.copy(entry)
        del old.canonical_params  # v1 pickles predate the field
        payload = pickle.dumps(old, protocol=pickle.HIGHEST_PROTOCOL)
        store.path_of(entry.key).write_bytes(
            MAGIC + (1).to_bytes(4, "big") + hashlib.sha256(payload).digest() + payload
        )

    def test_v2_entry_round_trips_canonical_params(self, store):
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        assert entry.canonical_params  # canonical parametrisation declares them
        restored = store.load(entry.key)
        assert restored.canonical_params == entry.canonical_params

    def test_v1_file_still_readable(self, store):
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        self._as_v1_file(store, entry)
        restored = store.load(entry.key)
        assert restored is not None
        assert restored.key == entry.key
        assert restored.canonical_params == ()  # backfilled, never missing
        assert store.stats()["corrupt_evictions"] == 0

    def test_v1_and_v2_serve_identical_measures(self, store):
        tree = _tree()
        entry, _ = store.get_or_build(tree, StudyOptions())
        fresh = Study(tree, StudyOptions(), skeleton_cache=store).evaluate(
            Unreliability([1.0])
        )
        self._as_v1_file(store, entry)
        legacy = Study(tree, StudyOptions(), skeleton_cache=store).evaluate(
            Unreliability([1.0])
        )
        assert legacy.options["skeleton_cache"] == "hit"
        assert legacy.measures[0].values == fresh.measures[0].values

    def test_v2_payload_is_compressed(self, store):
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        stats = store.stats()
        assert stats["compression"].startswith("zlib-")
        assert 0 < stats["compressed_bytes"] < stats["payload_bytes"]
        assert stats["compression_ratio"] > 1.0
        on_disk = store.path_of(entry.key).stat().st_size
        assert on_disk < stats["payload_bytes"]

    def test_undecompressable_v2_payload_evicted(self, store, caplog):
        import hashlib

        entry, _ = store.get_or_build(_tree(), StudyOptions())
        path = store.path_of(entry.key)
        garbage = b"definitely not a zlib stream"
        path.write_bytes(
            MAGIC
            + FORMAT_VERSION.to_bytes(4, "big")
            + hashlib.sha256(garbage).digest()
            + garbage
        )
        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            assert store.load(entry.key) is None
        assert any("undecompressable" in r.message for r in caplog.records)
        assert not path.exists()
        assert store.stats()["corrupt_evictions"] == 1

    def test_future_version_evicted_not_crashed(self, store, caplog):
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        path = store.path_of(entry.key)
        blob = path.read_bytes()
        path.write_bytes(MAGIC + (99).to_bytes(4, "big") + blob[len(MAGIC) + 4 :])
        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            assert store.load(entry.key) is None
        assert store.stats()["corrupt_evictions"] == 1


class TestReadOnlyStore:
    """A store on a read-only or shared mount keeps serving cache hits.

    The LRU touch after a successful read is a best-effort optimisation;
    when the filesystem rejects it (read-only remount, NFS without write
    access) the entry must still be served, with a single warning per store
    object rather than one per hit (or a crash).
    """

    def test_utime_failure_serves_entry_and_warns_once(
        self, store, caplog, monkeypatch
    ):
        entry, _ = store.get_or_build(_tree(), StudyOptions())

        def deny(path, *args, **kwargs):
            raise PermissionError(13, "Read-only file system", str(path))

        monkeypatch.setattr("repro.service.store.os.utime", deny)
        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            first = store.load(entry.key)
            second = store.load(entry.key)
        assert first is not None and first.key == entry.key
        assert second is not None and second.key == entry.key
        assert store.stats()["hits"] == 2
        touch_warnings = [
            record for record in caplog.records if "LRU" in record.message
        ]
        assert len(touch_warnings) == 1  # warn once, not per hit

    def test_chmod_0500_store_still_serves(self, store):
        # Drop write permission on the store directory after populating it.
        # (With CAP_DAC_OVERRIDE — e.g. running as root — the kernel may let
        # the touch through anyway; the invariant under test is that load()
        # serves the entry and never raises, whichever way utime goes.)
        entry, _ = store.get_or_build(_tree(), StudyOptions())
        store.root.chmod(0o500)
        try:
            loaded = store.load(entry.key)
            assert loaded is not None
            assert loaded.key == entry.key
            assert store.stats()["hits"] == 1
        finally:
            store.root.chmod(0o700)


class TestStaleTempReclaim:
    """Orphaned ``.tmp-*`` spill files are reclaimed on the next store().

    The dot prefix hides them from the byte cap and ``clear``, so a writer
    crashing between mkstemp and the atomic rename used to leak the file
    forever.  Temps older than the grace age are unlinked; young ones may
    belong to a live concurrent writer and must survive.
    """

    def test_stale_temp_reclaimed_fresh_temp_kept(self, store, caplog):
        from repro.service.store import ENTRY_SUFFIX, TEMP_GRACE_SECONDS

        store.root.mkdir(parents=True, exist_ok=True)
        stale = store.root / f".tmp-deadbeef{ENTRY_SUFFIX}"
        stale.write_bytes(b"half-written")
        backdated = stale.stat().st_mtime - 2 * TEMP_GRACE_SECONDS
        os.utime(stale, (backdated, backdated))
        fresh = store.root / f".tmp-cafef00d{ENTRY_SUFFIX}"
        fresh.write_bytes(b"live writer")

        with caplog.at_level(logging.WARNING, logger="repro.service.store"):
            store.get_or_build(_tree(), StudyOptions())  # triggers store()

        assert not stale.exists()
        assert fresh.exists()
        assert store.temp_reclaimed == 1
        assert store.stats()["temp_reclaimed"] == 1
        assert any("reclaimed stale temp" in r.message for r in caplog.records)

    def test_normal_store_leaves_no_temps_and_reclaims_nothing(self, store):
        store.get_or_build(_tree(), StudyOptions())
        leftovers = list(store.root.glob(".tmp-*"))
        assert leftovers == []
        assert store.temp_reclaimed == 0

    def test_reclaim_is_direct_and_age_gated(self, store, tmp_path):
        from repro.service.store import ENTRY_SUFFIX, TEMP_GRACE_SECONDS

        store.root.mkdir(parents=True, exist_ok=True)
        temp = store.root / f".tmp-0123abcd{ENTRY_SUFFIX}"
        temp.write_bytes(b"x")
        mtime = temp.stat().st_mtime
        # Just inside the grace window: kept.
        assert store._reclaim_stale_temps(now=mtime + TEMP_GRACE_SECONDS - 1) == 0
        assert temp.exists()
        # Just past it: reclaimed.
        assert store._reclaim_stale_temps(now=mtime + TEMP_GRACE_SECONDS + 1) == 1
        assert not temp.exists()
