"""The serving layer: dict-level handlers, the HTTP round trip, the client.

The central assertion everywhere: a served response carries byte-for-byte
the measures/model/statistics an in-process ``Study``/``SweepStudy`` with the
same skeleton cache computes (timings are wall-clock and excluded).
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.measures import MTTF, Unreliability
from repro.core.study import Study, StudyOptions
from repro.core.sweep import RateSweep, SweepStudy
from repro.dft import galileo
from repro.service.app import AnalysisService, query_from_payload
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import serve
from repro.service.store import SkeletonStore

AND_TREE = """
toplevel "sys";
"sys" and "a" "b";
"a" lambda=0.5;
"b" lambda=0.7;
"""

PARAM_TREE = """
param lam = 0.5;
toplevel "sys";
"sys" or "a" "b";
"a" lambda=lam;
"b" lambda=0.7;
"""

def _nondet_tree_text():
    from repro.systems import pand_race_system

    return galileo.write(pand_race_system())

BROKEN_TREE = "this is not galileo"


def _strip(response):
    """A served study response minus its wall-clock noise."""
    slim = dict(response)
    slim.pop("timings", None)
    slim.pop("service", None)
    options = dict(slim.get("options", {}))
    options.pop("skeleton_cache", None)
    slim["options"] = options
    return slim


def _local_study_dict(text, store, query, options=None):
    tree = galileo.parse(text, name="<request>")
    result = Study(tree, options or StudyOptions(), skeleton_cache=store).evaluate(
        query, on_error="record"
    )
    return _strip(result.to_dict(include_steps=False))


@pytest.fixture
def service(tmp_path):
    app = AnalysisService(SkeletonStore(tmp_path / "cache"))
    yield app
    app.close()


class TestQueryFromPayload:
    def test_defaults(self):
        query = query_from_payload(None)
        assert [measure.kind for measure in query] == ["unreliability"]

    def test_unknown_field_rejected(self):
        with pytest.raises(Exception, match="unknown query field"):
            query_from_payload({"time": [1.0]})

    def test_bad_times_rejected(self):
        with pytest.raises(Exception, match="times"):
            query_from_payload({"times": []})
        with pytest.raises(Exception, match="times"):
            query_from_payload({"times": ["soon"]})

    def test_nondeterministic_upgrades_to_bounds(self):
        query = query_from_payload({"times": [1.0]}, nondeterministic=True)
        assert [measure.kind for measure in query] == ["unreliability_bounds"]


class TestDictHandlers:
    def test_routing(self, service):
        assert service.handle("GET", "/nope", None)[0] == 404
        assert service.handle("GET", "/analyze", None)[0] == 405
        assert service.handle("POST", "/healthz", None)[0] == 405
        assert service.handle("GET", "/healthz", None)[0] == 200

    def test_analyze_bad_tree_is_400(self, service):
        status, payload = service.handle("POST", "/analyze", {"tree": BROKEN_TREE})
        assert status == 400
        assert "error" in payload

    def test_analyze_hit_miss_and_bit_identity(self, service):
        request = {"tree": AND_TREE, "query": {"times": [1.0, 2.0], "mttf": True}}
        status, first = service.handle("POST", "/analyze", request)
        assert status == 200
        assert first["service"]["cache"] == "miss"
        status, second = service.handle("POST", "/analyze", request)
        assert second["service"]["cache"] == "hit"
        assert _strip(first) == _strip(second)
        local = _local_study_dict(
            AND_TREE, service.store, Unreliability([1.0, 2.0]) + MTTF()
        )
        assert _strip(second) == local

    def test_nondeterministic_tree_served_with_bounds(self, service):
        status, response = service.handle(
            "POST", "/analyze", {"tree": _nondet_tree_text(), "query": {"times": [1.0]}}
        )
        assert status == 200
        kinds = [measure["kind"] for measure in response["measures"]]
        assert kinds == ["unreliability_bounds"]

    def test_sweep_matches_in_process(self, service):
        request = {
            "tree": PARAM_TREE,
            "axes": {"lam": [0.1, 0.5, 1.0]},
            "query": {"times": [1.0]},
            "share_uniformisation": True,
        }
        status, served = service.handle("POST", "/sweep", request)
        assert status == 200
        tree = galileo.parse(PARAM_TREE, name="<request>")
        local = SweepStudy(tree, StudyOptions(), skeleton_cache=service.store).run(
            RateSweep.grid(Unreliability([1.0]), lam=[0.1, 0.5, 1.0]),
            share_uniformisation=True,
        )
        for mine, theirs in zip(served["rows"], local.to_dict()["rows"]):
            assert mine["sample"] == theirs["sample"]
            assert mine["measures"] == theirs["measures"]

    def test_sweep_axis_naming_a_basic_event(self, service):
        status, served = service.handle(
            "POST",
            "/sweep",
            {"tree": AND_TREE, "axes": {"a": [0.1, 0.5]}},
        )
        assert status == 200
        assert [row["sample"] for row in served["rows"]] == [
            {"a": 0.1},
            {"a": 0.5},
        ]

    def test_sweep_needs_exactly_one_of_axes_and_samples(self, service):
        assert service.handle("POST", "/sweep", {"tree": PARAM_TREE})[0] == 400
        both = {
            "tree": PARAM_TREE,
            "axes": {"lam": [0.1]},
            "samples": [{"lam": 0.1}],
        }
        assert service.handle("POST", "/sweep", both)[0] == 400

    def test_batch_mixes_good_and_bad_rows(self, service):
        status, response = service.handle(
            "POST",
            "/batch",
            {"trees": [AND_TREE, BROKEN_TREE, AND_TREE], "query": {"times": [1.0]}},
        )
        assert status == 200
        assert response["aggregate"]["trees"] == 3
        assert response["aggregate"]["failed"] == 1
        oks = [row["ok"] for row in response["rows"]]
        assert oks == [True, False, True]
        assert response["rows"][0]["result"]["measures"] == (
            response["rows"][2]["result"]["measures"]
        )
        # Rows 1 and 3 share a structural class: one miss builds, one hit.
        assert response["service"]["cache_hits"] == 1
        assert response["service"]["cache_misses"] == 1

    def test_metrics_accumulate(self, service):
        service.handle("POST", "/analyze", {"tree": AND_TREE})
        service.handle("POST", "/analyze", {"tree": BROKEN_TREE})
        status, payload = service.handle("GET", "/metrics", None)
        assert status == 200
        analyze = payload["endpoints"]["/analyze"]
        assert analyze["requests"] == 2
        assert analyze["errors"] == 1
        assert payload["store"]["entries"] == 1


@pytest.fixture
def http_server(tmp_path):
    server = serve(str(tmp_path / "cache"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHttpRoundTrip:
    def test_mixed_concurrent_requests_bit_identical(self, http_server):
        client = ServiceClient(http_server.url)
        store = SkeletonStore(http_server.service.store.root)

        def analyze(_):
            return ("analyze", client.analyze(AND_TREE, times=[1.0, 2.0], mttf=True))

        def sweep(_):
            return ("sweep", client.sweep(PARAM_TREE, axes={"lam": [0.1, 0.5]}))

        def health(_):
            return ("healthz", client.healthz())

        jobs = [analyze, sweep, health] * 3
        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(lambda job: job[0](job[1]), ((j, None) for j in jobs)))

        local_analyze = _local_study_dict(
            AND_TREE, store, Unreliability([1.0, 2.0]) + MTTF()
        )
        tree = galileo.parse(PARAM_TREE, name="<request>")
        local_sweep = SweepStudy(tree, StudyOptions(), skeleton_cache=store).run(
            RateSweep.grid(Unreliability([1.0]), lam=[0.1, 0.5])
        ).to_dict()
        for kind, response in outcomes:
            if kind == "analyze":
                assert _strip(response) == local_analyze
            elif kind == "sweep":
                for mine, theirs in zip(response["rows"], local_sweep["rows"]):
                    assert mine["sample"] == theirs["sample"]
                    assert mine["measures"] == theirs["measures"]
            else:
                assert response["status"] == "ok"

    def test_client_accepts_in_memory_trees(self, http_server):
        tree = galileo.parse(AND_TREE, name="mem")
        client = ServiceClient(http_server.url)
        response = client.analyze(tree, times=[1.0])
        assert response["measures"][0]["values"] == pytest.approx(
            [0.19807824840815813]
        )

    def test_analyze_result_round_trip(self, http_server):
        client = ServiceClient(http_server.url)
        result = client.analyze_result(AND_TREE, times=[1.0], mttf=True)
        assert result["mttf"].value == pytest.approx(2.5952380952, rel=1e-9)

    def test_4xx_raises_immediately_with_server_message(self, http_server):
        client = ServiceClient(http_server.url, retries=0)
        with pytest.raises(ServiceError, match="cannot parse"):
            client.analyze(BROKEN_TREE)

    def test_unreachable_server_raises_after_retries(self):
        client = ServiceClient("http://127.0.0.1:9", retries=1, backoff=0.01)
        with pytest.raises(ServiceError, match="attempts"):
            client.healthz()

    def test_invalid_json_body_is_400(self, http_server):
        import urllib.request

        request = urllib.request.Request(
            http_server.url + "/analyze",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as error:
            assert error.code == 400
            assert "JSON" in json.loads(error.read().decode())["error"]
        else:  # pragma: no cover
            pytest.fail("expected a 400 response")


class TestWorkerPool:
    def test_pool_measures_match_inline(self, tmp_path):
        request = {"tree": AND_TREE, "query": {"times": [1.0, 2.0], "mttf": True}}
        inline = AnalysisService(SkeletonStore(tmp_path / "a"))
        pooled = AnalysisService(SkeletonStore(tmp_path / "b"), processes=1)
        try:
            _, inline_response = inline.handle("POST", "/analyze", request)
            _, cold = pooled.handle("POST", "/analyze", request)
            _, warm = pooled.handle("POST", "/analyze", request)
            assert inline_response["measures"] == cold["measures"] == warm["measures"]
        finally:
            inline.close()
            pooled.close()
