"""Unit tests of the random-DFT generator, including the FDEP and
shared-spare patterns added for the CTMDP/bound analysis paths."""

import pytest

from repro import UnreliabilityBounds, evaluate
from repro.dft.elements import FdepGate, SpareGate
from repro.systems import random_corpus, random_dft

SEEDS = range(8)


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plain_trees_validate(self, seed):
        tree = random_dft(6, seed=seed)
        tree.validate()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fdep_trees_validate(self, seed):
        tree = random_dft(6, seed=seed, fdep=True)
        tree.validate()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shared_spare_trees_validate(self, seed):
        tree = random_dft(6, seed=seed, shared_spares=True)
        tree.validate()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_combined_patterns_validate_and_analyse(self, seed):
        tree = random_dft(6, seed=seed, fdep=True, shared_spares=True)
        tree.validate()
        result = evaluate(tree, UnreliabilityBounds([1.0]))
        low, high = result["unreliability_bounds"].bounds
        assert 0.0 <= low <= high <= 1.0

    def test_determinism_of_generation(self):
        for kwargs in ({}, {"fdep": True}, {"shared_spares": True}):
            first = random_dft(6, seed=3, **kwargs)
            second = random_dft(6, seed=3, **kwargs)
            assert first.names() == second.names()
            assert first.summary() == second.summary()

    def test_patterns_change_the_tree(self):
        plain = random_dft(6, seed=3)
        with_patterns = random_dft(6, seed=3, fdep=True)
        assert plain.names() != with_patterns.names()


class TestPatternStructure:
    def test_fdep_corpus_contains_fdep_gates(self):
        trees = random_corpus(10, num_basic_events=6, seed=0, fdep=True)
        assert any(
            isinstance(element, FdepGate)
            for tree in trees
            for element in tree.elements()
        )

    def test_shared_spare_corpus_contains_shared_spares(self):
        trees = random_corpus(16, num_basic_events=7, seed=0, shared_spares=True)
        shared = 0
        for tree in trees:
            gates = [e for e in tree.elements() if isinstance(e, SpareGate)]
            for gate in gates:
                for spare in gate.spares:
                    if len(tree.spare_gates_using(spare)) > 1:
                        shared += 1
        assert shared > 0

    def test_fdep_dependents_are_never_spares(self):
        for seed in range(12):
            tree = random_dft(7, seed=seed, fdep=True, shared_spares=True)
            spares = {
                spare
                for element in tree.elements()
                if isinstance(element, SpareGate)
                for spare in element.spares
            }
            for element in tree.elements():
                if isinstance(element, FdepGate):
                    assert not (set(element.dependents) & spares)


class TestNondeterminismFlags:
    def test_plain_trees_stay_deterministic(self):
        for seed in SEEDS:
            result = evaluate(random_dft(6, seed=seed), UnreliabilityBounds([1.0]))
            assert not result.model.nondeterministic
            low, high = result["unreliability_bounds"].bounds
            assert low == pytest.approx(high, abs=1e-12)

    def test_fdep_corpus_reaches_a_nondeterministic_member(self):
        """The pattern exists to stress the CTMDP path: some member of a
        reasonably sized corpus must expose inherent non-determinism."""
        found = False
        for seed in range(24):
            tree = random_dft(6, seed=seed, fdep=True, shared_spares=True)
            result = evaluate(tree, UnreliabilityBounds([1.0]))
            if result.model.nondeterministic:
                found = True
                low, high = result["unreliability_bounds"].bounds
                assert low <= high
                break
        assert found


class TestPatternGuards:
    def test_patterns_require_dynamic_trees(self):
        with pytest.raises(ValueError, match="dynamic=True"):
            random_dft(5, seed=0, dynamic=False, fdep=True)
        with pytest.raises(ValueError, match="dynamic=True"):
            random_dft(5, seed=0, dynamic=False, shared_spares=True)

    def test_static_trees_stay_static(self):
        from repro.dft.elements import is_static

        tree = random_dft(8, seed=2, dynamic=False)
        assert all(is_static(element) for element in tree.elements())
