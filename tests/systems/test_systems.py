"""Tests for the predefined case-study builders and parametric generators."""

import pytest

from repro.dft import PandGate, SpareGate
from repro.systems import (
    and_of_or_family,
    and_spare_system,
    cardiac_assist_system,
    cascaded_pand_family,
    cascaded_pand_system,
    fdep_cascade_family,
    fdep_gate_trigger_system,
    figure2_models,
    inhibition_pair,
    mutually_exclusive_switch,
    nested_spare_system,
    pand_race_system,
    repairable_and_system,
    random_corpus,
    random_dft,
    repairable_plant,
    repairable_voting_system,
    shared_spare_race_system,
    spare_chain_family,
)


class TestPaperSystems:
    def test_cas_structure(self):
        cas = cardiac_assist_system()
        assert cas.top == "system"
        assert len(cas.basic_events()) == 10
        assert {g.name for g in cas.spare_gates()} == {"CPU_unit", "Motors", "Pump_A", "Pump_B"}
        assert cas.element("B").dormancy == 0.5
        assert cas.element("MB").is_cold
        assert cas.validate() == []

    def test_cps_structure(self):
        cps = cascaded_pand_system()
        assert len(cps.basic_events()) == 12
        assert isinstance(cps.element("system"), PandGate)
        assert isinstance(cps.element("B"), PandGate)
        assert cps.validate() == []

    def test_cps_parametrisation(self):
        small = cascaded_pand_system(events_per_module=2)
        assert len(small.basic_events()) == 6
        with pytest.raises(ValueError):
            cascaded_pand_system(events_per_module=0)

    def test_figure2_models(self):
        model_a, model_b = figure2_models(rate=2.0)
        assert "a" in model_a.signature.outputs
        assert "a" in model_b.signature.inputs
        assert "b" in model_b.signature.outputs
        model_a.validate()
        model_b.validate()

    def test_complex_spare_systems_validate(self):
        for factory in (and_spare_system, nested_spare_system, fdep_gate_trigger_system):
            tree = factory()
            assert tree.validate() == []

    def test_nested_spare_uses_spare_gate_as_spare(self):
        tree = nested_spare_system()
        system = tree.element("system")
        assert isinstance(system, SpareGate)
        assert isinstance(tree.element(system.spares[0]), SpareGate)

    def test_nondeterminism_systems_validate(self):
        assert pand_race_system().validate() == []
        assert shared_spare_race_system().validate() == []

    def test_repairable_systems(self):
        assert repairable_and_system().is_repairable
        assert repairable_voting_system(5, 3).is_repairable
        assert repairable_plant().is_repairable
        assert repairable_plant().validate() == []

    def test_mutex_systems(self):
        pair = inhibition_pair()
        assert len(pair.inhibitions()) == 1
        switch = mutually_exclusive_switch()
        assert len(switch.inhibitions()) == 2
        assert switch.validate() == []


class TestGenerators:
    def test_cascaded_pand_family_matches_cps(self):
        family = cascaded_pand_family(num_modules=3, events_per_module=4)
        cps = cascaded_pand_system()
        assert len(family.basic_events()) == len(cps.basic_events())
        assert len([g for g in family.gates() if isinstance(g, PandGate)]) == 2

    def test_cascaded_pand_family_grows(self):
        family = cascaded_pand_family(num_modules=5, events_per_module=2)
        assert len(family.basic_events()) == 10
        assert len([g for g in family.gates() if isinstance(g, PandGate)]) == 4
        assert family.validate() == []

    def test_cascaded_pand_family_validation(self):
        with pytest.raises(ValueError):
            cascaded_pand_family(num_modules=1)
        with pytest.raises(ValueError):
            cascaded_pand_family(events_per_module=0)

    def test_and_of_or_family(self):
        tree = and_of_or_family(num_branches=4, events_per_branch=2)
        assert tree.is_static
        assert len(tree.basic_events()) == 8
        with pytest.raises(ValueError):
            and_of_or_family(num_branches=0)

    def test_spare_chain_family(self):
        tree = spare_chain_family(num_subsystems=3, num_shared_spares=2)
        assert len(tree.spare_gates()) == 3
        assert len(tree.basic_events()) == 5
        assert tree.validate() == []
        with pytest.raises(ValueError):
            spare_chain_family(num_shared_spares=0)

    def test_fdep_cascade_family(self):
        tree = fdep_cascade_family(depth=4)
        assert len(tree.fdep_gates()) == 4
        assert tree.validate() == []
        with pytest.raises(ValueError):
            fdep_cascade_family(depth=0)


class TestRandomTrees:
    def test_random_dft_is_reproducible(self):
        from repro.dft import galileo

        first = galileo.write(random_dft(num_basic_events=6, seed=3))
        second = galileo.write(random_dft(num_basic_events=6, seed=3))
        assert first == second
        assert first != galileo.write(random_dft(num_basic_events=6, seed=4))

    def test_random_dft_validates_and_is_deterministic_model(self):
        from repro import evaluate, Unreliability

        for seed in range(5):
            tree = random_dft(num_basic_events=5, seed=seed)
            assert tree.validate() == []
            result = evaluate(tree, Unreliability([1.0]))
            assert 0.0 <= result["unreliability"].value <= 1.0

    def test_random_dft_static_only(self):
        tree = random_dft(num_basic_events=6, seed=1, dynamic=False)
        assert not any(isinstance(gate, (PandGate, SpareGate)) for gate in tree.gates())
        assert tree.validate() == []

    def test_random_dft_validation(self):
        with pytest.raises(ValueError):
            random_dft(num_basic_events=1)

    def test_random_corpus_distinct_trees(self):
        corpus = random_corpus(4, num_basic_events=5, seed=0)
        assert len(corpus) == 4
        assert len({tree.name for tree in corpus}) == 4
        with pytest.raises(ValueError):
            random_corpus(0)
