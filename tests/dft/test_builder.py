"""Tests for the fluent fault-tree builder."""

import pytest

from repro.dft import FaultTreeBuilder, SpareGate, VotingGate
from repro.errors import FaultTreeError


class TestBuilder:
    def test_quickstart_example(self):
        builder = FaultTreeBuilder("pumps")
        builder.basic_event("PA", failure_rate=1.0)
        builder.basic_event("PB", failure_rate=1.0)
        builder.basic_event("PS", failure_rate=1.0, dormancy=0.0)
        builder.spare_gate("PumpA", primary="PA", spares=["PS"])
        builder.spare_gate("PumpB", primary="PB", spares=["PS"])
        builder.and_gate("System", ["PumpA", "PumpB"])
        tree = builder.build(top="System")
        assert tree.top == "System"
        assert len(tree) == 6
        assert isinstance(tree.element("PumpA"), SpareGate)

    def test_basic_events_bulk(self):
        builder = FaultTreeBuilder("bulk")
        names = builder.basic_events(["A", "B", "C"], failure_rate=2.0, dormancy=0.5)
        assert names == ["A", "B", "C"]
        builder.and_gate("Top", names)
        tree = builder.build("Top")
        assert all(tree.element(n).dormancy == 0.5 for n in names)

    def test_voting_gate(self):
        builder = FaultTreeBuilder("vote")
        builder.basic_events(["A", "B", "C"], failure_rate=1.0)
        builder.voting_gate("Top", ["A", "B", "C"], threshold=2)
        tree = builder.build("Top")
        gate = tree.element("Top")
        assert isinstance(gate, VotingGate) and gate.threshold == 2

    def test_mutual_exclusion_creates_two_constraints(self):
        builder = FaultTreeBuilder("mutex")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        names = builder.mutual_exclusion("modes", "A", "B")
        builder.or_gate("Top", ["A", "B"])
        tree = builder.build("Top")
        assert len(names) == 2
        assert len(tree.inhibitions()) == 2
        inhibitor_target_pairs = {(c.inhibitor, c.target) for c in tree.inhibitions()}
        assert inhibitor_target_pairs == {("A", "B"), ("B", "A")}

    def test_build_validates_by_default(self):
        builder = FaultTreeBuilder("broken")
        builder.and_gate("Top", ["Ghost"])
        with pytest.raises(FaultTreeError):
            builder.build("Top")

    def test_build_can_skip_validation(self):
        builder = FaultTreeBuilder("broken")
        builder.and_gate("Top", ["Ghost"])
        tree = builder.build("Top", validate=False)
        assert tree.top == "Top"

    def test_partial_tree_accessible(self):
        builder = FaultTreeBuilder("partial")
        builder.basic_event("A", 1.0)
        assert "A" in builder.tree

    def test_seq_and_fdep_and_inhibition(self):
        builder = FaultTreeBuilder("mixed")
        builder.basic_events(["A", "B", "C", "T"], failure_rate=1.0)
        builder.seq_gate("Seq", ["A", "B"])
        builder.fdep("F", trigger="T", dependents=["C"])
        builder.inhibition("I", inhibitor="A", target="C")
        builder.or_gate("Top", ["Seq", "C"])
        tree = builder.build("Top")
        assert len(tree.seq_gates()) == 1
        assert len(tree.fdep_gates()) == 1
        assert len(tree.inhibitions()) == 1
