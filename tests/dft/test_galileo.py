"""Tests for the Galileo format parser and writer."""

import pytest

from repro.dft import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
    galileo,
)
from repro.errors import GalileoSyntaxError
from repro.systems import cardiac_assist_system, cascaded_pand_system

CAS_TEXT = """
// Cardiac assist system (paper, Figure 7)
toplevel "system";
"system" or "CPU_unit" "Motor_unit" "Pump_unit";
"Trigger" or "CS" "SS";
"CPU_fdep" fdep "Trigger" "P" "B";
"CPU_unit" wsp "P" "B";
"Switch" pand "MS" "MA";
"Motors" csp "MA" "MB";
"Motor_unit" or "Switch" "Motors";
"Pump_A" csp "PA" "PS";
"Pump_B" csp "PB" "PS";
"Pump_unit" and "Pump_A" "Pump_B";
"CS" lambda=0.2;
"SS" lambda=0.2;
"P" lambda=0.5;
"B" lambda=0.5 dorm=0.5;
"MS" lambda=0.01;
"MA" lambda=1.0;
"MB" lambda=1.0 dorm=0.0;
"PA" lambda=1.0;
"PB" lambda=1.0;
"PS" lambda=1.0 dorm=0.0;
"""


class TestParsing:
    def test_parse_cas(self):
        tree = galileo.parse(CAS_TEXT, name="cas")
        assert tree.top == "system"
        assert isinstance(tree.element("system"), OrGate)
        assert isinstance(tree.element("CPU_unit"), SpareGate)
        assert isinstance(tree.element("Switch"), PandGate)
        assert isinstance(tree.element("CPU_fdep"), FdepGate)
        assert tree.element("B").dormancy == 0.5
        assert tree.element("MB").is_cold

    def test_parse_matches_programmatic_cas(self):
        parsed = galileo.parse(CAS_TEXT)
        built = cardiac_assist_system()
        assert set(parsed.names()) == set(built.names())
        for name in built.names():
            assert type(parsed.element(name)) is type(built.element(name))

    def test_voting_gate_syntax(self):
        text = """
        toplevel "Top";
        "Top" 2of3 "A" "B" "C";
        "A" lambda=1.0; "B" lambda=1.0; "C" lambda=1.0;
        """
        tree = galileo.parse(text)
        gate = tree.element("Top")
        assert isinstance(gate, VotingGate) and gate.threshold == 2

    def test_voting_arity_mismatch(self):
        text = 'toplevel "Top"; "Top" 2of3 "A" "B"; "A" lambda=1; "B" lambda=1;'
        with pytest.raises(GalileoSyntaxError):
            galileo.parse(text)

    def test_seq_and_inhibit_keywords(self):
        text = """
        toplevel "Top";
        "Top" and "S" "C";
        "S" seq "A" "B";
        "I" inhibit "A" "C";
        "A" lambda=1; "B" lambda=1; "C" lambda=1;
        """
        tree = galileo.parse(text)
        assert isinstance(tree.element("S"), SeqGate)
        assert isinstance(tree.element("I"), InhibitionConstraint)

    def test_repair_parameter(self):
        text = 'toplevel "Top"; "Top" and "A" "B"; "A" lambda=1 repair=2; "B" lambda=1 repair=2;'
        tree = galileo.parse(text)
        assert tree.element("A").repair_rate == 2.0
        assert tree.is_repairable

    def test_unquoted_names_allowed(self):
        text = "toplevel Top; Top and A B; A lambda=1; B lambda=2;"
        tree = galileo.parse(text)
        assert isinstance(tree.element("Top"), AndGate)

    def test_comments_ignored(self):
        text = "// a comment\ntoplevel \"T\"; // trailing\n\"T\" or \"A\"; \"A\" lambda=1;"
        tree = galileo.parse(text)
        assert tree.top == "T"


class TestParseErrors:
    def test_missing_toplevel(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('"A" lambda=1;')

    def test_duplicate_toplevel(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "A"; toplevel "B"; "A" lambda=1; "B" lambda=1;')

    def test_undefined_toplevel(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "Ghost"; "A" lambda=1;')

    def test_missing_lambda(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "A"; "A" dorm=0.5;')

    def test_constant_probability_unsupported(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "A"; "A" prob=0.5;')

    def test_unknown_parameter(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "A"; "A" lambda=1 weight=3;')

    def test_unterminated_quote(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "A; "A" lambda=1;')

    def test_fdep_needs_dependents(self):
        text = 'toplevel "T"; "T" or "A"; "F" fdep "A"; "A" lambda=1;'
        with pytest.raises(GalileoSyntaxError):
            galileo.parse(text)

    def test_spare_needs_spares(self):
        text = 'toplevel "T"; "T" wsp "A"; "A" lambda=1;'
        with pytest.raises(GalileoSyntaxError):
            galileo.parse(text)

    def test_empty_text(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse("   \n  // only comments\n")

    def test_non_numeric_parameter(self):
        with pytest.raises(GalileoSyntaxError):
            galileo.parse('toplevel "A"; "A" lambda=fast;')

    def test_error_reports_line_number(self):
        try:
            galileo.parse('toplevel "A";\n"A" lambda=oops;')
        except GalileoSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "tree_factory", [cardiac_assist_system, cascaded_pand_system]
    )
    def test_write_then_parse_preserves_structure(self, tree_factory):
        original = tree_factory()
        text = galileo.write(original)
        parsed = galileo.parse(text)
        assert parsed.top == original.top
        assert set(parsed.names()) == set(original.names())
        for name in original.names():
            original_element = original.element(name)
            parsed_element = parsed.element(name)
            assert type(parsed_element) is type(original_element)
            if isinstance(original_element, BasicEvent):
                assert parsed_element.failure_rate == pytest.approx(
                    original_element.failure_rate
                )
                assert parsed_element.dormancy == pytest.approx(original_element.dormancy)
            else:
                assert parsed_element.inputs == original_element.inputs

    def test_file_round_trip(self, tmp_path):
        tree = cardiac_assist_system()
        path = tmp_path / "cas.dft"
        galileo.write_file(tree, str(path))
        parsed = galileo.parse_file(str(path))
        assert set(parsed.names()) == set(tree.names())
