"""Canonicalisation properties of the structural hash (the store's cache key).

The hash must quotient out everything the skeleton store makes irrelevant —
element names, Galileo declaration order, concrete rate values — and must
separate everything that changes the aggregated structure: gate types, PAND
child order, parameter axes (which events share a swept parameter).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.sweep import with_rate_parameters
from repro.dft import galileo
from repro.dft.builder import FaultTreeBuilder
from repro.dft.elements import AndGate, BasicEvent, OrGate
from repro.dft.hashing import (
    canonical_assignment,
    canonical_parameter_map,
    canonical_parametrisation,
    structural_hash,
    translate_sample,
)
from repro.dft.tree import DynamicFaultTree
from repro.systems import random_dft


def _rename_via_galileo(tree: DynamicFaultTree, prefix: str = "zz_") -> DynamicFaultTree:
    """The same tree with every element renamed (Galileo names are quoted)."""
    text = galileo.write(tree)
    for name in tree.names():
        text = text.replace(f'"{name}"', f'"{prefix}{name}"')
    return galileo.parse(text, name=f"renamed-{tree.name}")


def _permute_declarations(tree: DynamicFaultTree) -> DynamicFaultTree:
    """The same tree with declarations added in reverse order."""
    clone = DynamicFaultTree(tree.name)
    for parameter, nominal in tree.parameters.items():
        clone.declare_parameter(parameter, nominal)
    for name in reversed(list(tree.names())):
        clone.add(tree.element(name))
    clone.set_top(tree.top)
    return clone


def _scale_rates(tree: DynamicFaultTree, factor: float) -> DynamicFaultTree:
    """The same tree with every concrete rate scaled by ``factor``."""
    clone = DynamicFaultTree(tree.name)
    for parameter, nominal in tree.parameters.items():
        clone.declare_parameter(parameter, nominal * factor)
    for name in tree.names():
        element = tree.element(name)
        if isinstance(element, BasicEvent):
            element = dataclasses.replace(
                element,
                failure_rate=element.failure_rate * factor,
                repair_rate=(
                    None
                    if element.repair_rate is None
                    else element.repair_rate * factor
                ),
            )
        clone.add(element)
    clone.set_top(tree.top)
    return clone


def _flip_one_gate(tree: DynamicFaultTree) -> DynamicFaultTree:
    """The same tree with one AND flipped to OR (or OR to AND)."""
    clone = DynamicFaultTree(tree.name)
    for parameter, nominal in tree.parameters.items():
        clone.declare_parameter(parameter, nominal)
    flipped = False
    for name in tree.names():
        element = tree.element(name)
        if not flipped and isinstance(element, AndGate):
            element = OrGate(name=element.name, inputs=element.inputs)
            flipped = True
        elif not flipped and isinstance(element, OrGate) and len(element.inputs) > 1:
            element = AndGate(name=element.name, inputs=element.inputs)
            flipped = True
        clone.add(element)
    if not flipped:
        return None
    clone.set_top(tree.top)
    return clone


class TestHandBuiltInvariance:
    def _pand(self, first: str, second: str) -> DynamicFaultTree:
        # The children are structurally distinct (a plain event vs an OR
        # gate), so swapping them genuinely changes the canonical structure.
        builder = FaultTreeBuilder("pand")
        builder.basic_event("x", 1.0)
        builder.basic_event("y1", 2.0)
        builder.basic_event("y2", 2.0)
        builder.or_gate("y", ["y1", "y2"])
        builder.pand_gate("top", [first, second])
        return builder.build("top")

    def test_pand_child_order_changes_hash(self):
        assert structural_hash(self._pand("x", "y")) != structural_hash(
            self._pand("y", "x")
        )

    def test_pand_order_of_interchangeable_children_is_positional(self):
        # Two hot events differing only in their (hash-excluded) rates are
        # the same structural class, so both orders share one cached
        # skeleton; correctness is preserved because the canonical per-event
        # parameters are assigned by position (see the store tests for the
        # numeric differential).
        def pand(first, second):
            builder = FaultTreeBuilder("pand2")
            builder.basic_event("x", 1.0)
            builder.basic_event("y", 2.0)
            builder.pand_gate("top", [first, second])
            return builder.build("top")

        assert structural_hash(pand("x", "y")) == structural_hash(pand("y", "x"))
        ours = canonical_assignment(pand("x", "y"))
        swapped = canonical_assignment(pand("y", "x"))
        # Same canonical axes, mirrored values: the assignment carries the
        # order the hash quotiented out.
        assert set(ours) == set(swapped)
        assert sorted(ours.values()) == sorted(swapped.values())
        assert ours != swapped

    def test_and_child_order_preserves_hash(self):
        # AND is commutative only up to the children's structural classes;
        # with distinct rates excluded from the hash both orders canonicalise
        # to the same positional records.
        def and_tree(first, second):
            builder = FaultTreeBuilder("and")
            builder.basic_event("x", 1.0)
            builder.basic_event("y", 2.0)
            builder.and_gate("top", [first, second])
            return builder.build("top")

        # Same child fingerprints (both plain hot events) -> same canonical
        # DFS order regardless of input order is NOT guaranteed in general,
        # but two structurally identical children must hash alike.
        assert structural_hash(and_tree("x", "y")) == structural_hash(
            and_tree("y", "x")
        )

    def test_parameter_axis_changes_hash(self, and_tree):
        assert structural_hash(with_rate_parameters(and_tree)) != structural_hash(
            and_tree
        )

    def test_shared_axis_differs_from_split_axes(self):
        def tree(shared):
            builder = FaultTreeBuilder("axes")
            builder.basic_event("x", 1.0)
            builder.basic_event("y", 1.0)
            builder.and_gate("top", ["x", "y"])
            built = builder.build("top")
            mapping = {"x": "p", "y": "p"} if shared else {"x": "px", "y": "py"}
            return with_rate_parameters(built, mapping)

        assert structural_hash(tree(shared=True)) != structural_hash(
            tree(shared=False)
        )

    def test_dormancy_is_structural(self):
        def tree(dormancy):
            builder = FaultTreeBuilder("spare")
            builder.basic_event("p", 1.0)
            builder.basic_event("s", 1.0, dormancy=dormancy)
            builder.spare_gate("top", "p", ["s"])
            return builder.build("top")

        assert structural_hash(tree(0.0)) != structural_hash(tree(0.5))


class TestRandomTreeInvariance:
    @settings(max_examples=20, deadline=None)
    @given(
        num_events=st.integers(min_value=3, max_value=7),
        seed=st.integers(min_value=0, max_value=200),
        factor=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    )
    def test_equivalences_and_separations(self, num_events, seed, factor):
        tree = random_dft(num_basic_events=num_events, seed=seed)
        reference = structural_hash(tree)
        # Invariances: names, declaration order, concrete rates.
        assert structural_hash(_rename_via_galileo(tree)) == reference
        assert structural_hash(_permute_declarations(tree)) == reference
        assert structural_hash(_scale_rates(tree, factor)) == reference
        # Parametrising events adds axes -> a different structural class.
        assert structural_hash(with_rate_parameters(tree)) != reference

    @settings(max_examples=10, deadline=None)
    @given(
        num_events=st.integers(min_value=3, max_value=7),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_gate_type_changes_hash(self, num_events, seed):
        tree = random_dft(num_basic_events=num_events, seed=seed)
        flipped = _flip_one_gate(tree)
        assume(flipped is not None)
        assert structural_hash(flipped) != structural_hash(tree)


class TestCanonicalParametrisation:
    def test_assignment_restores_source_rates(self):
        tree = random_dft(num_basic_events=5, seed=11)
        canonical = canonical_parametrisation(tree)
        assignment = canonical_assignment(tree)
        # Every canonical parameter the clone declares is assigned, at the
        # source tree's concrete rate.
        assert set(assignment) == set(canonical.parameters)
        by_param = dict(canonical.parameters)
        for name, value in assignment.items():
            assert by_param[name] == pytest.approx(value)

    def test_structurally_equal_trees_share_the_canonical_form(self):
        tree = random_dft(num_basic_events=5, seed=11)
        renamed = _rename_via_galileo(tree)
        ours = canonical_parametrisation(tree)
        theirs = canonical_parametrisation(renamed)
        assert [e.name for e in ours.elements()] == [
            e.name for e in theirs.elements()
        ]
        assert structural_hash(ours) == structural_hash(theirs)

    def test_parameter_map_translates_samples(self):
        builder = FaultTreeBuilder("mapped")
        builder.parameter("lam", 0.5)
        builder.basic_event("x", param="lam")
        builder.basic_event("y", param="lam")
        builder.basic_event("z", 2.0)
        builder.and_gate("top", ["x", "y", "z"])
        tree = builder.build("top")
        mapping = canonical_parameter_map(tree)
        assert set(mapping) == {"lam"}
        assert len(mapping["lam"]) == 2  # lam drives two canonical axes
        sample = translate_sample({"lam": 0.9}, mapping)
        assert set(sample) == set(mapping["lam"])
        assert all(value == 0.9 for value in sample.values())
