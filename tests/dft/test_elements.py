"""Tests for DFT element dataclasses and their validation."""

import pytest

from repro.dft import (
    AndGate,
    BasicEvent,
    FdepGate,
    InhibitionConstraint,
    OrGate,
    PandGate,
    SeqGate,
    SpareGate,
    VotingGate,
    is_basic_event,
    is_dynamic,
    is_gate,
    is_static,
)
from repro.errors import FaultTreeError


class TestBasicEvent:
    def test_defaults_are_hot(self):
        event = BasicEvent("A", failure_rate=2.0)
        assert event.is_hot and not event.is_cold and not event.is_warm
        assert event.dormant_rate == pytest.approx(2.0)
        assert not event.is_repairable

    def test_cold_and_warm(self):
        cold = BasicEvent("C", 1.0, dormancy=0.0)
        warm = BasicEvent("W", 1.0, dormancy=0.3)
        assert cold.is_cold and cold.dormant_rate == 0.0
        assert warm.is_warm and warm.dormant_rate == pytest.approx(0.3)

    def test_repairable(self):
        event = BasicEvent("R", 1.0, repair_rate=4.0)
        assert event.is_repairable

    def test_invalid_rate(self):
        with pytest.raises(FaultTreeError):
            BasicEvent("A", failure_rate=0.0)
        with pytest.raises(FaultTreeError):
            BasicEvent("A", failure_rate=-1.0)
        with pytest.raises(FaultTreeError):
            BasicEvent("A", failure_rate=float("inf"))

    def test_invalid_dormancy(self):
        with pytest.raises(FaultTreeError):
            BasicEvent("A", 1.0, dormancy=1.5)
        with pytest.raises(FaultTreeError):
            BasicEvent("A", 1.0, dormancy=-0.1)

    def test_invalid_repair_rate(self):
        with pytest.raises(FaultTreeError):
            BasicEvent("A", 1.0, repair_rate=0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(FaultTreeError):
            BasicEvent("", 1.0)

    def test_no_inputs(self):
        assert BasicEvent("A", 1.0).inputs == ()


class TestStaticGates:
    def test_and_or_inputs(self):
        assert AndGate("g", ("a", "b")).inputs == ("a", "b")
        assert OrGate("g", ("a",)).inputs == ("a",)

    def test_empty_inputs_rejected(self):
        with pytest.raises(FaultTreeError):
            AndGate("g", ())
        with pytest.raises(FaultTreeError):
            OrGate("g", ())

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(FaultTreeError):
            AndGate("g", ("a", "a"))

    def test_voting_threshold_validation(self):
        gate = VotingGate("v", ("a", "b", "c"), threshold=2)
        assert gate.threshold == 2
        with pytest.raises(FaultTreeError):
            VotingGate("v", ("a", "b"), threshold=3)
        with pytest.raises(FaultTreeError):
            VotingGate("v", ("a", "b"), threshold=0)


class TestDynamicGates:
    def test_pand_needs_two_inputs(self):
        with pytest.raises(FaultTreeError):
            PandGate("p", ("a",))
        assert PandGate("p", ("a", "b", "c")).inputs == ("a", "b", "c")

    def test_seq_needs_two_inputs(self):
        with pytest.raises(FaultTreeError):
            SeqGate("s", ("a",))

    def test_spare_gate_structure(self):
        gate = SpareGate("g", primary="p", spares=("s1", "s2"))
        assert gate.inputs == ("p", "s1", "s2")

    def test_spare_gate_requires_spares(self):
        with pytest.raises(FaultTreeError):
            SpareGate("g", primary="p", spares=())

    def test_spare_gate_primary_not_spare(self):
        with pytest.raises(FaultTreeError):
            SpareGate("g", primary="p", spares=("p",))

    def test_spare_gate_duplicate_spares(self):
        with pytest.raises(FaultTreeError):
            SpareGate("g", primary="p", spares=("s", "s"))

    def test_fdep_structure(self):
        gate = FdepGate("f", trigger="t", dependents=("a", "b"))
        assert gate.inputs == ("t", "a", "b")

    def test_fdep_requires_dependents(self):
        with pytest.raises(FaultTreeError):
            FdepGate("f", trigger="t", dependents=())

    def test_fdep_trigger_not_dependent(self):
        with pytest.raises(FaultTreeError):
            FdepGate("f", trigger="t", dependents=("t",))

    def test_inhibition_structure(self):
        constraint = InhibitionConstraint("i", inhibitor="a", target="b")
        assert constraint.inputs == ("a", "b")
        with pytest.raises(FaultTreeError):
            InhibitionConstraint("i", inhibitor="a", target="a")


class TestClassification:
    def test_predicates(self):
        event = BasicEvent("A", 1.0)
        and_gate = AndGate("g", ("A",))
        pand = PandGate("p", ("A", "B"))
        assert is_basic_event(event) and not is_gate(event)
        assert is_gate(and_gate) and is_static(and_gate) and not is_dynamic(and_gate)
        assert is_dynamic(pand) and not is_static(pand)
        assert is_static(event)

    def test_fdep_is_dynamic(self):
        assert is_dynamic(FdepGate("f", "t", ("a",)))

    def test_spare_is_dynamic(self):
        assert is_dynamic(SpareGate("s", "p", ("q",)))
