"""Tests for independent-module detection and DIFTree modularisation."""

from repro.dft import (
    FaultTreeBuilder,
    diftree_modules,
    independent_modules,
    is_independent_module,
    module_is_dynamic,
)
from repro.dft.modules import module_members
from repro.systems import cardiac_assist_system, cascaded_pand_system


class TestModuleMembers:
    def test_plain_subtree(self, and_tree):
        assert module_members(and_tree, "Top") == frozenset({"Top", "A", "B"})

    def test_fdep_pulls_in_trigger_cone(self):
        cas = cardiac_assist_system()
        members = module_members(cas, "CPU_unit")
        assert {"CPU_unit", "P", "B", "CPU_fdep", "Trigger", "CS", "SS"} <= members

    def test_unrelated_constraint_not_included(self):
        cas = cardiac_assist_system()
        members = module_members(cas, "Pump_unit")
        assert "CPU_fdep" not in members
        assert "Trigger" not in members


class TestIndependence:
    def test_cas_units_are_independent(self):
        cas = cardiac_assist_system()
        for unit in ("CPU_unit", "Motor_unit", "Pump_unit"):
            assert is_independent_module(cas, unit)

    def test_shared_element_breaks_independence(self):
        cas = cardiac_assist_system()
        # MA is shared between Switch (PAND) and Motors (spare gate).
        assert not is_independent_module(cas, "Motors")
        assert not is_independent_module(cas, "Switch")

    def test_shared_spare_breaks_independence(self):
        cas = cardiac_assist_system()
        assert not is_independent_module(cas, "Pump_A")
        assert is_independent_module(cas, "Pump_unit")

    def test_cps_modules_are_independent(self):
        cps = cascaded_pand_system()
        for module in ("A", "B", "C", "D", "system"):
            assert is_independent_module(cps, module)

    def test_independent_modules_listing(self):
        cps = cascaded_pand_system()
        modules = independent_modules(cps)
        assert set(modules) == {"A", "B", "C", "D", "system"}

    def test_cross_module_fdep_breaks_independence(self):
        builder = FaultTreeBuilder("cross")
        builder.basic_events(["A", "B", "T"], failure_rate=1.0)
        builder.and_gate("Left", ["A", "T"])
        builder.and_gate("Right", ["B"])
        builder.fdep("F", trigger="T", dependents=["B"])
        builder.or_gate("Top", ["Left", "Right"])
        tree = builder.build("Top")
        # The trigger T sits below Left but fails B below Right.
        assert not is_independent_module(tree, "Left")
        assert not is_independent_module(tree, "Right")


class TestDynamicClassification:
    def test_static_module(self, and_tree):
        assert not module_is_dynamic(and_tree, "Top")

    def test_spare_module_is_dynamic(self, cold_spare_tree):
        assert module_is_dynamic(cold_spare_tree, "Top")

    def test_fdep_makes_module_dynamic(self, fdep_tree):
        assert module_is_dynamic(fdep_tree, "Top")


class TestDiftreeModules:
    def test_cas_splits_into_four_modules(self):
        cas = cardiac_assist_system()
        modules = diftree_modules(cas)
        roots = {module.root: module for module in modules}
        assert set(roots) == {"system", "CPU_unit", "Motor_unit", "Pump_unit"}
        assert not roots["system"].dynamic
        assert roots["system"].detached == ("CPU_unit", "Motor_unit", "Pump_unit")
        for unit in ("CPU_unit", "Motor_unit", "Pump_unit"):
            assert roots[unit].dynamic

    def test_cps_is_one_monolithic_module(self):
        cps = cascaded_pand_system()
        modules = diftree_modules(cps)
        assert len(modules) == 1
        module = modules[0]
        assert module.root == "system"
        assert module.dynamic
        assert module.size == len(cps)

    def test_fully_static_tree_single_module(self, and_tree):
        modules = diftree_modules(and_tree)
        assert len(modules) == 1
        assert not modules[0].dynamic

    def test_static_tree_with_nested_or_modules(self):
        builder = FaultTreeBuilder("static-nested")
        builder.basic_events(["A", "B", "C", "D"], failure_rate=1.0)
        builder.or_gate("Left", ["A", "B"])
        builder.or_gate("Right", ["C", "D"])
        builder.and_gate("Top", ["Left", "Right"])
        tree = builder.build("Top")
        modules = diftree_modules(tree)
        roots = {module.root for module in modules}
        assert roots == {"Top", "Left", "Right"}
        assert all(not module.dynamic for module in modules)

    def test_dynamic_branch_under_static_top(self, shared_spare_tree):
        modules = diftree_modules(shared_spare_tree)
        # GateA/GateB share the spare PS, so neither is independent: the AND
        # top swallows everything into a single dynamic module.
        assert len(modules) == 1
        assert modules[0].dynamic
