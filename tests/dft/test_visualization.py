"""Tests for the Graphviz export of fault trees."""

from repro.dft.visualization import to_dot, write_dot
from repro.systems import (
    cardiac_assist_system,
    mutually_exclusive_switch,
    repairable_and_system,
)


class TestDotExport:
    def test_all_elements_present(self):
        cas = cardiac_assist_system()
        dot = to_dot(cas)
        for name in cas.names():
            assert f'"{name}"' in dot
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_gate_styles(self):
        dot = to_dot(cardiac_assist_system())
        assert "PAND" in dot
        assert "SPARE" in dot
        assert "FDEP" in dot
        assert "peripheries=2" in dot       # dynamic gates
        assert "style=dashed" in dot        # constraint gates / edges

    def test_spare_edges_annotated(self):
        dot = to_dot(cardiac_assist_system())
        assert 'label="primary"' in dot
        assert 'label="spare"' in dot

    def test_basic_event_parameters_shown(self):
        dot = to_dot(repairable_and_system(failure_rate=1.5, repair_rate=2.5))
        assert "λ=1.5" in dot
        assert "μ=2.5" in dot

    def test_inhibition_rendered(self):
        dot = to_dot(mutually_exclusive_switch())
        assert "INHIBIT" in dot
        assert 'label="inhibitor"' in dot

    def test_top_event_highlighted(self):
        dot = to_dot(cardiac_assist_system())
        assert "penwidth=2" in dot

    def test_write_dot(self, tmp_path):
        path = tmp_path / "cas.dot"
        write_dot(cardiac_assist_system(), str(path))
        assert path.read_text().startswith("digraph")
