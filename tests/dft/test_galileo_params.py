"""Galileo rate-parameter extension: `param name = value;` + references."""

import pytest

from repro.dft import galileo
from repro.errors import FaultTreeError, GalileoSyntaxError

PARAMETRIC = """
toplevel "sys";
param lam = 0.5;
param mu = 2.0;
"sys" and "A" "B";
"A" lambda=lam dorm=0.25;
"B" lambda=1.5 repair=mu;
"""


class TestParsing:
    def test_declarations_are_collected(self):
        tree = galileo.parse(PARAMETRIC)
        assert tree.parameters == {"lam": 0.5, "mu": 2.0}
        assert tree.is_parametric

    def test_lambda_reference_resolves_to_nominal(self):
        tree = galileo.parse(PARAMETRIC)
        event = tree.element("A")
        assert event.failure_rate == 0.5
        assert event.failure_rate_param == "lam"
        assert event.dormancy == 0.25

    def test_repair_reference_resolves_to_nominal(self):
        tree = galileo.parse(PARAMETRIC)
        event = tree.element("B")
        assert event.repair_rate == 2.0
        assert event.repair_rate_param == "mu"
        assert event.failure_rate_param is None

    def test_declaration_may_follow_the_reference(self):
        tree = galileo.parse(
            'toplevel "sys";\n"sys" and "A" "B";\n"A" lambda=lam;\n'
            '"B" lambda=1.0;\nparam lam = 0.25;\n'
        )
        assert tree.element("A").failure_rate == 0.25

    def test_equals_free_form_is_accepted(self):
        tree = galileo.parse(
            'toplevel "A";\nparam lam 0.75;\n"A" lambda=lam;\n'
        )
        assert tree.parameters == {"lam": 0.75}

    def test_plain_files_stay_parameter_free(self):
        tree = galileo.parse('toplevel "A";\n"A" lambda=1.0;\n')
        assert tree.parameters == {}
        assert not tree.is_parametric


class TestParseErrors:
    def test_undefined_parameter(self):
        with pytest.raises(GalileoSyntaxError, match="undefined parameter 'lam'"):
            galileo.parse('toplevel "A";\n"A" lambda=lam;\n')

    def test_duplicate_definition(self):
        with pytest.raises(GalileoSyntaxError, match="declared twice"):
            galileo.parse(
                'toplevel "A";\nparam lam = 0.5;\nparam lam = 0.7;\n"A" lambda=lam;\n'
            )

    def test_non_positive_rate(self):
        with pytest.raises(GalileoSyntaxError, match="positive finite rate"):
            galileo.parse('toplevel "A";\nparam lam = -0.5;\n"A" lambda=lam;\n')

    def test_zero_rate(self):
        with pytest.raises(GalileoSyntaxError, match="positive finite rate"):
            galileo.parse('toplevel "A";\nparam lam = 0;\n"A" lambda=lam;\n')

    def test_non_numeric_value(self):
        with pytest.raises(GalileoSyntaxError, match="non-numeric value"):
            galileo.parse('toplevel "A";\nparam lam = fast;\n"A" lambda=1;\n')

    def test_malformed_declaration(self):
        with pytest.raises(GalileoSyntaxError, match="param <name> = <value>"):
            galileo.parse('toplevel "A";\nparam lam;\n"A" lambda=1;\n')

    def test_dormancy_cannot_reference_a_parameter(self):
        with pytest.raises(GalileoSyntaxError, match="non-numeric value"):
            galileo.parse(
                'toplevel "A";\nparam d = 0.5;\n"A" lambda=1 dorm=d;\n'
            )


class TestRoundTrip:
    def test_write_preserves_declarations_and_bindings(self):
        tree = galileo.parse(PARAMETRIC)
        text = galileo.write(tree)
        assert "param lam = 0.5;" in text
        assert "lambda=lam" in text
        assert "repair=mu" in text
        again = galileo.parse(text)
        assert again.parameters == tree.parameters
        assert again.element("A").failure_rate_param == "lam"
        assert again.element("B").repair_rate_param == "mu"


class TestTreeValidation:
    def test_undeclared_binding_is_rejected(self):
        from repro.dft import DynamicFaultTree
        from repro.dft.elements import BasicEvent

        tree = DynamicFaultTree("bad")
        tree.add(BasicEvent("A", failure_rate=1.0, failure_rate_param="lam"))
        tree.set_top("A")
        with pytest.raises(FaultTreeError, match="undefined rate parameter"):
            tree.validate()

    def test_nominal_mismatch_is_rejected(self):
        from repro.dft import DynamicFaultTree
        from repro.dft.elements import BasicEvent

        tree = DynamicFaultTree("bad")
        tree.declare_parameter("lam", 0.5)
        tree.add(BasicEvent("A", failure_rate=1.0, failure_rate_param="lam"))
        tree.set_top("A")
        with pytest.raises(FaultTreeError, match="disagrees with parameter"):
            tree.validate()

    def test_builder_resolves_rates_from_declarations(self):
        from repro.dft import FaultTreeBuilder

        builder = FaultTreeBuilder("ok")
        builder.parameter("lam", 0.5)
        builder.basic_event("A", param="lam")
        builder.basic_event("B", failure_rate=1.0)
        builder.and_gate("sys", ["A", "B"])
        tree = builder.build(top="sys")
        assert tree.element("A").failure_rate == 0.5
        assert tree.element("A").failure_rate_param == "lam"

    def test_builder_rejects_unknown_parameter(self):
        from repro.dft import FaultTreeBuilder

        builder = FaultTreeBuilder("bad")
        with pytest.raises(FaultTreeError, match="unknown rate parameter"):
            builder.basic_event("A", param="lam")


class TestQuotedParamElement:
    def test_quoted_param_is_an_ordinary_element_name(self):
        tree = galileo.parse(
            'toplevel "T";\n"T" and "param" "B";\n'
            '"param" lambda=0.5;\n"B" lambda=1.0;\n'
        )
        assert tree.element("param").failure_rate == 0.5
        assert tree.parameters == {}

    def test_quoted_param_survives_a_round_trip(self):
        tree = galileo.parse(
            'toplevel "T";\n"T" and "param" "B";\n'
            '"param" lambda=0.5;\n"B" lambda=1.0;\n'
        )
        again = galileo.parse(galileo.write(tree))
        assert again.element("param").failure_rate == 0.5
