"""Tests for the DynamicFaultTree container."""

import pytest

from repro.dft import (
    AndGate,
    BasicEvent,
    DynamicFaultTree,
    FaultTreeBuilder,
    FdepGate,
    OrGate,
    PandGate,
    SpareGate,
)
from repro.errors import FaultTreeError


def small_tree() -> DynamicFaultTree:
    tree = DynamicFaultTree("small")
    tree.add(BasicEvent("A", 1.0))
    tree.add(BasicEvent("B", 2.0))
    tree.add(AndGate("Top", ("A", "B")))
    tree.set_top("Top")
    return tree


class TestStructure:
    def test_add_and_lookup(self):
        tree = small_tree()
        assert len(tree) == 3
        assert "A" in tree
        assert tree.element("A").failure_rate == 1.0
        assert set(tree.names()) == {"A", "B", "Top"}

    def test_duplicate_names_rejected(self):
        tree = small_tree()
        with pytest.raises(FaultTreeError):
            tree.add(BasicEvent("A", 3.0))

    def test_unknown_element_rejected(self):
        tree = small_tree()
        with pytest.raises(FaultTreeError):
            tree.element("missing")
        with pytest.raises(FaultTreeError):
            tree.set_top("missing")

    def test_children_and_parents(self):
        tree = small_tree()
        assert tree.children("Top") == ("A", "B")
        assert tree.parents("A") == ("Top",)
        assert tree.logic_parents("A") == ("Top",)

    def test_descendants(self):
        tree = small_tree()
        assert tree.descendants("Top") == frozenset({"Top", "A", "B"})
        assert tree.descendants("Top", include_self=False) == frozenset({"A", "B"})
        assert tree.basic_events_below("Top") == ("A", "B")

    def test_topological_order(self):
        tree = small_tree()
        order = tree.topological_order()
        assert order.index("A") < order.index("Top")
        assert order.index("B") < order.index("Top")

    def test_cycle_detected(self):
        tree = DynamicFaultTree("cyclic")
        tree.add(AndGate("X", ("Y",)))
        tree.add(AndGate("Y", ("X",)))
        tree.set_top("X")
        with pytest.raises(FaultTreeError):
            tree.topological_order()

    def test_missing_reference_detected(self):
        tree = DynamicFaultTree("dangling")
        tree.add(AndGate("Top", ("Ghost",)))
        tree.set_top("Top")
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_top_event_required(self):
        tree = DynamicFaultTree("topless")
        tree.add(BasicEvent("A", 1.0))
        with pytest.raises(FaultTreeError):
            _ = tree.top
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_summary_mentions_counts(self):
        assert "3 elements" in small_tree().summary()


class TestQueries:
    def test_element_kind_queries(self):
        builder = FaultTreeBuilder("kinds")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        builder.basic_event("S", 1.0, dormancy=0.0)
        builder.spare_gate("G", primary="A", spares=["S"])
        builder.pand_gate("P", ["G", "B"])
        builder.fdep("F", trigger="B", dependents=["A"])
        tree = builder.build("P")
        assert len(tree.basic_events()) == 3
        assert len(tree.spare_gates()) == 1
        assert len(tree.fdep_gates()) == 1
        assert tree.spare_gates_using("S")[0].name == "G"
        assert tree.spare_gates_with_primary("A")[0].name == "G"
        assert tree.is_spare_of_some_gate("S")
        assert not tree.is_spare_of_some_gate("A")
        assert tree.fdep_triggers_of("A") == ("B",)
        assert not tree.is_static
        assert not tree.is_repairable
        assert len(tree.dynamic_elements()) == 3  # spare, pand, fdep

    def test_static_and_repairable_flags(self):
        builder = FaultTreeBuilder("static")
        builder.basic_event("A", 1.0, repair_rate=1.0)
        builder.basic_event("B", 1.0)
        builder.or_gate("Top", ["A", "B"])
        tree = builder.build("Top")
        assert tree.is_static
        assert tree.is_repairable

    def test_inhibitors_of(self):
        builder = FaultTreeBuilder("inh")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        builder.inhibition("I", inhibitor="A", target="B")
        builder.or_gate("Top", ["B"])
        tree = builder.build("Top")
        assert tree.inhibitors_of("B") == ("A",)
        assert tree.inhibitors_of("A") == ()


class TestValidation:
    def test_constraint_gate_as_logic_input_rejected(self):
        tree = DynamicFaultTree("bad")
        tree.add(BasicEvent("T", 1.0))
        tree.add(BasicEvent("A", 1.0))
        tree.add(FdepGate("F", trigger="T", dependents=("A",)))
        tree.add(OrGate("Top", ("F",)))
        tree.set_top("Top")
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_constraint_gate_as_top_rejected(self):
        tree = DynamicFaultTree("bad-top")
        tree.add(BasicEvent("T", 1.0))
        tree.add(BasicEvent("A", 1.0))
        tree.add(FdepGate("F", trigger="T", dependents=("A",)))
        tree.set_top("F")
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_disconnected_element_warns(self):
        tree = small_tree()
        tree.add(BasicEvent("Lonely", 1.0))
        warnings = tree.validate()
        assert any("Lonely" in warning for warning in warnings)

    def test_shared_spare_module_internals_warn(self):
        builder = FaultTreeBuilder("sharing")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        builder.basic_event("C", 1.0)
        builder.and_gate("Module", ["B", "C"])
        builder.spare_gate("G", primary="A", spares=["Module"])
        # C is also used directly by the top gate: the spare module is not
        # independent any more.
        builder.or_gate("Top", ["G", "C"])
        tree = builder.tree
        tree.set_top("Top")
        warnings = tree.validate()
        assert any("not independent" in warning for warning in warnings)

    def test_primary_also_spare_warns(self):
        builder = FaultTreeBuilder("ps")
        builder.basic_event("A", 1.0)
        builder.basic_event("B", 1.0)
        builder.basic_event("C", 1.0)
        builder.spare_gate("G1", primary="A", spares=["B"])
        builder.spare_gate("G2", primary="C", spares=["A"])
        builder.and_gate("Top", ["G1", "G2"])
        tree = builder.tree
        tree.set_top("Top")
        warnings = tree.validate()
        assert any("primary" in warning for warning in warnings)
